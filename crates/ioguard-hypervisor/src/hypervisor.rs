//! The assembled hypervisor: P-channel + R-channel + executors.
//!
//! [`Hypervisor::step`] advances one time slot of the global timer:
//!
//! 1. pools expire any buffered job whose deadline has passed (misses),
//! 2. server budgets replenish (server-based policy only),
//! 3. if σ\* marks the slot *occupied*, the P-channel fires its pre-defined
//!    task — untouchable by run-time traffic, which is how pre-loaded tasks
//!    get their hard guarantee,
//! 4. otherwise the G-Sched grants the slot to one VM's pool and the
//!    executor runs one slot of that pool's earliest-deadline job,
//!    preempting at slot granularity.

// lint: allow(indexing, file) — pool indices come from the G-Sched grant
// (bounded by the pool count it was handed) and task indices from the
// P-channel's own fire() result; pjob_state is sized to tasks() at build.

use serde::{Deserialize, Serialize};

use ioguard_obs::{ObsKind, SYSTEM_VM};
use ioguard_sim::time::Slots;
use ioguard_sim::trace::{TraceBuffer, TraceKind};

use crate::driver::{RetryPolicy, Watchdog, WatchdogVerdict};
use crate::error::HvError;
use crate::gsched::{Gsched, GschedPolicy};
use crate::obs::HvObs;
use crate::pchannel::{PChannel, PredefinedTask};
use crate::pool::{IoPool, PoolEntry, NEVER_DISPATCHED};
use crate::shadowindex::ShadowIndex;

pub use crate::metrics::{HvMetrics, VmMetrics};

/// Default hardware queue capacity of each I/O pool.
pub const DEFAULT_POOL_CAPACITY: usize = 32;

/// Slack-reclamation model for the P-channel: pre-defined jobs whose actual
/// execution undershoots their reserved WCET release the residual table
/// slots to the R-channel ("the hypervisor schedules and executes run-time
/// tasks when the pre-defined tasks are not occupying the I/O", Sec. II-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PchannelReclaim {
    /// Seed of the deterministic per-job execution-time sampling.
    pub seed: u64,
    /// Minimum actual execution time as a fraction of WCET (uniform in
    /// `[min_fraction, 1.0]`).
    pub min_fraction: f64,
}

/// Construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypervisorParams {
    /// Number of VMs (pools).
    pub vms: usize,
    /// Queue capacity of each pool.
    pub pool_capacity: usize,
    /// G-Sched policy.
    pub policy: GschedPolicy,
    /// Pre-defined tasks loaded at initialization.
    pub predefined: Vec<PredefinedTask>,
    /// Maximum σ\* hyper-period the banks can hold, in slots.
    pub max_table_len: u64,
    /// Optional P-channel slack reclamation (None: pre-defined jobs consume
    /// their full reserved WCET).
    pub reclaim: Option<PchannelReclaim>,
    /// Optional per-transaction watchdog (None: device faults burn slots
    /// without retries and never trigger degradation).
    pub watchdog: Option<RetryPolicy>,
    /// Graceful-degradation tuning (recovery threshold).
    pub degradation: DegradationPolicy,
    /// Optional submission flood control (None: no admission throttling).
    pub admission_guard: Option<AdmissionGuard>,
}

impl HypervisorParams {
    /// Defaults: global-EDF policy, 16-entry pools, no pre-defined tasks.
    pub fn new(vms: usize) -> Self {
        Self {
            vms,
            pool_capacity: DEFAULT_POOL_CAPACITY,
            policy: GschedPolicy::GlobalEdf,
            predefined: Vec::new(),
            max_table_len: 1 << 22,
            reclaim: None,
            watchdog: None,
            degradation: DegradationPolicy::default(),
            admission_guard: None,
        }
    }

    /// Sets the pre-defined (P-channel) task load.
    pub fn with_predefined(mut self, predefined: Vec<PredefinedTask>) -> Self {
        self.predefined = predefined;
        self
    }

    /// Sets the G-Sched policy.
    pub fn with_policy(mut self, policy: GschedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables P-channel slack reclamation.
    pub fn with_reclaim(mut self, reclaim: PchannelReclaim) -> Self {
        self.reclaim = Some(reclaim);
        self
    }

    /// Enables the per-transaction watchdog (timeout + bounded retry with
    /// exponential backoff; exhaustion triggers graceful degradation).
    pub fn with_watchdog(mut self, policy: RetryPolicy) -> Self {
        self.watchdog = Some(policy);
        self
    }

    /// Tunes graceful degradation (recovery threshold).
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> Self {
        self.degradation = policy;
        self
    }

    /// Enables submission flood control.
    pub fn with_admission_guard(mut self, guard: AdmissionGuard) -> Self {
        self.admission_guard = Some(guard);
        self
    }
}

/// A run-time I/O job submitted through a VM's para-virtualized driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtJob {
    /// Target VM.
    pub vm: usize,
    /// Task identifier (for tracing; uniqueness is the caller's business).
    pub task_id: u64,
    /// Release slot (must be the current slot when submitting live).
    pub release: u64,
    /// Required execution slots.
    pub wcet: u64,
    /// Absolute deadline slot (exclusive).
    pub deadline: u64,
    /// True when a miss of this job fails the trial.
    pub critical: bool,
}

impl RtJob {
    /// Creates a critical job with 64-byte response payload.
    pub fn new(vm: usize, task_id: u64, release: u64, wcet: u64, deadline: u64) -> Self {
        Self {
            vm,
            task_id,
            release,
            wcet,
            deadline,
            critical: true,
        }
    }

    /// Marks the job best-effort: its misses do not fail a trial.
    pub fn best_effort(mut self) -> Self {
        self.critical = false;
        self
    }
}

/// Operating mode of the hypervisor's graceful-degradation machine.
///
/// On persistent device failure (watchdog retry budget exhausted) the mode
/// steps down one level at a time; after a configured run of healthy slots
/// it steps back up. Every transition is counted in
/// [`HvMetrics::mode_changes`] and traced as [`TraceKind::ModeChange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HvMode {
    /// Full service: P-channel and R-channel both live.
    #[default]
    Normal,
    /// Best-effort work is shed (from the pools and at admission); critical
    /// run-time jobs still run.
    Degraded,
    /// Only the pre-defined σ\* table executes; all run-time submissions
    /// are refused.
    PchannelOnly,
}

impl HvMode {
    /// Stable ordinal carried in the `task` field of mode-change traces.
    pub const fn ordinal(self) -> u32 {
        match self {
            HvMode::Normal => 0,
            HvMode::Degraded => 1,
            HvMode::PchannelOnly => 2,
        }
    }
}

/// Graceful-degradation tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Consecutive healthy slots before the mode steps back up one level.
    pub healthy_slots_to_recover: u64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            healthy_slots_to_recover: 64,
        }
    }
}

/// Flood control at the para-virtualized driver boundary: a VM submitting
/// more than `max_submissions` jobs inside a `window`-slot window is cut
/// off for `throttle_slots` slots (babbling-idiot countermeasure) — both
/// at admission and in the G-Sched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionGuard {
    /// Window length, in slots.
    pub window: u64,
    /// Submissions accepted per VM per window.
    pub max_submissions: u64,
    /// Penalty window once tripped, in slots.
    pub throttle_slots: u64,
}

/// Per-VM flood-control state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct AdmState {
    window_start: u64,
    count: u64,
    throttled_until: u64,
}

/// The I/O-GUARD hypervisor device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypervisor {
    pools: Vec<IoPool>,
    /// Comparator tree over the pools' shadow registers, refreshed on every
    /// pool mutation — the G-Sched reads its winner in O(1).
    shadow_index: ShadowIndex,
    pchannel: PChannel,
    gsched: Gsched,
    now: u64,
    metrics: HvMetrics,
    reclaim: Option<PchannelReclaim>,
    /// Per pre-defined task: (reserved slots left in the current job's
    /// table allocation, actual work remaining, job counter). Only used
    /// when `reclaim` is Some.
    pjob_state: Vec<PjobState>,
    /// Scheduling-event trace (disabled by default).
    #[serde(skip, default = "TraceBuffer::disabled")]
    trace: TraceBuffer,
    /// (vm, task_id) of the job that ran in the previous R-channel slot —
    /// used to detect preemptions for the trace.
    last_dispatched: Option<(usize, u64)>,
    /// Current operating mode of the degradation machine.
    mode: HvMode,
    /// Per-transaction watchdog (None: faults burn slots silently).
    watchdog: Option<Watchdog>,
    /// Degradation tuning.
    degradation: DegradationPolicy,
    /// Flood control configuration and per-VM state.
    admission: Option<AdmissionGuard>,
    adm_state: Vec<AdmState>,
    /// Device stalled while `now < device_stall_until` (transient fault).
    device_stall_until: u64,
    /// Controller stuck until explicitly cleared (persistent fault).
    device_stuck: bool,
    /// Edge detector for Fault/Recovery trace events.
    device_fault_active: bool,
    /// Consecutive healthy slots (drives mode recovery).
    healthy_slots: u64,
    /// Optional observability layer (structured events + latency
    /// histograms). `None` by default: the device pays one branch per
    /// emission site and nothing else.
    #[serde(skip, default)]
    obs: Option<Box<HvObs>>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct PjobState {
    reserved_left: u64,
    remaining: u64,
    job_counter: u64,
}

/// Mixes three words into a well-spread hash (SplitMix64 finalizer).
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.rotate_left(23);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Narrows an id to the trace buffer's u32 field, saturating on overflow —
/// ids above `u32::MAX` lose fidelity in the trace only, never in scheduling.
fn trace_id(x: u64) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

impl Hypervisor {
    /// Builds the hypervisor.
    ///
    /// # Errors
    ///
    /// * [`HvError::InvalidConfig`] for zero VMs, zero pool capacity, or a
    ///   server-based policy whose server count differs from `vms`.
    /// * [`HvError::TableConstruction`] when the pre-defined tasks do not
    ///   fit a feasible σ\*.
    pub fn new(params: HypervisorParams) -> Result<Self, HvError> {
        if params.vms == 0 {
            return Err(HvError::InvalidConfig {
                reason: "at least one VM".into(),
            });
        }
        if params.pool_capacity == 0 {
            return Err(HvError::InvalidConfig {
                reason: "pool capacity must be positive".into(),
            });
        }
        if let GschedPolicy::ServerBased(servers) | GschedPolicy::GuardedEdf(servers) =
            &params.policy
        {
            if servers.len() != params.vms {
                return Err(HvError::InvalidConfig {
                    reason: format!("{} servers for {} VMs", servers.len(), params.vms),
                });
            }
        }
        if let Some(guard) = &params.admission_guard {
            if guard.window == 0 || guard.max_submissions == 0 {
                return Err(HvError::InvalidConfig {
                    reason: "admission guard window and max_submissions must be positive".into(),
                });
            }
        }
        let pchannel = PChannel::build(params.predefined, params.max_table_len)?;
        let pjob_state = vec![PjobState::default(); pchannel.tasks().len()];
        let pools = (0..params.vms)
            .map(|_| IoPool::new(params.pool_capacity))
            .collect();
        Ok(Self {
            pools,
            shadow_index: ShadowIndex::new(params.vms),
            pchannel,
            gsched: Gsched::new(params.policy),
            now: 0,
            metrics: HvMetrics::with_vms(params.vms),
            reclaim: params.reclaim,
            pjob_state,
            trace: TraceBuffer::disabled(),
            last_dispatched: None,
            mode: HvMode::Normal,
            watchdog: params.watchdog.map(Watchdog::new),
            degradation: params.degradation,
            admission: params.admission_guard,
            adm_state: vec![AdmState::default(); params.vms],
            device_stall_until: 0,
            device_stuck: false,
            device_fault_active: false,
            healthy_slots: 0,
            obs: None,
        })
    }

    /// Enables scheduling-event tracing with a ring of `capacity` events
    /// (releases, dispatches, preemptions, completions, misses, P-channel
    /// firings). Zero disables tracing again.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::new(capacity);
    }

    /// The scheduling-event trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Attaches the observability layer: a structured event sink of
    /// `capacity` events plus the latency histograms. Replaces any observer
    /// already attached (fresh state).
    pub fn attach_obs(&mut self, capacity: usize) {
        self.obs = Some(Box::new(HvObs::new(capacity, self.pools.len())));
    }

    /// The attached observer, if any.
    pub fn obs(&self) -> Option<&HvObs> {
        self.obs.as_deref()
    }

    /// Mutable access to the attached observer. Long-running front-ends
    /// (`ioguard-serve`) drain and clear the observer's trace ring every
    /// slot so the ring never overflows while the monotonic counters and
    /// latency histograms keep accumulating.
    pub fn obs_mut(&mut self) -> Option<&mut HvObs> {
        self.obs.as_deref_mut()
    }

    /// Detaches and returns the observer (the hypervisor keeps running
    /// unobserved).
    pub fn take_obs(&mut self) -> Option<Box<HvObs>> {
        self.obs.take()
    }

    /// Current slot of the global timer.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Execution metrics so far.
    pub fn metrics(&self) -> &HvMetrics {
        &self.metrics
    }

    /// The P-channel (σ\* and pre-defined tasks).
    pub fn pchannel(&self) -> &PChannel {
        &self.pchannel
    }

    /// The per-VM pools.
    pub fn pools(&self) -> &[IoPool] {
        &self.pools
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.pools.len()
    }

    /// Current operating mode of the degradation machine.
    pub fn mode(&self) -> HvMode {
        self.mode
    }

    /// Injects a transient device fault: I/O transactions stall for the
    /// next `slots` slots (extends any stall already in effect).
    pub fn inject_device_stall(&mut self, slots: u64) {
        self.device_stall_until = self.device_stall_until.max(self.now.saturating_add(slots));
    }

    /// Sets or clears the stuck-controller fault (persists until cleared).
    pub fn set_device_stuck(&mut self, stuck: bool) {
        self.device_stuck = stuck;
    }

    /// True while a device fault (stall window or stuck controller) is in
    /// effect at the current slot.
    pub fn device_faulty(&self) -> bool {
        self.device_stuck || self.now < self.device_stall_until
    }

    /// Clears all injected device faults.
    pub fn clear_device_faults(&mut self) {
        self.device_stuck = false;
        self.device_stall_until = 0;
    }

    /// Steps the mode machine one level down (towards P-channel-only).
    /// Entering [`HvMode::Degraded`] sheds best-effort work from every
    /// pool. Called on watchdog exhaustion; public so NoC-level fault
    /// drivers can escalate too.
    pub fn degrade(&mut self) {
        let next = match self.mode {
            HvMode::Normal => HvMode::Degraded,
            HvMode::Degraded => HvMode::PchannelOnly,
            HvMode::PchannelOnly => return,
        };
        self.set_mode(next);
        if next == HvMode::Degraded {
            for vm in 0..self.pools.len() {
                let shed = self.pools[vm].shed_best_effort();
                if !shed.is_empty() {
                    self.metrics.note_shed(vm, shed.len() as u64);
                    if let Some(obs) = self.obs.as_mut() {
                        obs.sink.record(
                            self.now,
                            ObsKind::Shed,
                            trace_id(vm as u64),
                            0,
                            shed.len() as u64,
                        );
                    }
                    self.sync_shadow(vm);
                }
            }
        }
    }

    /// Records a mode transition (trace + counter) and resets the recovery
    /// clock.
    fn set_mode(&mut self, next: HvMode) {
        if next == self.mode {
            return;
        }
        self.mode = next;
        self.metrics.mode_changes += 1;
        self.healthy_slots = 0;
        self.trace.record(
            Slots::new(self.now),
            TraceKind::ModeChange,
            u32::MAX,
            next.ordinal(),
        );
        if let Some(obs) = self.obs.as_mut() {
            obs.sink.record(
                self.now,
                ObsKind::ModeChange,
                SYSTEM_VM,
                0,
                u64::from(next.ordinal()),
            );
        }
    }

    /// Refreshes the comparator-tree leaf of VM `vm` from its pool's shadow
    /// register. Must follow every pool mutation.
    #[inline]
    fn sync_shadow(&mut self, vm: usize) {
        self.shadow_index.update(vm, self.pools[vm].shadow_key());
    }

    /// Submits a run-time I/O job through VM `job.vm`'s driver.
    ///
    /// # Errors
    ///
    /// * [`HvError::UnknownVm`] for an out-of-range VM.
    /// * [`HvError::Throttled`] while flood control has the VM cut off.
    /// * [`HvError::DegradedMode`] for work the current operating mode
    ///   refuses (best-effort when degraded; everything in P-channel-only).
    /// * [`HvError::PoolFull`] when the pool rejects the job; the job is
    ///   accounted as missed (the hardware cannot buffer it).
    pub fn submit(&mut self, job: RtJob) -> Result<(), HvError> {
        self.submit_with_payload(job, 64)
    }

    /// Charges one submission of VM `vm` against flood control.
    fn admission_check(&mut self, vm: usize, task_id: u64) -> Result<(), HvError> {
        let Some(guard) = self.admission else {
            return Ok(());
        };
        let now = self.now;
        let Some(st) = self.adm_state.get_mut(vm) else {
            return Ok(());
        };
        if now < st.throttled_until {
            let until = st.throttled_until;
            self.metrics.note_throttled_submission(vm);
            if let Some(obs) = self.obs.as_mut() {
                obs.sink.record(
                    now,
                    ObsKind::ThrottledSubmission,
                    trace_id(vm as u64),
                    task_id,
                    until,
                );
            }
            return Err(HvError::Throttled { vm, until });
        }
        if now >= st.window_start.saturating_add(guard.window) {
            let elapsed = now - st.window_start;
            st.window_start = now - (elapsed % guard.window);
            st.count = 0;
        }
        st.count += 1;
        if st.count > guard.max_submissions {
            let until = now.saturating_add(guard.throttle_slots);
            st.throttled_until = until;
            st.count = 0;
            // The penalty also closes the G-Sched on this VM: a babbling
            // idiot neither submits nor steals free slots.
            self.gsched.throttle(vm, until);
            self.metrics.note_throttled_submission(vm);
            self.trace.record(
                Slots::new(now),
                TraceKind::Throttle,
                trace_id(vm as u64),
                trace_id(until),
            );
            if let Some(obs) = self.obs.as_mut() {
                obs.sink
                    .record(now, ObsKind::Throttle, trace_id(vm as u64), 0, until);
                obs.sink.record(
                    now,
                    ObsKind::ThrottledSubmission,
                    trace_id(vm as u64),
                    task_id,
                    until,
                );
            }
            return Err(HvError::Throttled { vm, until });
        }
        Ok(())
    }

    /// Submits a job with an explicit response payload size (throughput
    /// accounting).
    ///
    /// # Errors
    ///
    /// See [`Hypervisor::submit`].
    pub fn submit_with_payload(&mut self, job: RtJob, response_bytes: u32) -> Result<(), HvError> {
        let vms = self.pools.len();
        if job.vm >= vms {
            return Err(HvError::UnknownVm { vm: job.vm, vms });
        }
        self.admission_check(job.vm, job.task_id)?;
        match self.mode {
            HvMode::Normal => {}
            HvMode::Degraded if job.critical => {}
            HvMode::Degraded => {
                // Degraded mode sheds best-effort work at admission.
                self.metrics.note_shed(job.vm, 1);
                if let Some(obs) = self.obs.as_mut() {
                    obs.sink.record(
                        self.now,
                        ObsKind::Shed,
                        trace_id(job.vm as u64),
                        job.task_id,
                        1,
                    );
                }
                return Err(HvError::DegradedMode);
            }
            HvMode::PchannelOnly => {
                // The R-channel is down: a refused critical job is a miss —
                // and the trace says so too. (This edge used to be counted
                // in the per-VM totals without a matching trace event, which
                // broke fold(trace) == metrics.)
                if job.critical {
                    self.metrics.note_miss(job.vm, job.task_id, true);
                    self.trace.record(
                        Slots::new(self.now),
                        TraceKind::DeadlineMiss,
                        trace_id(job.vm as u64),
                        trace_id(job.task_id),
                    );
                    if let Some(obs) = self.obs.as_mut() {
                        obs.sink.record(
                            self.now,
                            ObsKind::DeadlineMiss,
                            trace_id(job.vm as u64),
                            job.task_id,
                            1,
                        );
                    }
                } else {
                    self.metrics.note_shed(job.vm, 1);
                    if let Some(obs) = self.obs.as_mut() {
                        obs.sink.record(
                            self.now,
                            ObsKind::Shed,
                            trace_id(job.vm as u64),
                            job.task_id,
                            1,
                        );
                    }
                }
                return Err(HvError::DegradedMode);
            }
        }
        let pool = &mut self.pools[job.vm];
        // The hardware sweep is continuous: expired entries free their
        // queue slots before a new job needs one.
        for missed in pool.expire(self.now) {
            self.metrics
                .note_miss(job.vm, missed.task_id, missed.critical);
            if let Some(obs) = self.obs.as_mut() {
                obs.sink.record(
                    self.now,
                    ObsKind::DeadlineMiss,
                    trace_id(job.vm as u64),
                    missed.task_id,
                    u64::from(missed.critical),
                );
            }
        }
        let entry = PoolEntry {
            task_id: job.task_id,
            deadline: job.deadline,
            remaining: job.wcet,
            enqueued_at: self.now,
            first_dispatch: NEVER_DISPATCHED,
            response_bytes,
            critical: job.critical,
        };
        let result = match pool.insert(entry) {
            Ok(()) => {
                self.trace.record(
                    Slots::new(self.now),
                    TraceKind::Release,
                    trace_id(job.vm as u64),
                    trace_id(job.task_id),
                );
                if let Some(obs) = self.obs.as_mut() {
                    obs.sink.record(
                        self.now,
                        ObsKind::Admit,
                        trace_id(job.vm as u64),
                        job.task_id,
                        job.wcet,
                    );
                }
                Ok(())
            }
            Err(_) => {
                let capacity = self.pools[job.vm].capacity();
                self.metrics.rejected += 1;
                self.metrics.note_miss(job.vm, job.task_id, job.critical);
                self.trace.record(
                    Slots::new(self.now),
                    TraceKind::DeadlineMiss,
                    trace_id(job.vm as u64),
                    trace_id(job.task_id),
                );
                if let Some(obs) = self.obs.as_mut() {
                    obs.sink.record(
                        self.now,
                        ObsKind::DeadlineMiss,
                        trace_id(job.vm as u64),
                        job.task_id,
                        u64::from(job.critical),
                    );
                }
                Err(HvError::PoolFull {
                    vm: job.vm,
                    capacity,
                })
            }
        };
        self.sync_shadow(job.vm);
        result
    }

    /// Advances the global timer one slot.
    pub fn step(&mut self) {
        let now = self.now;
        // 1. Deadline sweep. The pools pop expired work off their shadow
        //    registers (O(1) when nothing expired); the comparator tree is
        //    refreshed only for pools that actually lost entries.
        for (vm, pool) in self.pools.iter_mut().enumerate() {
            let missed = pool.expire(now);
            if missed.is_empty() {
                continue;
            }
            for missed in missed {
                self.metrics.note_miss(vm, missed.task_id, missed.critical);
                self.trace.record(
                    Slots::new(now),
                    TraceKind::DeadlineMiss,
                    trace_id(vm as u64),
                    trace_id(missed.task_id),
                );
                if let Some(obs) = self.obs.as_mut() {
                    obs.sink.record(
                        now,
                        ObsKind::DeadlineMiss,
                        trace_id(vm as u64),
                        missed.task_id,
                        u64::from(missed.critical),
                    );
                }
            }
            self.shadow_index.update(vm, pool.shadow_key());
        }
        // 2. Server replenishment.
        self.gsched.tick(now);
        // 2b. Device health: trace fault/recovery edges and advance the
        //     mode-recovery clock on healthy slots.
        let device_ok = !self.device_faulty();
        if !device_ok && !self.device_fault_active {
            self.device_fault_active = true;
            self.trace
                .record(Slots::new(now), TraceKind::Fault, u32::MAX, 0);
            if let Some(obs) = self.obs.as_mut() {
                obs.sink.record(now, ObsKind::Fault, SYSTEM_VM, 0, 0);
            }
        } else if device_ok && self.device_fault_active {
            self.device_fault_active = false;
            if let Some(wd) = &mut self.watchdog {
                wd.note_progress();
            }
            self.trace
                .record(Slots::new(now), TraceKind::Recovery, u32::MAX, 0);
            if let Some(obs) = self.obs.as_mut() {
                obs.sink.record(now, ObsKind::Recovery, SYSTEM_VM, 0, 0);
            }
        }
        if device_ok {
            self.healthy_slots = self.healthy_slots.saturating_add(1);
            if self.mode != HvMode::Normal
                && self.healthy_slots >= self.degradation.healthy_slots_to_recover
            {
                let up = match self.mode {
                    HvMode::PchannelOnly => HvMode::Degraded,
                    _ => HvMode::Normal,
                };
                self.set_mode(up);
            }
        } else {
            self.healthy_slots = 0;
        }
        // 3. P-channel owns occupied slots — unless slack reclamation is on
        //    and the pre-defined job already finished early, releasing its
        //    residual reservation to the R-channel.
        let powner = self.pchannel.fire(now);
        let p_uses_slot = match (powner, self.reclaim) {
            (None, _) => false,
            (Some(owner), None) => {
                // Full-WCET semantics: the reservation is the execution.
                if owner.completes_job {
                    self.metrics.predefined_completed += 1;
                    self.metrics.response_bytes +=
                        self.pchannel.tasks()[owner.task_index].response_bytes as u64;
                }
                true
            }
            (Some(owner), Some(reclaim)) => {
                let task = &self.pchannel.tasks()[owner.task_index];
                let wcet = task.task.wcet();
                let state = &mut self.pjob_state[owner.task_index];
                if state.reserved_left == 0 {
                    // First reserved slot of a new job: sample its actual
                    // execution time in [min·C, C] (deterministic).
                    state.reserved_left = wcet;
                    state.job_counter += 1;
                    let h = hash3(reclaim.seed, task.task_id, state.job_counter);
                    let frac = reclaim.min_fraction
                        + (1.0 - reclaim.min_fraction) * (h % 1024) as f64 / 1024.0;
                    state.remaining = ((wcet as f64 * frac).round() as u64).clamp(1, wcet);
                }
                state.reserved_left -= 1;
                if state.remaining > 0 {
                    state.remaining -= 1;
                    if state.remaining == 0 {
                        self.metrics.predefined_completed += 1;
                        self.metrics.response_bytes += task.response_bytes as u64;
                    }
                    true
                } else {
                    false // residual reservation — reclaimed
                }
            }
        };
        if p_uses_slot {
            self.metrics.pchannel_slots += 1;
            if let Some(owner) = powner {
                let task_id = self.pchannel.tasks()[owner.task_index].task_id;
                self.trace.record(
                    Slots::new(now),
                    TraceKind::TableFire,
                    u32::MAX,
                    trace_id(task_id),
                );
                if let Some(obs) = self.obs.as_mut() {
                    obs.sink
                        .record(now, ObsKind::TableFire, SYSTEM_VM, task_id, 0);
                }
            }
        } else if self.mode == HvMode::PchannelOnly {
            // Degraded slot table: only σ\* executes, the R-channel is off.
            self.metrics.idle_slots += 1;
        } else if self.watchdog.as_ref().is_some_and(|wd| wd.in_backoff(now)) {
            // The watchdog's exponential-backoff window keeps the executor
            // off the (possibly still faulty) device.
            self.metrics.backoff_slots += 1;
        } else {
            // 4. Free (or reclaimed) slot: G-Sched grants one pool, reading
            //    the winner off the comparator tree. A grant whose pool has
            //    no shadow entry would be a scheduler bug; the slot then
            //    idles instead of bringing the model down.
            if self.gsched.has_guards() {
                // Slot-denial accounting: VMs with buffered work that
                // budget enforcement or a throttle window holds back.
                for (vm, pool) in self.pools.iter().enumerate() {
                    if !pool.is_empty() && self.gsched.is_blocked(vm) {
                        self.metrics.note_throttled_slot(vm);
                        if let Some(obs) = self.obs.as_mut() {
                            obs.sink
                                .record(now, ObsKind::ThrottledSlot, trace_id(vm as u64), 0, 0);
                        }
                    }
                }
            }
            let granted = self
                .gsched
                .grant_indexed(&self.pools, &self.shadow_index)
                .and_then(|vm| self.pools[vm].shadow().map(|e| (vm, e.task_id)));
            match granted {
                Some((vm, _)) if !device_ok => {
                    // The slot was granted but the device made no progress:
                    // the watchdog counts it toward its timeout.
                    self.metrics.stalled_slots += 1;
                    if let Some(wd) = &mut self.watchdog {
                        match wd.note_stall(now) {
                            WatchdogVerdict::Armed => {}
                            WatchdogVerdict::Retry { attempt, .. } => {
                                self.metrics.note_retry(vm);
                                self.trace.record(
                                    Slots::new(now),
                                    TraceKind::Retry,
                                    trace_id(vm as u64),
                                    attempt,
                                );
                                if let Some(obs) = self.obs.as_mut() {
                                    obs.sink.record(
                                        now,
                                        ObsKind::Retry,
                                        trace_id(vm as u64),
                                        0,
                                        u64::from(attempt),
                                    );
                                }
                            }
                            WatchdogVerdict::Exhausted => self.degrade(),
                        }
                    }
                }
                Some(running) => {
                    let vm = running.0;
                    self.metrics.rchannel_slots += 1;
                    if let Some(obs) = self.obs.as_mut() {
                        let remaining = self.pools[vm].shadow().map_or(0, |e| e.remaining);
                        obs.sink.record(
                            now,
                            ObsKind::GschedGrant,
                            trace_id(vm as u64),
                            running.1,
                            remaining,
                        );
                    }
                    if !self.trace.is_disabled() || self.obs.is_some() {
                        // One switch decision, shared by the legacy trace
                        // (a disabled buffer ignores record) and the obs
                        // sink so the two streams can never disagree.
                        enum Switch {
                            Continue,
                            Dispatch,
                            Preempt(usize, u64),
                        }
                        let switch = match self.last_dispatched {
                            Some(prev) if prev == running => Switch::Continue,
                            // A different job resumed while the previous one
                            // still has work: a preemption.
                            Some((pvm, ptask))
                                if self
                                    .pools
                                    .get(pvm)
                                    .is_some_and(|p| p.iter().any(|e| e.task_id == ptask)) =>
                            {
                                Switch::Preempt(pvm, ptask)
                            }
                            _ => Switch::Dispatch,
                        };
                        if let Switch::Preempt(pvm, ptask) = switch {
                            self.trace.record(
                                Slots::new(now),
                                TraceKind::Preempt,
                                trace_id(pvm as u64),
                                trace_id(ptask),
                            );
                            if let Some(obs) = self.obs.as_mut() {
                                obs.sink.record(
                                    now,
                                    ObsKind::Preempt,
                                    trace_id(pvm as u64),
                                    ptask,
                                    0,
                                );
                            }
                        }
                        if !matches!(switch, Switch::Continue) {
                            self.trace.record(
                                Slots::new(now),
                                TraceKind::Dispatch,
                                trace_id(running.0 as u64),
                                trace_id(running.1),
                            );
                            if let Some(obs) = self.obs.as_mut() {
                                obs.sink.record(
                                    now,
                                    ObsKind::Dispatch,
                                    trace_id(vm as u64),
                                    running.1,
                                    0,
                                );
                            }
                        }
                    }
                    self.last_dispatched = Some(running);
                    if let Some(wd) = &mut self.watchdog {
                        // Progress on the device closes any stall episode
                        // (the Recovery trace edge is emitted in step 2b).
                        wd.note_progress();
                    }
                    if self.obs.is_some() {
                        // Stamp the dispatch edge for the latency split
                        // (idempotent; invisible to scheduling).
                        self.pools[vm].note_dispatch(now);
                    }
                    if let Ok(Some(done)) = self.pools[vm].execute_slot() {
                        // Completion moved the shadow register; a mere
                        // budget decrement leaves the key untouched. (The
                        // Err arm is unreachable — the shadow register was
                        // read non-empty on this same slot.)
                        self.sync_shadow(vm);
                        self.metrics.note_completion(vm);
                        self.metrics.response_bytes += done.response_bytes as u64;
                        self.metrics
                            .latency
                            .push((now + 1 - done.enqueued_at) as f64);
                        self.trace.record(
                            Slots::new(now),
                            TraceKind::Complete,
                            trace_id(vm as u64),
                            trace_id(done.task_id),
                        );
                        if let Some(obs) = self.obs.as_mut() {
                            let finish = now.saturating_add(1);
                            let e2e = finish.saturating_sub(done.enqueued_at);
                            obs.sink.record(
                                now,
                                ObsKind::Complete,
                                trace_id(vm as u64),
                                done.task_id,
                                e2e,
                            );
                            if done.first_dispatch != NEVER_DISPATCHED {
                                obs.submit_to_dispatch
                                    .record(done.first_dispatch.saturating_sub(done.enqueued_at));
                                obs.dispatch_to_response
                                    .record(finish.saturating_sub(done.first_dispatch));
                            }
                            if let Some(h) = obs.e2e_per_vm.get_mut(vm) {
                                h.record(e2e);
                            }
                            if done.critical {
                                obs.e2e_critical.record(e2e);
                            } else {
                                obs.e2e_best_effort.record(e2e);
                            }
                        }
                        self.last_dispatched = None;
                    }
                }
                None => self.metrics.idle_slots += 1,
            }
        }
        self.now += 1;
    }

    /// Runs `slots` consecutive slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Drains every pool for a configuration switch, returning the carried
    /// `(vm, entry)` pairs in deterministic order (VM ascending, earliest
    /// deadline first within a VM) and leaving all shadow state cleared.
    /// The entries are *not* misses — the reconfiguration controller is
    /// responsible for re-inserting each exactly once into the successor
    /// configuration (or accounting for it if its VM departed).
    pub fn drain_pools(&mut self) -> Vec<(usize, PoolEntry)> {
        let mut carried = Vec::new();
        for vm in 0..self.pools.len() {
            for entry in self.pools[vm].drain_all() {
                carried.push((vm, entry));
            }
            self.sync_shadow(vm);
        }
        carried
    }

    /// Re-inserts an entry carried across a configuration switch into VM
    /// `vm`'s pool, bypassing admission control and mode gating: the job
    /// was already admitted (and traced) under the previous configuration
    /// epoch, so no `Admit` event is emitted and flood control is not
    /// charged — re-admitting would double-count it.
    ///
    /// # Errors
    ///
    /// * [`HvError::UnknownVm`] when `vm` does not exist in this
    ///   configuration (the caller decides whether that is a teardown).
    /// * [`HvError::PoolFull`] when the pool cannot hold the entry (the
    ///   caller accounts the loss; nothing is silently dropped here).
    pub fn restore_entry(&mut self, vm: usize, entry: PoolEntry) -> Result<(), HvError> {
        let vms = self.pools.len();
        let Some(pool) = self.pools.get_mut(vm) else {
            return Err(HvError::UnknownVm { vm, vms });
        };
        let capacity = pool.capacity();
        let result = pool
            .insert(entry)
            .map_err(|_| HvError::PoolFull { vm, capacity });
        self.sync_shadow(vm);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioguard_sched::task::{PeriodicServer, SporadicTask};

    fn predefined(task_id: u64, period: u64, wcet: u64) -> PredefinedTask {
        PredefinedTask {
            task_id,
            vm: 0,
            task: SporadicTask::implicit(period, wcet).unwrap(),
            response_bytes: 100,
            start_offset: 0,
        }
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            Hypervisor::new(HypervisorParams {
                vms: 0,
                ..HypervisorParams::new(1)
            }),
            Err(HvError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Hypervisor::new(HypervisorParams {
                pool_capacity: 0,
                ..HypervisorParams::new(2)
            }),
            Err(HvError::InvalidConfig { .. })
        ));
        let bad_servers = HypervisorParams::new(2).with_policy(GschedPolicy::ServerBased(vec![
            PeriodicServer::new(4, 1).unwrap(),
        ]));
        assert!(matches!(
            Hypervisor::new(bad_servers),
            Err(HvError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn single_job_completes_with_latency() {
        let mut hv = Hypervisor::new(HypervisorParams::new(1)).unwrap();
        hv.submit(RtJob::new(0, 1, 0, 3, 100)).unwrap();
        hv.run(3);
        assert_eq!(hv.metrics().completed, 1);
        assert_eq!(hv.metrics().missed, 0);
        assert_eq!(hv.metrics().latency.mean(), 3.0);
        assert_eq!(hv.metrics().rchannel_slots, 3);
        assert_eq!(hv.now(), 3);
    }

    #[test]
    fn unknown_vm_rejected() {
        let mut hv = Hypervisor::new(HypervisorParams::new(2)).unwrap();
        assert!(matches!(
            hv.submit(RtJob::new(5, 1, 0, 1, 10)),
            Err(HvError::UnknownVm { vm: 5, vms: 2 })
        ));
    }

    #[test]
    fn pool_overflow_counts_as_miss() {
        let params = HypervisorParams {
            pool_capacity: 1,
            ..HypervisorParams::new(1)
        };
        let mut hv = Hypervisor::new(params).unwrap();
        hv.submit(RtJob::new(0, 1, 0, 5, 100)).unwrap();
        assert!(matches!(
            hv.submit(RtJob::new(0, 2, 0, 1, 100)),
            Err(HvError::PoolFull { .. })
        ));
        assert_eq!(hv.metrics().missed, 1);
        assert_eq!(hv.metrics().rejected, 1);
    }

    #[test]
    fn deadline_miss_detected() {
        let mut hv = Hypervisor::new(HypervisorParams::new(1)).unwrap();
        // Needs 5 slots by slot 3: impossible.
        hv.submit(RtJob::new(0, 1, 0, 5, 3)).unwrap();
        hv.run(10);
        assert_eq!(hv.metrics().missed, 1);
        assert_eq!(hv.metrics().completed, 0);
        // The pool is clean afterwards.
        assert!(hv.pools()[0].is_empty());
    }

    #[test]
    fn pchannel_owns_its_slots() {
        // Pre-defined task occupies every 2nd slot (T=2, C=1); a run-time
        // job gets only the free slots.
        let params = HypervisorParams::new(1).with_predefined(vec![predefined(1, 2, 1)]);
        let mut hv = Hypervisor::new(params).unwrap();
        hv.submit(RtJob::new(0, 7, 0, 3, 100)).unwrap();
        hv.run(6);
        // 3 P-channel slots, 3 R-channel slots.
        assert_eq!(hv.metrics().pchannel_slots, 3);
        assert_eq!(hv.metrics().rchannel_slots, 3);
        assert_eq!(hv.metrics().predefined_completed, 3);
        assert_eq!(hv.metrics().completed, 1);
        // Run-time job took slots 1, 3, 5 → latency 6.
        assert_eq!(hv.metrics().latency.mean(), 6.0);
    }

    #[test]
    fn predefined_response_bytes_counted() {
        let params = HypervisorParams::new(1).with_predefined(vec![predefined(1, 4, 1)]);
        let mut hv = Hypervisor::new(params).unwrap();
        hv.run(8);
        assert_eq!(hv.metrics().predefined_completed, 2);
        assert_eq!(hv.metrics().response_bytes, 200);
        assert_eq!(hv.metrics().idle_slots, 6);
    }

    #[test]
    fn cross_vm_edf_preemption() {
        // VM 0 submits a long lax job; VM 1 later submits a tight one. With
        // global EDF, VM 1's job runs next slot (preempting VM 0's stream).
        let mut hv = Hypervisor::new(HypervisorParams::new(2)).unwrap();
        hv.submit(RtJob::new(0, 1, 0, 10, 100)).unwrap();
        hv.run(2); // two slots of vm 0's job done
        hv.submit(RtJob::new(1, 2, 2, 2, 6)).unwrap();
        hv.run(2);
        // VM 1's job must have both slots 2 and 3.
        assert_eq!(hv.metrics().completed, 1);
        hv.run(10);
        assert_eq!(hv.metrics().completed, 2);
        assert_eq!(hv.metrics().missed, 0);
    }

    #[test]
    fn server_policy_enforces_isolation() {
        // Two VMs, each with a (Π=4, Θ=2) server on an all-free table. VM 0
        // floods; VM 1 must still receive 2 slots per period.
        let servers = vec![
            PeriodicServer::new(4, 2).unwrap(),
            PeriodicServer::new(4, 2).unwrap(),
        ];
        let params = HypervisorParams::new(2).with_policy(GschedPolicy::ServerBased(servers));
        let mut hv = Hypervisor::new(params).unwrap();
        // VM 0: endless stream of tight jobs (2 per period, each 2 slots —
        // twice its budget). VM 1: one job per period, 2 slots, deadline 4.
        for k in 0..8 {
            let t0 = 4 * k;
            hv.submit(RtJob::new(0, 100 + k, t0, 2, t0 + 2)).unwrap();
            hv.submit(RtJob::new(0, 200 + k, t0, 2, t0 + 4)).unwrap();
            hv.submit(RtJob::new(1, 300 + k, t0, 2, t0 + 4)).unwrap();
            hv.run(4);
        }
        // VM 1 completed all 8 jobs despite VM 0's overload.
        let vm1_done = 8;
        assert!(hv.metrics().completed >= vm1_done);
        // VM 0 must have missed someone (it asked for 4 slots per 4-slot
        // period with a 2-slot budget).
        assert!(hv.metrics().missed > 0);
        // And VM 1's pool is empty — its jobs were never starved.
        assert!(hv.pools()[1].is_empty());
    }

    #[test]
    fn step_is_deterministic() {
        let run = || {
            let params = HypervisorParams::new(2).with_predefined(vec![predefined(1, 8, 2)]);
            let mut hv = Hypervisor::new(params).unwrap();
            for k in 0..20 {
                let t = hv.now();
                let _ = hv.submit(RtJob::new((k % 2) as usize, k, t, 1 + k % 3, t + 20));
                hv.run(5);
            }
            (
                hv.metrics().completed,
                hv.metrics().missed,
                hv.metrics().response_bytes,
                hv.metrics().latency.mean(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_slot_accounting_adds_up() {
        let params = HypervisorParams::new(1).with_predefined(vec![predefined(1, 4, 2)]);
        let mut hv = Hypervisor::new(params).unwrap();
        hv.submit(RtJob::new(0, 9, 0, 2, 50)).unwrap();
        hv.run(40);
        assert_eq!(hv.metrics().total_slots(), 40);
        assert!(hv.metrics().no_misses());
    }

    #[test]
    fn trace_records_scheduling_events() {
        use ioguard_sim::trace::TraceKind;
        let mut hv = Hypervisor::new(HypervisorParams::new(2)).unwrap();
        hv.enable_trace(256);
        // Long lax job, then a tight one that preempts it.
        hv.submit(RtJob::new(0, 1, 0, 5, 100)).unwrap();
        hv.run(2);
        hv.submit(RtJob::new(1, 2, 2, 1, 6)).unwrap();
        hv.run(10);
        let trace = hv.trace();
        assert_eq!(trace.of_kind(TraceKind::Release).count(), 2);
        assert_eq!(trace.of_kind(TraceKind::Complete).count(), 2);
        assert_eq!(
            trace.of_kind(TraceKind::Preempt).count(),
            1,
            "job 1 preempted once by job 2: {:?}",
            trace.iter().collect::<Vec<_>>()
        );
        let preempt = trace.of_kind(TraceKind::Preempt).next().unwrap();
        assert_eq!(preempt.task, 1);
        // Completion order: tight job 2 first.
        let completes: Vec<u32> = trace.of_kind(TraceKind::Complete).map(|e| e.task).collect();
        assert_eq!(completes, vec![2, 1]);
    }

    #[test]
    fn trace_records_misses_and_table_fires() {
        use ioguard_sim::trace::TraceKind;
        let params = HypervisorParams::new(1).with_predefined(vec![predefined(9, 4, 1)]);
        let mut hv = Hypervisor::new(params).unwrap();
        hv.enable_trace(64);
        hv.submit(RtJob::new(0, 1, 0, 10, 3)).unwrap(); // must miss
        hv.run(8);
        let trace = hv.trace();
        assert_eq!(trace.of_kind(TraceKind::DeadlineMiss).count(), 1);
        assert_eq!(trace.of_kind(TraceKind::TableFire).count(), 2);
        // Disabled by default: a fresh hypervisor records nothing.
        let mut fresh = Hypervisor::new(HypervisorParams::new(1)).unwrap();
        fresh.submit(RtJob::new(0, 1, 0, 1, 5)).unwrap();
        fresh.run(3);
        assert!(fresh.trace().is_empty());
    }

    #[test]
    fn watchdog_retries_then_degrades_and_recovers() {
        use crate::driver::RetryPolicy;
        let params = HypervisorParams::new(1)
            .with_watchdog(RetryPolicy {
                timeout_slots: 2,
                max_retries: 2,
                backoff_base: 1,
                backoff_cap: 2,
            })
            .with_degradation(DegradationPolicy {
                healthy_slots_to_recover: 8,
            });
        let mut hv = Hypervisor::new(params).unwrap();
        hv.enable_trace(256);
        hv.submit(RtJob::new(0, 1, 0, 2, 1_000)).unwrap();
        hv.inject_device_stall(50);
        hv.run(50);
        // One exhaustion cycle → Degraded; the fault persists, so a second
        // cycle escalates to the P-channel-only fallback table.
        assert_eq!(hv.mode(), HvMode::PchannelOnly);
        let m = hv.metrics().clone();
        assert!(m.stalled_slots > 0, "{m:?}");
        assert!(m.backoff_slots > 0, "{m:?}");
        assert_eq!(m.retries, 4, "2 bounded retries per cycle: {m:?}");
        assert_eq!(m.vm(0).retries, 4);
        assert_eq!(m.mode_changes, 2);
        let trace = hv.trace();
        assert_eq!(trace.of_kind(TraceKind::Fault).count(), 1);
        assert_eq!(trace.of_kind(TraceKind::Retry).count(), 4);
        assert_eq!(trace.of_kind(TraceKind::ModeChange).count(), 2);
        // Fault clears at slot 50: the job completes, and after the healthy
        // run the mode steps back to Normal.
        hv.run(20);
        assert_eq!(hv.mode(), HvMode::Normal);
        assert_eq!(hv.metrics().completed, 1);
        assert!(hv.trace().of_kind(TraceKind::Recovery).count() >= 1);
        let normal_ordinal = HvMode::Normal.ordinal();
        assert!(hv
            .trace()
            .of_kind(TraceKind::ModeChange)
            .any(|e| e.task == normal_ordinal));
    }

    #[test]
    fn degraded_mode_sheds_best_effort_keeps_critical() {
        let mut hv = Hypervisor::new(HypervisorParams::new(1)).unwrap();
        hv.submit(RtJob::new(0, 1, 0, 2, 100)).unwrap();
        hv.submit(RtJob::new(0, 2, 0, 2, 100).best_effort())
            .unwrap();
        hv.degrade();
        assert_eq!(hv.mode(), HvMode::Degraded);
        assert_eq!(hv.metrics().dropped_best_effort, 1);
        assert_eq!(hv.metrics().vm(0).dropped_best_effort, 1);
        // New best-effort work is refused at admission; critical accepted.
        assert_eq!(
            hv.submit(RtJob::new(0, 3, 0, 1, 100).best_effort()),
            Err(HvError::DegradedMode)
        );
        hv.submit(RtJob::new(0, 4, 0, 1, 100)).unwrap();
        hv.run(10);
        assert_eq!(hv.metrics().completed, 2);
        assert!(hv.metrics().no_misses());
    }

    #[test]
    fn pchannel_only_mode_refuses_all_runtime_work() {
        let params = HypervisorParams::new(1).with_predefined(vec![predefined(1, 2, 1)]);
        let mut hv = Hypervisor::new(params).unwrap();
        hv.degrade();
        hv.degrade();
        assert_eq!(hv.mode(), HvMode::PchannelOnly);
        assert_eq!(
            hv.submit(RtJob::new(0, 1, 0, 1, 100)),
            Err(HvError::DegradedMode)
        );
        assert_eq!(hv.metrics().missed, 1, "refused critical job is a miss");
        hv.run(4);
        // σ* still fires; no R-channel slots are granted.
        assert_eq!(hv.metrics().predefined_completed, 2);
        assert_eq!(hv.metrics().rchannel_slots, 0);
    }

    #[test]
    fn admission_guard_throttles_babbling_vm() {
        let params = HypervisorParams::new(2).with_admission_guard(AdmissionGuard {
            window: 10,
            max_submissions: 3,
            throttle_slots: 20,
        });
        let mut hv = Hypervisor::new(params).unwrap();
        hv.enable_trace(64);
        for k in 0..3 {
            hv.submit(RtJob::new(0, k, 0, 1, 100)).unwrap();
        }
        // Fourth submission in the window trips flood control.
        let err = hv.submit(RtJob::new(0, 3, 0, 1, 100)).unwrap_err();
        assert!(matches!(err, HvError::Throttled { vm: 0, .. }), "{err}");
        assert!(matches!(
            hv.submit(RtJob::new(0, 4, 0, 1, 100)),
            Err(HvError::Throttled { .. })
        ));
        assert_eq!(hv.metrics().vm(0).throttled_submissions, 2);
        assert_eq!(hv.trace().of_kind(TraceKind::Throttle).count(), 1);
        // The other VM is unaffected, now and throughout the penalty.
        hv.submit(RtJob::new(1, 10, 0, 1, 100)).unwrap();
        hv.run(25);
        assert!(hv.metrics().no_misses_for(1));
        // Penalty expired: VM 0 submits again (fresh window).
        let t = hv.now();
        hv.submit(RtJob::new(0, 5, t, 1, t + 50)).unwrap();
        hv.run(5);
        assert_eq!(hv.metrics().completed, 5);
    }

    #[test]
    fn throttled_vm_denied_slots_but_others_progress() {
        let params = HypervisorParams::new(2).with_admission_guard(AdmissionGuard {
            window: 100,
            max_submissions: 2,
            throttle_slots: 50,
        });
        let mut hv = Hypervisor::new(params).unwrap();
        // VM 0 fills its allowance with long tight-deadline work, then
        // trips the guard; its buffered jobs must not crowd out VM 1.
        hv.submit(RtJob::new(0, 1, 0, 30, 40)).unwrap();
        hv.submit(RtJob::new(0, 2, 0, 30, 40)).unwrap();
        let _ = hv.submit(RtJob::new(0, 3, 0, 30, 40));
        hv.submit(RtJob::new(1, 10, 0, 5, 60)).unwrap();
        hv.run(20);
        // VM 0 is scheduler-throttled: its EDF-earliest jobs get nothing.
        assert!(hv.metrics().vm(0).throttled_slots > 0);
        assert_eq!(hv.metrics().completed, 1, "vm 1 completed despite edf");
        assert!(hv.metrics().no_misses_for(1));
    }

    #[test]
    fn guarded_edf_policy_validates_server_count() {
        let bad = HypervisorParams::new(2).with_policy(GschedPolicy::GuardedEdf(vec![
            PeriodicServer::new(4, 1).unwrap(),
        ]));
        assert!(matches!(
            Hypervisor::new(bad),
            Err(HvError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn drain_and_restore_carry_entries_exactly_once() {
        let mut hv = Hypervisor::new(HypervisorParams::new(2)).unwrap();
        hv.submit(RtJob::new(0, 1, 0, 3, 100)).unwrap();
        hv.submit(RtJob::new(1, 2, 0, 2, 50)).unwrap();
        hv.run(1); // one slot of progress on the tighter job
        let carried = hv.drain_pools();
        assert_eq!(carried.len(), 2);
        assert!(hv.pools().iter().all(IoPool::is_empty));
        // Deterministic order: vm ascending.
        assert_eq!(carried[0].0, 0);
        assert_eq!(carried[1].0, 1);
        // Progress is preserved in the carried entry.
        assert_eq!(carried[1].1.remaining, 1);
        // Restore into a fresh hypervisor; no Admit events, jobs finish.
        let mut next = Hypervisor::new(HypervisorParams::new(2)).unwrap();
        next.attach_obs(64);
        for (vm, entry) in carried {
            next.restore_entry(vm, entry).unwrap();
        }
        assert_eq!(next.obs().unwrap().sink.recorded(), 0, "no admit events");
        next.run(10);
        assert_eq!(next.metrics().completed, 2);
        // Restore into an unknown VM is a typed error.
        let mut small = Hypervisor::new(HypervisorParams::new(1)).unwrap();
        let entry = PoolEntry {
            task_id: 9,
            deadline: 10,
            remaining: 1,
            enqueued_at: 0,
            first_dispatch: NEVER_DISPATCHED,
            response_bytes: 64,
            critical: true,
        };
        assert!(matches!(
            small.restore_entry(5, entry),
            Err(HvError::UnknownVm { vm: 5, vms: 1 })
        ));
    }

    #[test]
    fn analysis_schedulable_implies_no_hypervisor_misses() {
        // Cross-validation against the theory crate: build a system that
        // passes the two-layer test, then drive the hypervisor with the
        // synchronous release pattern and expect zero misses.
        use ioguard_sched::analysis::TwoLayerAnalysis;
        use ioguard_sched::task::TaskSet;

        let pre = vec![predefined(1, 10, 2)]; // σ*: 2 occupied per 10
        let servers = vec![
            PeriodicServer::new(5, 2).unwrap(),
            PeriodicServer::new(10, 3).unwrap(),
        ];
        let vm0: TaskSet = vec![SporadicTask::new(20, 2, 10).unwrap()].into();
        let vm1: TaskSet = vec![SporadicTask::new(40, 4, 30).unwrap()].into();

        let pch = PChannel::build(pre.clone(), 1000).unwrap();
        let analysis = TwoLayerAnalysis::new(
            pch.table().clone(),
            servers.clone(),
            vec![vm0.clone(), vm1.clone()],
        )
        .unwrap();
        assert!(analysis.schedulable().unwrap().is_schedulable());

        let params = HypervisorParams::new(2)
            .with_predefined(pre)
            .with_policy(GschedPolicy::ServerBased(servers));
        let mut hv = Hypervisor::new(params).unwrap();
        let horizon = 2000;
        let mut next_id = 0u64;
        for t in 0..horizon {
            for (vm, ts) in [(0usize, &vm0), (1usize, &vm1)] {
                for task in ts.iter() {
                    if t % task.period() == 0 {
                        next_id += 1;
                        hv.submit(RtJob::new(vm, next_id, t, task.wcet(), t + task.deadline()))
                            .unwrap();
                    }
                }
            }
            hv.step();
        }
        hv.run(60); // drain
        assert_eq!(hv.metrics().missed, 0, "{:?}", hv.metrics());
        assert!(hv.metrics().completed > 0);
        assert!(hv.metrics().predefined_completed > 0);
    }
}
