//! The G-Sched: allocating free slots of σ\* across I/O pools.
//!
//! The hardware compares all shadow registers simultaneously and picks the
//! next run-time task for each free slot. Two policies:
//!
//! * [`GschedPolicy::GlobalEdf`] — the literal micro-architecture: the
//!   earliest deadline among all shadow registers wins the slot.
//! * [`GschedPolicy::ServerBased`] — the variant analyzed in Sec. IV: each
//!   VM is backed by a periodic server `Γ_i = (Π_i, Θ_i)`; among VMs with
//!   remaining budget the earliest *server* deadline wins, and the VM's
//!   pool then runs its own L-Sched winner. This gives hard inter-VM
//!   isolation (a misbehaving VM cannot exceed its budget).

// lint: allow(indexing, file) — server_state has one entry per server by
// construction; every index is an enumerate() index over that same slice or
// over pools, whose length is debug-asserted equal at grant time.

use serde::{Deserialize, Serialize};

use ioguard_sched::task::PeriodicServer;

use crate::pool::IoPool;
use crate::shadowindex::ShadowIndex;

/// Slot-allocation policy of the G-Sched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GschedPolicy {
    /// Pure preemptive EDF over all shadow registers.
    GlobalEdf,
    /// Periodic-server mediated allocation (one server per VM).
    ServerBased(Vec<PeriodicServer>),
    /// EDF over shadow registers, guarded by per-VM server budgets: the
    /// earliest *task* deadline wins (like [`GschedPolicy::GlobalEdf`]), but
    /// a VM that has burned its budget `Θ_i` inside the current period `Π_i`
    /// is throttled — skipped instead of stealing free slots from σ\* — so a
    /// WCET-overrunning or babbling VM cannot crowd out the others.
    GuardedEdf(Vec<PeriodicServer>),
}

/// Run-time state of the G-Sched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gsched {
    policy: GschedPolicy,
    /// Per-VM (remaining budget, current server deadline) — only used by
    /// the server-backed policies.
    server_state: Vec<(u64, u64)>,
    /// Per-VM external throttle windows (`vm` gets no slot while
    /// `now < throttle_until[vm]`); empty until the first throttle.
    throttle_until: Vec<u64>,
    /// Slot of the most recent [`Gsched::tick`].
    now: u64,
}

impl Gsched {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if a server-based policy supplies a different number of
    /// servers than pools will exist (checked at grant time via slice
    /// lengths; construction just snapshots the initial budgets).
    pub fn new(policy: GschedPolicy) -> Self {
        let server_state = match &policy {
            GschedPolicy::GlobalEdf => Vec::new(),
            GschedPolicy::ServerBased(servers) | GschedPolicy::GuardedEdf(servers) => {
                servers.iter().map(|s| (s.budget(), s.period())).collect()
            }
        };
        Self {
            policy,
            server_state,
            throttle_until: Vec::new(),
            now: 0,
        }
    }

    /// Advances server replenishment to slot `now` (no-op for global EDF).
    pub fn tick(&mut self, now: u64) {
        self.now = now;
        if let GschedPolicy::ServerBased(servers) | GschedPolicy::GuardedEdf(servers) = &self.policy
        {
            for (i, server) in servers.iter().enumerate() {
                if now > 0 && now.is_multiple_of(server.period()) {
                    self.server_state[i] = (server.budget(), now.saturating_add(server.period()));
                }
            }
        }
    }

    /// Opens an external throttle window: VM `vm` receives no free slot
    /// while `now < until` regardless of policy (flood-control escalation;
    /// an out-of-range `vm` is ignored).
    pub fn throttle(&mut self, vm: usize, until: u64) {
        if self.throttle_until.len() <= vm {
            if vm >= 1 << 20 {
                return; // nonsensical VM index; don't let it size the table
            }
            self.throttle_until.resize(vm + 1, 0);
        }
        self.throttle_until[vm] = self.throttle_until[vm].max(until);
    }

    /// True while VM `vm` sits inside an external throttle window.
    pub fn is_throttled(&self, vm: usize) -> bool {
        self.throttle_until.get(vm).is_some_and(|&u| self.now < u)
    }

    /// True when any slot-denial mechanism can be active: a server-backed
    /// policy, or at least one throttle window ever opened. Callers use
    /// this to skip per-slot denial accounting on the unguarded fast path.
    pub fn has_guards(&self) -> bool {
        !matches!(self.policy, GschedPolicy::GlobalEdf) || !self.throttle_until.is_empty()
    }

    /// True when VM `vm` would be denied a free slot right now even with
    /// buffered work: externally throttled, or budget-exhausted under a
    /// server-backed policy.
    pub fn is_blocked(&self, vm: usize) -> bool {
        if self.is_throttled(vm) {
            return true;
        }
        match self.policy {
            GschedPolicy::GlobalEdf => false,
            GschedPolicy::ServerBased(_) | GschedPolicy::GuardedEdf(_) => {
                self.server_state.get(vm).is_none_or(|s| s.0 == 0)
            }
        }
    }

    /// Picks the VM that receives this free slot, inspecting the pools'
    /// shadow registers. Returns `None` when no eligible pool has work.
    ///
    /// This is the reference path; the hypervisor's hot loop uses
    /// [`Gsched::grant_indexed`] with a maintained comparator tree instead.
    pub fn grant(&mut self, pools: &[IoPool]) -> Option<usize> {
        match &self.policy {
            GschedPolicy::GlobalEdf => pools
                .iter()
                .enumerate()
                .filter(|(vm, _)| !self.is_throttled(*vm))
                .filter_map(|(vm, p)| p.shadow_key().map(|(d, t)| (d, t, vm)))
                .min()
                .map(|(_, _, vm)| vm),
            GschedPolicy::ServerBased(_) => self.grant_server_based(pools),
            GschedPolicy::GuardedEdf(_) => self.grant_guarded_edf(pools),
        }
    }

    /// Picks the VM that receives this free slot using the pre-resolved
    /// comparator tree over shadow registers.
    ///
    /// Global EDF reads the winner off the tree root in O(1); the
    /// server-based policy compares per-VM server deadlines (O(V) over the
    /// VM count, never over pool contents). Behaviour is identical to
    /// [`Gsched::grant`] as long as `index` mirrors the pools' shadow
    /// registers.
    pub fn grant_indexed(&mut self, pools: &[IoPool], index: &ShadowIndex) -> Option<usize> {
        match &self.policy {
            GschedPolicy::GlobalEdf => {
                let winner = index.min().map(|(_, _, vm)| vm);
                match winner {
                    // Fast path: comparator-tree winner is not throttled.
                    Some(vm) if !self.is_throttled(vm) => Some(vm),
                    // A throttle window is open on the winner: fall back to
                    // the filtered linear scan (rare; throttles only exist
                    // under active flood control).
                    Some(_) => self.grant(pools),
                    None => None,
                }
            }
            GschedPolicy::ServerBased(_) => self.grant_server_based(pools),
            GschedPolicy::GuardedEdf(_) => self.grant_guarded_edf(pools),
        }
    }

    /// EDF over shadow registers restricted to VMs with remaining budget
    /// and no open throttle window; the winner burns one budget slot.
    fn grant_guarded_edf(&mut self, pools: &[IoPool]) -> Option<usize> {
        debug_assert_eq!(self.server_state.len(), pools.len(), "one server per pool");
        let winner = pools
            .iter()
            .enumerate()
            .filter(|(vm, _)| self.server_state[*vm].0 > 0 && !self.is_throttled(*vm))
            .filter_map(|(vm, p)| p.shadow_key().map(|(d, t)| (d, t, vm)))
            .min()
            .map(|(_, _, vm)| vm);
        if let Some(vm) = winner {
            self.server_state[vm].0 -= 1;
        }
        winner
    }

    fn grant_server_based(&mut self, pools: &[IoPool]) -> Option<usize> {
        debug_assert_eq!(self.server_state.len(), pools.len(), "one server per pool");
        let winner = pools
            .iter()
            .enumerate()
            .filter(|(vm, p)| {
                self.server_state[*vm].0 > 0 && !p.is_empty() && !self.is_throttled(*vm)
            })
            .map(|(vm, _)| (self.server_state[vm].1, vm))
            .min();
        if let Some((_, vm)) = winner {
            self.server_state[vm].0 -= 1;
            Some(vm)
        } else {
            None
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &GschedPolicy {
        &self.policy
    }

    /// Remaining budget of VM `vm` (global EDF reports `u64::MAX`; an
    /// out-of-range VM reports zero rather than panicking).
    pub fn remaining_budget(&self, vm: usize) -> u64 {
        match self.policy {
            GschedPolicy::GlobalEdf => u64::MAX,
            GschedPolicy::ServerBased(_) | GschedPolicy::GuardedEdf(_) => {
                self.server_state.get(vm).map_or(0, |s| s.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolEntry;

    fn pool_with(deadlines: &[(u64, u64)]) -> IoPool {
        let mut p = IoPool::new(16);
        for &(task_id, deadline) in deadlines {
            p.insert(PoolEntry {
                task_id,
                deadline,
                remaining: 1,
                enqueued_at: 0,
                first_dispatch: u64::MAX,
                response_bytes: 0,
                critical: true,
            })
            .unwrap();
        }
        p
    }

    #[test]
    fn global_edf_picks_earliest_across_pools() {
        let mut g = Gsched::new(GschedPolicy::GlobalEdf);
        let pools = vec![
            pool_with(&[(1, 100)]),
            pool_with(&[(2, 50)]),
            pool_with(&[(3, 75)]),
        ];
        assert_eq!(g.grant(&pools), Some(1));
    }

    #[test]
    fn global_edf_skips_empty_pools() {
        let mut g = Gsched::new(GschedPolicy::GlobalEdf);
        let pools = vec![pool_with(&[]), pool_with(&[(7, 10)])];
        assert_eq!(g.grant(&pools), Some(1));
        let empty = vec![pool_with(&[]), pool_with(&[])];
        assert_eq!(g.grant(&empty), None);
    }

    #[test]
    fn global_edf_has_unlimited_budget() {
        let g = Gsched::new(GschedPolicy::GlobalEdf);
        assert_eq!(g.remaining_budget(0), u64::MAX);
    }

    #[test]
    fn server_based_consumes_budget() {
        let servers = vec![PeriodicServer::new(10, 2).unwrap()];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![pool_with(&[(1, 5), (2, 6), (3, 7)])];
        assert_eq!(g.grant(&pools), Some(0));
        assert_eq!(g.remaining_budget(0), 1);
        assert_eq!(g.grant(&pools), Some(0));
        // Budget exhausted: the pool has work but gets nothing.
        assert_eq!(g.grant(&pools), None);
        assert_eq!(g.remaining_budget(0), 0);
    }

    #[test]
    fn server_based_replenishes_each_period() {
        let servers = vec![PeriodicServer::new(4, 1).unwrap()];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![pool_with(&[(1, 100)])];
        assert_eq!(g.grant(&pools), Some(0));
        assert_eq!(g.grant(&pools), None);
        g.tick(4); // period boundary: budget restored
        assert_eq!(g.grant(&pools), Some(0));
    }

    #[test]
    fn server_based_isolates_misbehaving_vm() {
        // VM 0 floods its pool with tight deadlines, VM 1 has one modest
        // job. Under servers, VM 1 still gets slots once VM 0's budget runs
        // out — the paper's inter-VM isolation claim.
        let servers = vec![
            PeriodicServer::new(10, 2).unwrap(),
            PeriodicServer::new(10, 2).unwrap(),
        ];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![
            pool_with(&[(1, 1), (2, 2), (3, 3), (4, 4)]),
            pool_with(&[(9, 1000)]),
        ];
        let grants: Vec<Option<usize>> = (0..4).map(|_| g.grant(&pools)).collect();
        // VM 0 wins its 2 budget slots (earlier server deadline tie broken
        // by index), then VM 1 gets served despite its far deadline.
        assert_eq!(grants, vec![Some(0), Some(0), Some(1), Some(1)]);
    }

    #[test]
    fn server_deadline_ordering_controls_grants() {
        // VM 1's server has the earlier deadline after replenishment.
        let servers = vec![
            PeriodicServer::new(20, 5).unwrap(),
            PeriodicServer::new(5, 1).unwrap(),
        ];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![pool_with(&[(1, 50)]), pool_with(&[(2, 999)])];
        // Initial deadlines: VM0 = 20, VM1 = 5 → VM1 first despite its task
        // deadline being later (isolation is by server, not task).
        assert_eq!(g.grant(&pools), Some(1));
        assert_eq!(g.grant(&pools), Some(0));
    }

    #[test]
    fn policy_accessor() {
        let g = Gsched::new(GschedPolicy::GlobalEdf);
        assert_eq!(*g.policy(), GschedPolicy::GlobalEdf);
    }

    #[test]
    fn guarded_edf_orders_by_task_deadline_within_budget() {
        // Unlike ServerBased (server-deadline order), GuardedEdf picks the
        // earliest *task* deadline — here VM 1 despite equal servers.
        let servers = vec![
            PeriodicServer::new(10, 2).unwrap(),
            PeriodicServer::new(10, 2).unwrap(),
        ];
        let mut g = Gsched::new(GschedPolicy::GuardedEdf(servers));
        let pools = vec![pool_with(&[(1, 100)]), pool_with(&[(2, 50)])];
        assert_eq!(g.grant(&pools), Some(1));
        assert_eq!(g.remaining_budget(1), 1);
    }

    #[test]
    fn guarded_edf_throttles_overrunning_vm() {
        // VM 0 floods with the tightest deadlines but only holds budget for
        // 2 slots per period — VM 1's single job still gets served.
        let servers = vec![
            PeriodicServer::new(10, 2).unwrap(),
            PeriodicServer::new(10, 2).unwrap(),
        ];
        let mut g = Gsched::new(GschedPolicy::GuardedEdf(servers));
        let pools = vec![
            pool_with(&[(1, 1), (2, 2), (3, 3), (4, 4)]),
            pool_with(&[(9, 1000)]),
        ];
        let grants: Vec<Option<usize>> = (0..3).map(|_| g.grant(&pools)).collect();
        assert_eq!(grants, vec![Some(0), Some(0), Some(1)]);
        assert!(g.is_blocked(0), "budget burned: vm 0 is throttled");
        assert!(!g.is_blocked(1), "vm 1 still holds budget");
        assert_eq!(g.grant(&pools), Some(1));
    }

    #[test]
    fn guarded_edf_replenishes_each_period() {
        let servers = vec![PeriodicServer::new(4, 1).unwrap()];
        let mut g = Gsched::new(GschedPolicy::GuardedEdf(servers));
        let pools = vec![pool_with(&[(1, 100)])];
        assert_eq!(g.grant(&pools), Some(0));
        assert_eq!(g.grant(&pools), None);
        g.tick(4);
        assert_eq!(g.grant(&pools), Some(0));
    }

    #[test]
    fn external_throttle_blocks_all_policies() {
        let mut g = Gsched::new(GschedPolicy::GlobalEdf);
        let pools = vec![pool_with(&[(1, 5)]), pool_with(&[(2, 50)])];
        g.tick(10);
        g.throttle(0, 20);
        assert!(g.is_throttled(0) && g.is_blocked(0));
        // The throttled VM has the earlier deadline but loses the slot.
        assert_eq!(g.grant(&pools), Some(1));
        g.tick(20); // window closed
        assert!(!g.is_throttled(0));
        assert_eq!(g.grant(&pools), Some(0));
    }

    #[test]
    fn throttle_ignores_absurd_vm_index() {
        let mut g = Gsched::new(GschedPolicy::GlobalEdf);
        g.throttle(usize::MAX, 100);
        assert!(!g.is_throttled(usize::MAX));
    }
}
