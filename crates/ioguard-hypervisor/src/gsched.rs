//! The G-Sched: allocating free slots of σ\* across I/O pools.
//!
//! The hardware compares all shadow registers simultaneously and picks the
//! next run-time task for each free slot. Two policies:
//!
//! * [`GschedPolicy::GlobalEdf`] — the literal micro-architecture: the
//!   earliest deadline among all shadow registers wins the slot.
//! * [`GschedPolicy::ServerBased`] — the variant analyzed in Sec. IV: each
//!   VM is backed by a periodic server `Γ_i = (Π_i, Θ_i)`; among VMs with
//!   remaining budget the earliest *server* deadline wins, and the VM's
//!   pool then runs its own L-Sched winner. This gives hard inter-VM
//!   isolation (a misbehaving VM cannot exceed its budget).

// lint: allow(indexing, file) — server_state has one entry per server by
// construction; every index is an enumerate() index over that same slice or
// over pools, whose length is debug-asserted equal at grant time.

use serde::{Deserialize, Serialize};

use ioguard_sched::task::PeriodicServer;

use crate::pool::IoPool;
use crate::shadowindex::ShadowIndex;

/// Slot-allocation policy of the G-Sched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GschedPolicy {
    /// Pure preemptive EDF over all shadow registers.
    GlobalEdf,
    /// Periodic-server mediated allocation (one server per VM).
    ServerBased(Vec<PeriodicServer>),
}

/// Run-time state of the G-Sched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gsched {
    policy: GschedPolicy,
    /// Per-VM (remaining budget, current server deadline) — only used by
    /// the server-based policy.
    server_state: Vec<(u64, u64)>,
}

impl Gsched {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if a server-based policy supplies a different number of
    /// servers than pools will exist (checked at grant time via slice
    /// lengths; construction just snapshots the initial budgets).
    pub fn new(policy: GschedPolicy) -> Self {
        let server_state = match &policy {
            GschedPolicy::GlobalEdf => Vec::new(),
            GschedPolicy::ServerBased(servers) => {
                servers.iter().map(|s| (s.budget(), s.period())).collect()
            }
        };
        Self {
            policy,
            server_state,
        }
    }

    /// Advances server replenishment to slot `now` (no-op for global EDF).
    pub fn tick(&mut self, now: u64) {
        if let GschedPolicy::ServerBased(servers) = &self.policy {
            for (i, server) in servers.iter().enumerate() {
                if now > 0 && now.is_multiple_of(server.period()) {
                    self.server_state[i] = (server.budget(), now.saturating_add(server.period()));
                }
            }
        }
    }

    /// Picks the VM that receives this free slot, inspecting the pools'
    /// shadow registers. Returns `None` when no eligible pool has work.
    ///
    /// This is the reference path; the hypervisor's hot loop uses
    /// [`Gsched::grant_indexed`] with a maintained comparator tree instead.
    pub fn grant(&mut self, pools: &[IoPool]) -> Option<usize> {
        match &self.policy {
            GschedPolicy::GlobalEdf => pools
                .iter()
                .enumerate()
                .filter_map(|(vm, p)| p.shadow_key().map(|(d, t)| (d, t, vm)))
                .min()
                .map(|(_, _, vm)| vm),
            GschedPolicy::ServerBased(_) => self.grant_server_based(pools),
        }
    }

    /// Picks the VM that receives this free slot using the pre-resolved
    /// comparator tree over shadow registers.
    ///
    /// Global EDF reads the winner off the tree root in O(1); the
    /// server-based policy compares per-VM server deadlines (O(V) over the
    /// VM count, never over pool contents). Behaviour is identical to
    /// [`Gsched::grant`] as long as `index` mirrors the pools' shadow
    /// registers.
    pub fn grant_indexed(&mut self, pools: &[IoPool], index: &ShadowIndex) -> Option<usize> {
        match &self.policy {
            GschedPolicy::GlobalEdf => index.min().map(|(_, _, vm)| vm),
            GschedPolicy::ServerBased(_) => self.grant_server_based(pools),
        }
    }

    fn grant_server_based(&mut self, pools: &[IoPool]) -> Option<usize> {
        debug_assert_eq!(self.server_state.len(), pools.len(), "one server per pool");
        let winner = pools
            .iter()
            .enumerate()
            .filter(|(vm, p)| self.server_state[*vm].0 > 0 && !p.is_empty())
            .map(|(vm, _)| (self.server_state[vm].1, vm))
            .min();
        if let Some((_, vm)) = winner {
            self.server_state[vm].0 -= 1;
            Some(vm)
        } else {
            None
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &GschedPolicy {
        &self.policy
    }

    /// Remaining budget of VM `vm` (global EDF reports `u64::MAX`; an
    /// out-of-range VM reports zero rather than panicking).
    pub fn remaining_budget(&self, vm: usize) -> u64 {
        match self.policy {
            GschedPolicy::GlobalEdf => u64::MAX,
            GschedPolicy::ServerBased(_) => self.server_state.get(vm).map_or(0, |s| s.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolEntry;

    fn pool_with(deadlines: &[(u64, u64)]) -> IoPool {
        let mut p = IoPool::new(16);
        for &(task_id, deadline) in deadlines {
            p.insert(PoolEntry {
                task_id,
                deadline,
                remaining: 1,
                enqueued_at: 0,
                response_bytes: 0,
                critical: true,
            })
            .unwrap();
        }
        p
    }

    #[test]
    fn global_edf_picks_earliest_across_pools() {
        let mut g = Gsched::new(GschedPolicy::GlobalEdf);
        let pools = vec![
            pool_with(&[(1, 100)]),
            pool_with(&[(2, 50)]),
            pool_with(&[(3, 75)]),
        ];
        assert_eq!(g.grant(&pools), Some(1));
    }

    #[test]
    fn global_edf_skips_empty_pools() {
        let mut g = Gsched::new(GschedPolicy::GlobalEdf);
        let pools = vec![pool_with(&[]), pool_with(&[(7, 10)])];
        assert_eq!(g.grant(&pools), Some(1));
        let empty = vec![pool_with(&[]), pool_with(&[])];
        assert_eq!(g.grant(&empty), None);
    }

    #[test]
    fn global_edf_has_unlimited_budget() {
        let g = Gsched::new(GschedPolicy::GlobalEdf);
        assert_eq!(g.remaining_budget(0), u64::MAX);
    }

    #[test]
    fn server_based_consumes_budget() {
        let servers = vec![PeriodicServer::new(10, 2).unwrap()];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![pool_with(&[(1, 5), (2, 6), (3, 7)])];
        assert_eq!(g.grant(&pools), Some(0));
        assert_eq!(g.remaining_budget(0), 1);
        assert_eq!(g.grant(&pools), Some(0));
        // Budget exhausted: the pool has work but gets nothing.
        assert_eq!(g.grant(&pools), None);
        assert_eq!(g.remaining_budget(0), 0);
    }

    #[test]
    fn server_based_replenishes_each_period() {
        let servers = vec![PeriodicServer::new(4, 1).unwrap()];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![pool_with(&[(1, 100)])];
        assert_eq!(g.grant(&pools), Some(0));
        assert_eq!(g.grant(&pools), None);
        g.tick(4); // period boundary: budget restored
        assert_eq!(g.grant(&pools), Some(0));
    }

    #[test]
    fn server_based_isolates_misbehaving_vm() {
        // VM 0 floods its pool with tight deadlines, VM 1 has one modest
        // job. Under servers, VM 1 still gets slots once VM 0's budget runs
        // out — the paper's inter-VM isolation claim.
        let servers = vec![
            PeriodicServer::new(10, 2).unwrap(),
            PeriodicServer::new(10, 2).unwrap(),
        ];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![
            pool_with(&[(1, 1), (2, 2), (3, 3), (4, 4)]),
            pool_with(&[(9, 1000)]),
        ];
        let grants: Vec<Option<usize>> = (0..4).map(|_| g.grant(&pools)).collect();
        // VM 0 wins its 2 budget slots (earlier server deadline tie broken
        // by index), then VM 1 gets served despite its far deadline.
        assert_eq!(grants, vec![Some(0), Some(0), Some(1), Some(1)]);
    }

    #[test]
    fn server_deadline_ordering_controls_grants() {
        // VM 1's server has the earlier deadline after replenishment.
        let servers = vec![
            PeriodicServer::new(20, 5).unwrap(),
            PeriodicServer::new(5, 1).unwrap(),
        ];
        let mut g = Gsched::new(GschedPolicy::ServerBased(servers));
        let pools = vec![pool_with(&[(1, 50)]), pool_with(&[(2, 999)])];
        // Initial deadlines: VM0 = 20, VM1 = 5 → VM1 first despite its task
        // deadline being later (isolation is by server, not task).
        assert_eq!(g.grant(&pools), Some(1));
        assert_eq!(g.grant(&pools), Some(0));
    }

    #[test]
    fn policy_accessor() {
        let g = Gsched::new(GschedPolicy::GlobalEdf);
        assert_eq!(*g.policy(), GschedPolicy::GlobalEdf);
    }
}
