//! Multi-device hypervisor assembly.
//!
//! The evaluated hypervisor "contained 2 groups of virtualization managers
//! and virtualization drivers" (Sec. V-B) — one per connected I/O device.
//! [`MultiIoSystem`] assembles one [`Hypervisor`] channel pair per device
//! behind its [`IoController`], so callers submit *transfers in bytes* and
//! the driver model translates them into slot demands at the device's line
//! rate.
//!
//! # Example
//!
//! ```
//! use ioguard_hypervisor::driver::IoProtocol;
//! use ioguard_hypervisor::system::{IoDeviceConfig, MultiIoSystem, Transfer};
//!
//! let mut sys = MultiIoSystem::new(
//!     vec![
//!         IoDeviceConfig::new(IoProtocol::Ethernet, 2),
//!         IoDeviceConfig::new(IoProtocol::FlexRay, 2),
//!     ],
//!     50_000, // 50 µs slots
//! )?;
//! // A 1500-byte inbound frame on device 0 (Ethernet), due in 100 slots.
//! sys.submit(0, Transfer::new(0, 1, 1500, 100))?;
//! sys.run(100);
//! assert_eq!(sys.metrics(0).completed, 1);
//! # Ok::<(), ioguard_hypervisor::HvError>(())
//! ```

use serde::{Deserialize, Serialize};

use crate::driver::{IoController, IoProtocol};
use crate::error::HvError;
use crate::hypervisor::{HvMetrics, Hypervisor, HypervisorParams, RtJob};
use crate::pchannel::PredefinedTask;

/// Configuration of one device channel group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoDeviceConfig {
    /// The wire protocol this group's virtualization driver speaks.
    pub protocol: IoProtocol,
    /// Manager parameters (VM count, pools, policy, pre-defined tasks).
    pub params: HypervisorParams,
}

impl IoDeviceConfig {
    /// A default-policy group for `vms` VMs on `protocol`.
    pub fn new(protocol: IoProtocol, vms: usize) -> Self {
        Self {
            protocol,
            params: HypervisorParams::new(vms),
        }
    }

    /// Sets the group's pre-defined task load.
    pub fn with_predefined(mut self, predefined: Vec<PredefinedTask>) -> Self {
        self.params.predefined = predefined;
        self
    }
}

/// A run-time transfer request in *bytes* (the driver translates to slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Originating VM.
    pub vm: usize,
    /// Task identifier.
    pub task_id: u64,
    /// Payload bytes to move.
    pub bytes: u32,
    /// Relative deadline in slots.
    pub relative_deadline: u64,
}

impl Transfer {
    /// Creates a transfer.
    pub fn new(vm: usize, task_id: u64, bytes: u32, relative_deadline: u64) -> Self {
        Self {
            vm,
            task_id,
            bytes,
            relative_deadline,
        }
    }
}

/// The assembled multi-device hypervisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiIoSystem {
    groups: Vec<(IoController, Hypervisor)>,
    slot_ns: u64,
}

impl MultiIoSystem {
    /// Builds one channel group per device config.
    ///
    /// # Errors
    ///
    /// Propagates [`HvError`] from any group's construction; returns
    /// [`HvError::InvalidConfig`] for an empty device list or zero slot
    /// length.
    pub fn new(devices: Vec<IoDeviceConfig>, slot_ns: u64) -> Result<Self, HvError> {
        if devices.is_empty() {
            return Err(HvError::InvalidConfig {
                reason: "at least one i/o device".into(),
            });
        }
        if slot_ns == 0 {
            return Err(HvError::InvalidConfig {
                reason: "slot length must be positive".into(),
            });
        }
        let mut groups = Vec::with_capacity(devices.len());
        for d in devices {
            groups.push((IoController::new(d.protocol), Hypervisor::new(d.params)?));
        }
        Ok(Self { groups, slot_ns })
    }

    /// Number of device groups.
    pub fn device_count(&self) -> usize {
        self.groups.len()
    }

    /// The controller of device `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn controller(&self, idx: usize) -> IoController {
        self.groups[idx].0 // lint: allow(indexing) — documented API contract (# Panics) on a bad device index
    }

    /// Metrics of device `idx`'s manager.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn metrics(&self, idx: usize) -> &HvMetrics {
        self.groups[idx].1.metrics() // lint: allow(indexing) — documented API contract (# Panics) on a bad device index
    }

    /// Total completed jobs across devices.
    pub fn total_completed(&self) -> u64 {
        self.groups
            .iter()
            .map(|(_, h)| h.metrics().completed + h.metrics().predefined_completed)
            .sum()
    }

    /// Total misses across devices.
    pub fn total_missed(&self) -> u64 {
        self.groups.iter().map(|(_, h)| h.metrics().missed).sum()
    }

    /// Submits a byte transfer on device `device`: the group's driver
    /// translates it into a slot demand at the device's line rate
    /// (translation + wire time, fragmented per protocol).
    ///
    /// # Errors
    ///
    /// * [`HvError::UnknownVm`] — no such device (reported as VM range) or
    ///   VM out of range within the group.
    /// * [`HvError::PoolFull`] — the target pool rejected the job (counted
    ///   as a miss).
    pub fn submit(&mut self, device: usize, transfer: Transfer) -> Result<(), HvError> {
        let groups = self.groups.len();
        let Some((controller, hv)) = self.groups.get_mut(device) else {
            return Err(HvError::UnknownVm {
                vm: device,
                vms: groups,
            });
        };
        let wcet = controller.service_slots(transfer.bytes, self.slot_ns);
        let now = hv.now();
        hv.submit_with_payload(
            RtJob::new(
                transfer.vm,
                transfer.task_id,
                now,
                wcet,
                now.saturating_add(transfer.relative_deadline),
            ),
            transfer.bytes,
        )
    }

    /// Advances every device group one slot (they share the global timer).
    pub fn step(&mut self) {
        for (_, hv) in &mut self.groups {
            hv.step();
        }
    }

    /// Runs `slots` slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_device_system() -> MultiIoSystem {
        MultiIoSystem::new(
            vec![
                IoDeviceConfig::new(IoProtocol::Ethernet, 2),
                IoDeviceConfig::new(IoProtocol::FlexRay, 2),
            ],
            50_000,
        )
        .expect("valid configuration")
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            MultiIoSystem::new(vec![], 50_000),
            Err(HvError::InvalidConfig { .. })
        ));
        assert!(matches!(
            MultiIoSystem::new(vec![IoDeviceConfig::new(IoProtocol::Spi, 1)], 0),
            Err(HvError::InvalidConfig { .. })
        ));
        let sys = two_device_system();
        assert_eq!(sys.device_count(), 2);
        assert_eq!(sys.controller(0).protocol(), IoProtocol::Ethernet);
        assert_eq!(sys.controller(1).protocol(), IoProtocol::FlexRay);
    }

    #[test]
    fn byte_transfers_are_priced_per_device() {
        let mut sys = two_device_system();
        // 1500 B: one slot on GbE, several on 10 Mbps FlexRay.
        sys.submit(0, Transfer::new(0, 1, 1500, 1_000)).unwrap();
        sys.submit(1, Transfer::new(0, 2, 1500, 1_000)).unwrap();
        sys.run(2);
        assert_eq!(sys.metrics(0).completed, 1, "GbE finishes in one slot");
        assert_eq!(sys.metrics(1).completed, 0, "FlexRay still transferring");
        sys.run(100);
        assert_eq!(sys.metrics(1).completed, 1);
        assert!(sys.metrics(1).latency.mean() > sys.metrics(0).latency.mean());
        assert_eq!(sys.total_completed(), 2);
        assert_eq!(sys.total_missed(), 0);
    }

    #[test]
    fn devices_are_independent_channels() {
        // Saturating FlexRay does not delay Ethernet traffic — separate
        // manager/driver groups (the paper's per-I/O partitioning).
        let mut sys = two_device_system();
        for i in 0..8 {
            sys.submit(1, Transfer::new(0, 100 + i, 254, 10_000))
                .unwrap();
        }
        sys.submit(0, Transfer::new(1, 1, 256, 4)).unwrap();
        sys.run(4);
        assert_eq!(sys.metrics(0).completed, 1, "Ethernet job unaffected");
        assert_eq!(sys.metrics(0).missed, 0);
    }

    #[test]
    fn unknown_device_rejected() {
        let mut sys = two_device_system();
        assert!(sys.submit(5, Transfer::new(0, 1, 64, 10)).is_err());
    }

    #[test]
    fn deadline_misses_propagate() {
        let mut sys = two_device_system();
        // 1500 B over FlexRay needs ~25 slots; 3-slot deadline must miss.
        sys.submit(1, Transfer::new(0, 9, 1500, 3)).unwrap();
        sys.run(50);
        assert_eq!(sys.metrics(1).missed, 1);
        assert_eq!(sys.total_missed(), 1);
    }
}
