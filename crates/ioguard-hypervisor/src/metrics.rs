//! Execution metrics of the hypervisor device model.
//!
//! [`HvMetrics`] aggregates global counters (the Fig. 7 success-ratio and
//! throughput inputs) and, since the robustness work, a per-VM breakdown
//! ([`VmMetrics`]): the paper's isolation claim is *per VM* — a faulty VM
//! may miss deadlines while the well-behaved VMs must not — so miss,
//! throttle, retry and shedding counters have to be attributable to a
//! single VM, not just summed across the device.

use serde::{Deserialize, Serialize};

use ioguard_sim::stats::OnlineStats;

pub use ioguard_obs::counters::VmCounters;
use ioguard_obs::CounterRegistry;

/// Capacity of the recent-miss diagnostic ring.
const MISS_RING: usize = 64;

/// Per-VM execution counters.
///
/// Since the observability layer landed, this is the obs crate's
/// [`VmCounters`] — one definition shared by the live hypervisor and the
/// trace-stream fold ([`CounterRegistry::fold_event`]), so the cross-check
/// `fold(trace) == registry` compares identical types field-for-field.
pub type VmMetrics = VmCounters;

/// Aggregate execution metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HvMetrics {
    /// Run-time jobs completed before their deadlines.
    pub completed: u64,
    /// Run-time jobs that missed (expired in a pool or rejected on a full
    /// pool).
    pub missed: u64,
    /// Jobs rejected due to pool overflow (also counted in `missed`).
    pub rejected: u64,
    /// Misses of *critical* jobs only (the success-ratio criterion).
    pub critical_missed: u64,
    /// Pre-defined jobs completed by the P-channel.
    pub predefined_completed: u64,
    /// Slots spent executing P-channel work.
    pub pchannel_slots: u64,
    /// Slots spent executing R-channel work.
    pub rchannel_slots: u64,
    /// Free slots left idle (no eligible work).
    pub idle_slots: u64,
    /// Granted slots burned against a stalled or stuck device (no job
    /// progress; the watchdog counts these toward its timeout).
    pub stalled_slots: u64,
    /// Slots the executor sat out while the watchdog's exponential backoff
    /// window was open.
    pub backoff_slots: u64,
    /// Watchdog retry operations issued against the device.
    pub retries: u64,
    /// Best-effort jobs shed (from pools or at admission) by degradation.
    pub dropped_best_effort: u64,
    /// Operating-mode transitions (normal ↔ degraded ↔ P-channel-only).
    pub mode_changes: u64,
    /// Response payload bytes produced (throughput numerator).
    pub response_bytes: u64,
    /// Response latency of completed run-time jobs, in slots.
    pub latency: OnlineStats,
    /// Task ids of the most recent misses (bounded diagnostic ring).
    pub recent_missed_tasks: Vec<u64>,
    /// Per-VM breakdown (indexed by VM; sized at hypervisor construction).
    pub per_vm: Vec<VmMetrics>,
}

impl HvMetrics {
    /// Creates metrics with a per-VM breakdown for `vms` VMs.
    pub fn with_vms(vms: usize) -> Self {
        Self {
            per_vm: vec![VmMetrics::default(); vms],
            ..Self::default()
        }
    }

    /// The per-VM counters of `vm` (zeroed counters for an unknown VM, so
    /// the accessor never panics on diagnostic paths).
    pub fn vm(&self, vm: usize) -> VmMetrics {
        self.per_vm.get(vm).copied().unwrap_or_default()
    }

    /// The per-VM counters as an obs-layer [`CounterRegistry`] — the live
    /// side of the metrics/trace cross-check (`fold(trace)` must reproduce
    /// this exactly).
    pub fn registry(&self) -> CounterRegistry {
        CounterRegistry::from_vms(self.per_vm.clone())
    }

    /// Records a miss of `task_id` on `vm`.
    pub(crate) fn note_miss(&mut self, vm: usize, task_id: u64, critical: bool) {
        self.missed += 1;
        self.critical_missed += u64::from(critical);
        if let Some(per) = self.per_vm.get_mut(vm) {
            per.missed += 1;
            per.critical_missed += u64::from(critical);
        }
        if self.recent_missed_tasks.len() == MISS_RING {
            self.recent_missed_tasks.remove(0);
        }
        self.recent_missed_tasks.push(task_id);
    }

    /// Records a completion on `vm`.
    pub(crate) fn note_completion(&mut self, vm: usize) {
        self.completed += 1;
        if let Some(per) = self.per_vm.get_mut(vm) {
            per.completed += 1;
        }
    }

    /// Records a submission refused by flood control on `vm`.
    pub(crate) fn note_throttled_submission(&mut self, vm: usize) {
        if let Some(per) = self.per_vm.get_mut(vm) {
            per.throttled_submissions += 1;
        }
    }

    /// Records a slot in which `vm` had work but was denied by budget
    /// enforcement or an open throttle window.
    pub(crate) fn note_throttled_slot(&mut self, vm: usize) {
        if let Some(per) = self.per_vm.get_mut(vm) {
            per.throttled_slots += 1;
        }
    }

    /// Records a watchdog retry attributed to `vm`'s transaction.
    pub(crate) fn note_retry(&mut self, vm: usize) {
        self.retries += 1;
        if let Some(per) = self.per_vm.get_mut(vm) {
            per.retries += 1;
        }
    }

    /// Records `n` best-effort jobs shed from `vm`.
    pub(crate) fn note_shed(&mut self, vm: usize, n: u64) {
        self.dropped_best_effort += n;
        if let Some(per) = self.per_vm.get_mut(vm) {
            per.dropped_best_effort += n;
        }
    }

    /// Total slots observed.
    pub fn total_slots(&self) -> u64 {
        self.pchannel_slots
            .saturating_add(self.rchannel_slots)
            .saturating_add(self.idle_slots)
            .saturating_add(self.stalled_slots)
            .saturating_add(self.backoff_slots)
    }

    /// True when no run-time job has missed, on any VM.
    ///
    /// Derivable per VM: this is exactly `(0..vms).all(no_misses_for)` —
    /// the global counter and the per-VM counters are maintained together.
    pub fn no_misses(&self) -> bool {
        self.missed == 0
    }

    /// True when no run-time job of `vm` has missed — the per-VM isolation
    /// criterion (a faulty VM may miss while this VM stays clean).
    pub fn no_misses_for(&self, vm: usize) -> bool {
        self.vm(vm).missed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_vm_breakdown_tracks_global() {
        let mut m = HvMetrics::with_vms(2);
        m.note_miss(0, 10, true);
        m.note_miss(1, 11, false);
        m.note_miss(0, 12, false);
        assert_eq!(m.missed, 3);
        assert_eq!(m.critical_missed, 1);
        assert_eq!(m.vm(0).missed, 2);
        assert_eq!(m.vm(0).critical_missed, 1);
        assert_eq!(m.vm(1).missed, 1);
        assert!(!m.no_misses());
        assert!(!m.no_misses_for(0));
        assert!(m.no_misses_for(2), "unknown vm reads as clean");
    }

    #[test]
    fn no_misses_is_conjunction_of_per_vm() {
        let mut m = HvMetrics::with_vms(3);
        assert!(m.no_misses());
        assert!((0..3).all(|vm| m.no_misses_for(vm)));
        m.note_miss(2, 7, true);
        assert!(!m.no_misses());
        assert_eq!(
            m.no_misses(),
            (0..3).all(|vm| m.no_misses_for(vm)),
            "global flag must be derivable from the per-VM flags"
        );
    }

    #[test]
    fn miss_ring_is_bounded() {
        let mut m = HvMetrics::with_vms(1);
        for i in 0..200 {
            m.note_miss(0, i, false);
        }
        assert_eq!(m.recent_missed_tasks.len(), MISS_RING);
        assert_eq!(*m.recent_missed_tasks.last().unwrap(), 199);
    }

    #[test]
    fn completions_and_sheds_attribute_per_vm() {
        let mut m = HvMetrics::with_vms(2);
        m.note_completion(1);
        m.note_shed(0, 3);
        assert_eq!(m.completed, 1);
        assert_eq!(m.vm(1).completed, 1);
        assert_eq!(m.dropped_best_effort, 3);
        assert_eq!(m.vm(0).dropped_best_effort, 3);
        assert!(m.vm(0).no_misses());
    }

    #[test]
    fn total_slots_includes_fault_accounting() {
        let m = HvMetrics {
            pchannel_slots: 2,
            rchannel_slots: 3,
            idle_slots: 4,
            stalled_slots: 5,
            backoff_slots: 6,
            ..HvMetrics::default()
        };
        assert_eq!(m.total_slots(), 20);
    }
}
