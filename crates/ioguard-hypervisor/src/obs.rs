//! Hypervisor-side observability state: the trace sink plus the latency
//! histograms the device maintains while it runs.
//!
//! [`HvObs`] is attached to a hypervisor with
//! [`Hypervisor::attach_obs`](crate::hypervisor::Hypervisor::attach_obs)
//! and is deliberately *optional*: the default device carries `None` and
//! pays only a branch per emission site, so existing experiments are
//! untouched unless a caller opts in.
//!
//! The histograms split response latency at the dispatch edge — the point
//! where a buffered job first receives a device slot
//! ([`crate::pool::PoolEntry::first_dispatch`]):
//!
//! * **submit→dispatch** — queueing delay inside the I/O pool (scheduler
//!   pressure, throttling, backoff).
//! * **dispatch→response** — execution time on the device once granted
//!   (WCET plus preemptions by the P-channel and tighter deadlines).
//! * **end-to-end** — the sum, kept per VM and per criticality class so
//!   the isolation claim ("a faulty VM may degrade only its own tail")
//!   is checkable from the histograms alone.

use serde::{Deserialize, Serialize};

use ioguard_obs::{Histogram, TraceSink};

/// Observability state owned by a hypervisor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HvObs {
    /// Bounded structured event stream (drop-oldest on overflow).
    pub sink: TraceSink,
    /// Queueing delay: submission slot → first device slot.
    pub submit_to_dispatch: Histogram,
    /// Service time: first device slot → response emission.
    pub dispatch_to_response: Histogram,
    /// End-to-end response latency, one histogram per VM.
    pub e2e_per_vm: Vec<Histogram>,
    /// End-to-end latency of critical jobs across all VMs.
    pub e2e_critical: Histogram,
    /// End-to-end latency of best-effort jobs across all VMs.
    pub e2e_best_effort: Histogram,
}

impl HvObs {
    /// Observability state with a sink of `capacity` events and one
    /// end-to-end histogram per VM.
    pub fn new(capacity: usize, vms: usize) -> Self {
        Self {
            sink: TraceSink::new(capacity),
            submit_to_dispatch: Histogram::new(),
            dispatch_to_response: Histogram::new(),
            e2e_per_vm: vec![Histogram::new(); vms],
            e2e_critical: Histogram::new(),
            e2e_best_effort: Histogram::new(),
        }
    }

    /// Merges another observer's histograms into this one (sinks are not
    /// merged — event streams from different runs do not interleave
    /// meaningfully; merge is for combining per-trial histograms).
    pub fn merge_histograms(&mut self, other: &HvObs) {
        self.submit_to_dispatch.merge(&other.submit_to_dispatch);
        self.dispatch_to_response.merge(&other.dispatch_to_response);
        for (mine, theirs) in self.e2e_per_vm.iter_mut().zip(other.e2e_per_vm.iter()) {
            mine.merge(theirs);
        }
        self.e2e_critical.merge(&other.e2e_critical);
        self.e2e_best_effort.merge(&other.e2e_best_effort);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sizes_per_vm_histograms() {
        let obs = HvObs::new(16, 3);
        assert_eq!(obs.sink.capacity(), 16);
        assert_eq!(obs.e2e_per_vm.len(), 3);
        assert_eq!(obs.e2e_critical.count(), 0);
    }

    #[test]
    fn merge_histograms_combines_by_position() {
        let mut a = HvObs::new(4, 2);
        let mut b = HvObs::new(4, 2);
        a.submit_to_dispatch.record(5);
        b.submit_to_dispatch.record(9);
        a.e2e_per_vm[1].record(3);
        b.e2e_per_vm[1].record(4);
        a.merge_histograms(&b);
        assert_eq!(a.submit_to_dispatch.count(), 2);
        assert_eq!(a.e2e_per_vm[0].count(), 0);
        assert_eq!(a.e2e_per_vm[1].count(), 2);
    }
}
