//! The per-VM I/O pool: random-access priority queue + L-Sched + shadow
//! register.
//!
//! Unlike a conventional FIFO, the pool's queue supports *random access*:
//! each buffered I/O task carries an additional register-backed slot with
//! its scheduling parameters, readable and writable by the schedulers in a
//! timely manner (Sec. III-A). The L-Sched continuously selects the
//! earliest-deadline task and maps its next operation to the shadow
//! register, where the G-Sched can see it.
//!
//! The shadow register is maintained *incrementally*, mirroring the RTL:
//! the hardware updates the earliest-deadline register on every insert and
//! remove rather than re-scanning the queue each cycle. Here that means a
//! cached min index — [`IoPool::shadow`] is O(1), [`IoPool::insert`] is
//! O(1), and a linear repair runs only when the minimum itself leaves the
//! queue (completion or expiry). Because the shadow key is ordered by
//! deadline first, [`IoPool::expire`] pops expired entries straight off the
//! shadow register and is O(1) per call when nothing has expired — the
//! common case on the hot per-slot sweep.

// lint: allow(indexing, file) — every index into `entries` is `shadow_idx`,
// which the incremental-update invariant keeps inside `0..entries.len()`
// whenever it is `Some` (it is cleared or repaired on every removal).

use serde::{Deserialize, Serialize};

use crate::error::HvError;

/// Sentinel for [`PoolEntry::first_dispatch`]: the task has not received a
/// device slot yet.
pub const NEVER_DISPATCHED: u64 = u64::MAX;

/// One buffered run-time I/O task inside a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// Caller-assigned task identifier (unique within the VM).
    pub task_id: u64,
    /// Absolute deadline, in slots (exclusive).
    pub deadline: u64,
    /// Remaining execution slots.
    pub remaining: u64,
    /// Slot at which the task entered the pool.
    pub enqueued_at: u64,
    /// Slot of the task's first device slot ([`NEVER_DISPATCHED`] until the
    /// executor calls [`IoPool::note_dispatch`]) — the observability
    /// layer's submit→dispatch / dispatch→response split point.
    pub first_dispatch: u64,
    /// Response payload bytes to emit on completion.
    pub response_bytes: u32,
    /// True when a deadline miss of this task fails the trial (safety and
    /// function tasks; synthetic filler is best-effort).
    pub critical: bool,
}

/// The I/O pool of one VM.
///
/// # Example
///
/// ```
/// use ioguard_hypervisor::pool::{IoPool, PoolEntry};
///
/// let mut pool = IoPool::new(4);
/// pool.insert(PoolEntry { task_id: 1, deadline: 50, remaining: 2, enqueued_at: 0, first_dispatch: u64::MAX, response_bytes: 64, critical: true }).expect("space");
/// pool.insert(PoolEntry { task_id: 2, deadline: 10, remaining: 1, enqueued_at: 0, first_dispatch: u64::MAX, response_bytes: 64, critical: true }).expect("space");
/// // The L-Sched surfaces the earliest deadline in the shadow register.
/// assert_eq!(pool.shadow().expect("non-empty").task_id, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoPool {
    entries: Vec<PoolEntry>,
    capacity: usize,
    /// Jobs that could not be admitted because the queue was full.
    rejected: u64,
    /// Index of the current shadow-register entry (the `(deadline,
    /// task_id)`-minimum), kept up to date by every mutating operation.
    /// `None` iff the pool is empty.
    shadow_idx: Option<usize>,
}

/// The shadow-register ordering key: earliest deadline, ties by task id.
#[inline]
fn shadow_key(e: &PoolEntry) -> (u64, u64) {
    (e.deadline, e.task_id)
}

impl IoPool {
    /// Creates a pool with the given hardware queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            rejected: 0,
            shadow_idx: None,
        }
    }

    /// Buffered task count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hardware capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rejected (overflowed) submissions so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Inserts a task. Returns `Err(entry)` when the pool is full (the
    /// caller decides whether that is a drop or a miss).
    pub fn insert(&mut self, entry: PoolEntry) -> Result<(), PoolEntry> {
        if self.entries.len() == self.capacity {
            self.rejected += 1;
            return Err(entry);
        }
        // Incremental shadow update: the new entry takes the register only
        // if it beats the current minimum.
        match self.shadow_idx {
            Some(i) if shadow_key(&self.entries[i]) <= shadow_key(&entry) => {}
            _ => self.shadow_idx = Some(self.entries.len()),
        }
        self.entries.push(entry);
        Ok(())
    }

    /// The L-Sched output: the entry with the earliest deadline (ties by
    /// task id), i.e. the contents of the shadow register. O(1): the
    /// register is maintained incrementally.
    pub fn shadow(&self) -> Option<PoolEntry> {
        self.shadow_idx.map(|i| self.entries[i])
    }

    /// The shadow register's ordering key `(deadline, task_id)`, without
    /// copying the entry. O(1).
    pub fn shadow_key(&self) -> Option<(u64, u64)> {
        self.shadow_idx.map(|i| shadow_key(&self.entries[i]))
    }

    /// Removes the entry at `idx` (the current shadow index) and recomputes
    /// the register. The linear repair runs only here — when the minimum
    /// leaves the queue.
    fn remove_at(&mut self, idx: usize) -> PoolEntry {
        let removed = self.entries.swap_remove(idx);
        self.shadow_idx = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| shadow_key(e))
            .map(|(i, _)| i);
        removed
    }

    /// Stamps the shadow entry's [`PoolEntry::first_dispatch`] with `now`
    /// if it has not been dispatched before. Called by the executor when it
    /// hands the entry its first device slot; a no-op on an empty pool and
    /// on already-dispatched entries, and invisible to scheduling (nothing
    /// orders on the stamp).
    pub fn note_dispatch(&mut self, now: u64) {
        if let Some(idx) = self.shadow_idx {
            let entry = &mut self.entries[idx];
            if entry.first_dispatch == NEVER_DISPATCHED {
                entry.first_dispatch = now;
            }
        }
    }

    /// Executes one slot of the shadow entry (called by the executor when
    /// the G-Sched grants this pool the slot). Returns `Ok(Some(entry))` if
    /// the task *completed* with this slot (removing it from the queue) and
    /// `Ok(None)` if it still has work left.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyPool`] when the pool has no shadow entry —
    /// a correct G-Sched only grants pools with a valid shadow register, so
    /// hitting this indicates a scheduler bug, which the caller can surface
    /// without bringing down the whole hypervisor model.
    pub fn execute_slot(&mut self) -> Result<Option<PoolEntry>, HvError> {
        let Some(idx) = self.shadow_idx else {
            return Err(HvError::EmptyPool);
        };
        self.entries[idx].remaining = self.entries[idx].remaining.saturating_sub(1);
        if self.entries[idx].remaining == 0 {
            Ok(Some(self.remove_at(idx)))
        } else {
            Ok(None)
        }
    }

    /// Removes and returns every entry whose deadline is `≤ now` with work
    /// remaining (deadline misses), earliest deadline first.
    ///
    /// Because the shadow key orders by deadline first, the expired set is
    /// exactly the run of successive shadow entries with `deadline ≤ now` —
    /// so the sweep pops the register instead of scanning the queue, and
    /// costs O(1) when nothing has expired.
    pub fn expire(&mut self, now: u64) -> Vec<PoolEntry> {
        let mut missed = Vec::new();
        while let Some(i) = self.shadow_idx {
            if self.entries[i].deadline > now {
                break;
            }
            missed.push(self.remove_at(i));
        }
        missed
    }

    /// Iterates over buffered entries (order unspecified — the queue is
    /// random-access, not FIFO).
    pub fn iter(&self) -> std::slice::Iter<'_, PoolEntry> {
        self.entries.iter()
    }

    /// Removes and returns every buffered entry in shadow order (earliest
    /// deadline first, ties by task id), leaving the pool empty with its
    /// shadow register cleared. The reconfiguration drain uses this to
    /// carry in-flight work across a config switch exactly once; the
    /// deterministic order makes the carried-entry sequence reproducible.
    pub fn drain_all(&mut self) -> Vec<PoolEntry> {
        let mut drained = self.entries.split_off(0);
        drained.sort_unstable_by_key(shadow_key);
        self.shadow_idx = None;
        drained
    }

    /// Removes and returns every non-critical entry (graceful degradation
    /// sheds best-effort work first). The shadow register is repaired once
    /// at the end; critical entries keep their relative state.
    pub fn shed_best_effort(&mut self) -> Vec<PoolEntry> {
        let mut shed = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].critical {
                i += 1;
            } else {
                shed.push(self.entries.swap_remove(i));
            }
        }
        self.shadow_idx = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| shadow_key(e))
            .map(|(i, _)| i);
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(task_id: u64, deadline: u64, remaining: u64) -> PoolEntry {
        PoolEntry {
            task_id,
            deadline,
            remaining,
            enqueued_at: 0,
            first_dispatch: NEVER_DISPATCHED,
            response_bytes: 64,
            critical: true,
        }
    }

    #[test]
    fn note_dispatch_stamps_only_once() {
        let mut p = IoPool::new(4);
        p.note_dispatch(5); // empty pool: no-op
        p.insert(entry(1, 100, 2)).unwrap();
        assert_eq!(p.shadow().unwrap().first_dispatch, NEVER_DISPATCHED);
        p.note_dispatch(3);
        assert_eq!(p.shadow().unwrap().first_dispatch, 3);
        p.note_dispatch(7); // already stamped: unchanged
        assert_eq!(p.shadow().unwrap().first_dispatch, 3);
        // A tighter entry takes the register and gets its own stamp.
        p.insert(entry(2, 10, 1)).unwrap();
        p.note_dispatch(9);
        assert_eq!(p.shadow().unwrap().task_id, 2);
        assert_eq!(p.shadow().unwrap().first_dispatch, 9);
    }

    #[test]
    fn shadow_tracks_earliest_deadline() {
        let mut p = IoPool::new(8);
        assert_eq!(p.shadow(), None);
        p.insert(entry(1, 100, 2)).unwrap();
        assert_eq!(p.shadow().unwrap().task_id, 1);
        p.insert(entry(2, 50, 2)).unwrap();
        assert_eq!(p.shadow().unwrap().task_id, 2);
        p.insert(entry(3, 75, 2)).unwrap();
        assert_eq!(p.shadow().unwrap().task_id, 2);
    }

    #[test]
    fn shadow_ties_break_by_task_id() {
        let mut p = IoPool::new(4);
        p.insert(entry(9, 10, 1)).unwrap();
        p.insert(entry(3, 10, 1)).unwrap();
        assert_eq!(p.shadow().unwrap().task_id, 3);
    }

    #[test]
    fn execute_slot_decrements_and_completes() {
        let mut p = IoPool::new(4);
        p.insert(entry(1, 100, 2)).unwrap();
        assert_eq!(p.execute_slot(), Ok(None)); // 1 slot left
        let done = p.execute_slot().unwrap().expect("completes");
        assert_eq!(done.task_id, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn execute_slot_preempts_between_tasks() {
        // Random access: a later-arriving tighter task takes the next slot —
        // the preemption FIFOs cannot do.
        let mut p = IoPool::new(4);
        p.insert(entry(1, 100, 3)).unwrap();
        assert_eq!(p.execute_slot(), Ok(None)); // task 1 partially done
        p.insert(entry(2, 10, 1)).unwrap();
        let done = p.execute_slot().unwrap().expect("task 2 completes first");
        assert_eq!(done.task_id, 2);
        // Task 1 resumes with its remaining budget intact.
        assert_eq!(p.shadow().unwrap().remaining, 2);
    }

    #[test]
    fn execute_on_empty_pool_is_a_typed_error() {
        // Previously a panic; now the scheduler bug surfaces as a value.
        let mut p = IoPool::new(2);
        assert_eq!(p.execute_slot(), Err(HvError::EmptyPool));
        // The pool stays usable after the error.
        p.insert(entry(1, 5, 1)).unwrap();
        assert_eq!(p.execute_slot().unwrap().map(|e| e.task_id), Some(1));
    }

    #[test]
    fn capacity_overflow_rejected() {
        let mut p = IoPool::new(2);
        p.insert(entry(1, 10, 1)).unwrap();
        p.insert(entry(2, 20, 1)).unwrap();
        let spilled = p.insert(entry(3, 30, 1)).unwrap_err();
        assert_eq!(spilled.task_id, 3);
        assert_eq!(p.rejected(), 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn expire_removes_only_late_entries() {
        let mut p = IoPool::new(8);
        p.insert(entry(1, 10, 1)).unwrap();
        p.insert(entry(2, 20, 1)).unwrap();
        p.insert(entry(3, 30, 1)).unwrap();
        let missed = p.expire(20);
        let mut ids: Vec<u64> = missed.iter().map(|e| e.task_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.shadow().unwrap().task_id, 3);
    }

    #[test]
    fn expire_on_empty_is_noop() {
        let mut p = IoPool::new(2);
        assert!(p.expire(100).is_empty());
    }

    #[test]
    fn iter_exposes_entries() {
        let mut p = IoPool::new(4);
        p.insert(entry(1, 10, 1)).unwrap();
        p.insert(entry(2, 20, 2)).unwrap();
        let ids: Vec<u64> = p.iter().map(|e| e.task_id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&1) && ids.contains(&2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = IoPool::new(0);
    }

    #[test]
    fn drain_all_empties_in_shadow_order() {
        let mut p = IoPool::new(8);
        p.insert(entry(5, 30, 1)).unwrap();
        p.insert(entry(1, 10, 2)).unwrap();
        p.insert(entry(9, 10, 1)).unwrap(); // same deadline as 1, higher id
        let drained = p.drain_all();
        let ids: Vec<u64> = drained.iter().map(|e| e.task_id).collect();
        assert_eq!(ids, vec![1, 9, 5]);
        assert!(p.is_empty());
        assert_eq!(p.shadow(), None);
        // The pool stays usable after a drain.
        p.insert(entry(2, 4, 1)).unwrap();
        assert_eq!(p.shadow().unwrap().task_id, 2);
    }

    #[test]
    fn shed_best_effort_keeps_critical_and_repairs_shadow() {
        let mut p = IoPool::new(8);
        p.insert(entry(1, 10, 1)).unwrap(); // critical
        p.insert(PoolEntry {
            critical: false,
            ..entry(2, 5, 1)
        })
        .unwrap();
        p.insert(PoolEntry {
            critical: false,
            ..entry(3, 7, 1)
        })
        .unwrap();
        p.insert(entry(4, 20, 1)).unwrap(); // critical
                                            // Best-effort task 2 currently owns the shadow register.
        assert_eq!(p.shadow().unwrap().task_id, 2);
        let shed = p.shed_best_effort();
        let mut ids: Vec<u64> = shed.iter().map(|e| e.task_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.shadow().unwrap().task_id, 1, "shadow repaired");
        assert!(p.shed_best_effort().is_empty(), "idempotent");
    }
}
