//! Slot-accurate functional model of the I/O-GUARD hardware hypervisor.
//!
//! The hypervisor (Sec. III of the paper) is modelled block-for-block:
//!
//! * [`pool`] — the per-VM **I/O pool**: a random-access priority queue
//!   whose slots carry the task parameters in register-backed side slots,
//!   the pool's control logic, its **L-Sched** (earliest-deadline selection
//!   within the VM) and the **shadow register** the winner is mapped to.
//! * [`pchannel`] — the **P-channel**: memory banks holding the pre-defined
//!   I/O tasks with their start times, the Time Slot Table σ\*, and the
//!   executor that fires entries when the global timer matches.
//! * [`gsched`] — the **G-Sched**: compares the deadlines in all shadow
//!   registers and the free slots of σ\*, picking the next run-time task.
//!   Two policies are provided: the literal micro-architecture (global EDF
//!   over shadow registers) and the server-based variant analyzed in
//!   Sec. IV (per-VM periodic budgets for hard inter-VM isolation).
//! * [`shadowindex`] — the comparator tree the G-Sched hardware resolves
//!   the shadow registers with: O(1) winner at the root, O(log V) refresh
//!   per pool mutation.
//! * [`driver`] — the **virtualization driver**: request/response
//!   translators with bounded per-operation latency, standardized I/O
//!   controller models (SPI, I²C, Ethernet, FlexRay) with real bandwidths,
//!   and the per-transaction **watchdog** (timeout, bounded retry with
//!   exponential backoff).
//! * [`metrics`] — global and **per-VM** execution counters, including the
//!   fault-handling accounting (stalls, retries, throttles, shed jobs).
//! * [`hypervisor`] — the assembled device: `step()` advances one slot,
//!   P-channel entries preempt everything (their slots are theirs by
//!   construction), R-channel jobs run preemptively at slot granularity.
//!
//! # Example
//!
//! ```
//! use ioguard_hypervisor::hypervisor::{Hypervisor, HypervisorParams, RtJob};
//!
//! let mut hv = Hypervisor::new(HypervisorParams::new(2))?;
//! hv.submit(RtJob::new(0, 1, 0, 3, 10))?; // vm 0, task 1: 3 slots by t=10
//! for _ in 0..10 {
//!     hv.step();
//! }
//! assert_eq!(hv.metrics().completed, 1);
//! assert_eq!(hv.metrics().missed, 0);
//! # Ok::<(), ioguard_hypervisor::HvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod error;
pub mod gsched;
pub mod hypervisor;
pub mod metrics;
pub mod obs;
pub mod pchannel;
pub mod pool;
pub mod shadowindex;
pub mod system;

pub use error::HvError;
pub use hypervisor::{Hypervisor, HypervisorParams, RtJob};
pub use metrics::{HvMetrics, VmMetrics};
pub use obs::HvObs;
pub use system::{IoDeviceConfig, MultiIoSystem, Transfer};
