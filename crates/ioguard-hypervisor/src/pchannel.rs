//! The P-channel: pre-defined I/O tasks driven by the Time Slot Table.
//!
//! At system initialization the pre-defined (periodic) I/O tasks are loaded
//! into the memory banks together with their timing information, grouped in
//! the Time Slot Table σ\*. During execution the executor compares the
//! global timer against the table and fires the owning task's next
//! operation in every occupied slot — with zero contention and zero jitter,
//! which is where I/O-GUARD's predictability for pre-loaded tasks comes
//! from.

// lint: allow(indexing, file) — `owners` has hyper-period length and every
// index is reduced modulo that length first; `tasks[task_index]` uses the
// enumerate() index the job list was built from.

use serde::{Deserialize, Serialize};

use ioguard_sched::table::TimeSlotTable;
use ioguard_sched::task::SporadicTask;

use crate::error::HvError;

/// One pre-defined task loaded into the banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredefinedTask {
    /// Caller-assigned identifier.
    pub task_id: u64,
    /// Owning VM (for accounting; execution needs no VM involvement).
    pub vm: usize,
    /// Timing model (strictly periodic at run time).
    pub task: SporadicTask,
    /// Response payload bytes emitted per completed job.
    pub response_bytes: u32,
    /// Start time of the first job within the hyper-period (the "start
    /// times" loaded with the tasks at initialization). Staggering offsets
    /// flattens table occupancy so free slots stay evenly distributed for
    /// the R-channel.
    pub start_offset: u64,
}

/// A P-channel table entry: which pre-defined task owns a given occupied
/// slot of σ\*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotOwner {
    /// Index into the P-channel's task bank.
    pub task_index: usize,
    /// True when this slot completes one job of the task.
    pub completes_job: bool,
}

/// The P-channel: banks + σ\* + executor state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PChannel {
    tasks: Vec<PredefinedTask>,
    table: TimeSlotTable,
    /// Owner of each slot in one hyper-period (None = free slot).
    owners: Vec<Option<SlotOwner>>,
}

impl PChannel {
    /// Builds the channel by laying the tasks' jobs out over one
    /// hyper-period with EDF (the same offline construction as
    /// [`TimeSlotTable::from_predefined_tasks`], but retaining slot
    /// ownership so the executor knows *which* task fires).
    ///
    /// # Errors
    ///
    /// [`HvError::TableConstruction`] when the tasks overflow `max_len`
    /// slots of hyper-period or do not fit their deadlines.
    pub fn build(tasks: Vec<PredefinedTask>, max_len: u64) -> Result<Self, HvError> {
        let hyper = tasks
            .iter()
            .map(|t| t.task.period())
            .try_fold(1u64, |acc, p| {
                let g = gcd(acc, p);
                (acc / g).checked_mul(p)
            })
            .ok_or_else(|| HvError::TableConstruction {
                reason: "hyper-period overflows u64".into(),
            })?;
        if hyper > max_len {
            return Err(HvError::TableConstruction {
                reason: format!("hyper-period {hyper} exceeds limit {max_len}"),
            });
        }
        let h = hyper as usize;
        let mut owners: Vec<Option<SlotOwner>> = vec![None; h];

        // All jobs over one hyper-period, EDF-ordered. Start offsets shift
        // each task's release phase; the schedule is cyclic, so placement
        // wraps modulo the hyper-period.
        let mut jobs: Vec<(u64, u64, usize)> = Vec::new(); // (deadline, release, task)
        for (idx, t) in tasks.iter().enumerate() {
            let offset = t.start_offset % t.task.period();
            let mut release = offset;
            while release < hyper.saturating_add(offset) {
                jobs.push((release.saturating_add(t.task.deadline()), release, idx));
                release = release.saturating_add(t.task.period());
            }
        }
        jobs.sort_unstable();
        for (deadline, release, task_index) in jobs {
            let wcet = tasks[task_index].task.wcet();
            let window = deadline - release;
            // Pass 1 — *spread* placement: aim each of the job's slots at an
            // evenly strided target inside [release, deadline), probing
            // forward past collisions. Spreading keeps free slots uniformly
            // distributed across the table, so the R-channel's supply bound
            // sbf(σ, t) stays proportional to t instead of collapsing to
            // zero over long packed stretches (a greedy ASAP layout can
            // leave multi-hundred-slot windows with no free slot at all).
            let mut chosen: Vec<u64> = Vec::with_capacity(wcet as usize);
            for k in 0..wcet {
                let target = release + (k * window) / wcet;
                let mut slot = target.max(release);
                while slot < deadline {
                    let s = (slot % hyper) as usize;
                    if owners[s].is_none() {
                        owners[s] = Some(SlotOwner {
                            task_index,
                            completes_job: false,
                        });
                        chosen.push(slot);
                        break;
                    }
                    slot += 1;
                }
            }
            // Pass 2 — greedy fallback for any slot the strided probe could
            // not place (heavily packed windows): take the earliest free
            // slots of the window, as the exact EDF layout would.
            if (chosen.len() as u64) < wcet {
                let mut slot = release;
                while (chosen.len() as u64) < wcet && slot < deadline {
                    let s = (slot % hyper) as usize;
                    if owners[s].is_none() {
                        owners[s] = Some(SlotOwner {
                            task_index,
                            completes_job: false,
                        });
                        chosen.push(slot);
                    }
                    slot += 1;
                }
            }
            if (chosen.len() as u64) < wcet {
                return Err(HvError::TableConstruction {
                    reason: format!(
                        "pre-defined task {} (release {release}) misses its table deadline",
                        tasks[task_index].task_id
                    ),
                });
            }
            // The chronologically last slot of the job completes it. A
            // zero-WCET task places no slots and has nothing to complete.
            let Some(&last) = chosen.iter().max() else {
                continue;
            };
            owners[(last % hyper) as usize] = Some(SlotOwner {
                task_index,
                completes_job: true,
            });
        }
        let mask: Vec<bool> = owners.iter().map(Option::is_none).collect();
        let table = TimeSlotTable::from_mask(mask).map_err(|e| HvError::TableConstruction {
            reason: e.to_string(),
        })?;
        Ok(Self {
            tasks,
            table,
            owners,
        })
    }

    /// An empty channel (no pre-defined tasks): a length-1 all-free table.
    pub fn empty() -> Self {
        // lint: allow(panic-site) — infallible by construction: zero tasks give hyper-period 1, within the limit 1
        Self::build(Vec::new(), 1).expect("empty channel always fits")
    }

    /// The Time Slot Table σ\* the R-channel schedules around.
    pub fn table(&self) -> &TimeSlotTable {
        &self.table
    }

    /// The loaded pre-defined tasks.
    pub fn tasks(&self) -> &[PredefinedTask] {
        &self.tasks
    }

    /// Executor lookup: at global slot `t`, the P-channel either fires one
    /// slot of a pre-defined task (returns its owner record) or leaves the
    /// slot to the R-channel (`None`).
    pub fn fire(&self, t: u64) -> Option<SlotOwner> {
        let h = self.owners.len() as u64;
        self.owners[(t % h) as usize]
    }

    /// Hyper-period length of the table.
    pub fn hyper_period(&self) -> u64 {
        self.owners.len() as u64
    }

    /// Total pre-defined utilization (occupied fraction of σ\*).
    pub fn utilization(&self) -> f64 {
        1.0 - self.table.free_fraction()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predefined(task_id: u64, period: u64, wcet: u64) -> PredefinedTask {
        PredefinedTask {
            task_id,
            vm: 0,
            task: SporadicTask::implicit(period, wcet).unwrap(),
            response_bytes: 64,
            start_offset: 0,
        }
    }

    #[test]
    fn empty_channel_is_all_free() {
        let p = PChannel::empty();
        assert_eq!(p.hyper_period(), 1);
        assert_eq!(p.fire(0), None);
        assert_eq!(p.fire(12345), None);
        assert_eq!(p.utilization(), 0.0);
        assert!(p.tasks().is_empty());
    }

    #[test]
    fn single_task_fires_once_per_period() {
        let p = PChannel::build(vec![predefined(1, 4, 1)], 100).unwrap();
        assert_eq!(p.hyper_period(), 4);
        let fires: Vec<bool> = (0..8).map(|t| p.fire(t).is_some()).collect();
        assert_eq!(
            fires,
            vec![true, false, false, false, true, false, false, false]
        );
        let owner = p.fire(0).unwrap();
        assert_eq!(owner.task_index, 0);
        assert!(owner.completes_job, "wcet 1 completes in its only slot");
    }

    #[test]
    fn multi_slot_job_completes_on_last_slot() {
        // Spread layout: (T=5, C=3) targets slots 0, 1, 3; the
        // chronologically last placed slot completes the job.
        let p = PChannel::build(vec![predefined(1, 5, 3)], 100).unwrap();
        let fired: Vec<bool> = (0..5).map(|t| p.fire(t).is_some()).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 3);
        let completing: Vec<u64> = (0..5)
            .filter(|&t| p.fire(t).map(|o| o.completes_job).unwrap_or(false))
            .collect();
        assert_eq!(completing.len(), 1, "exactly one completing slot per job");
        let last_fired = (0..5).filter(|&t| p.fire(t).is_some()).max().unwrap();
        assert_eq!(completing[0], last_fired);
    }

    #[test]
    fn two_tasks_interleave_by_edf() {
        // (T=4, C=1) and (T=8, C=2): hyper 8, occupancy 4.
        let p = PChannel::build(vec![predefined(1, 4, 1), predefined(2, 8, 2)], 100).unwrap();
        assert_eq!(p.hyper_period(), 8);
        let occupied = (0..8).filter(|&t| p.fire(t).is_some()).count();
        assert_eq!(occupied, 4);
        assert!((p.utilization() - 0.5).abs() < 1e-12);
        // Each task fires exactly its demand per hyper-period.
        let t1_slots = (0..8)
            .filter(|&t| p.fire(t).map(|o| o.task_index) == Some(0))
            .count();
        let t2_slots = (0..8)
            .filter(|&t| p.fire(t).map(|o| o.task_index) == Some(1))
            .count();
        assert_eq!(t1_slots, 2);
        assert_eq!(t2_slots, 2);
    }

    #[test]
    fn table_matches_owner_mask() {
        let p = PChannel::build(vec![predefined(1, 6, 2)], 100).unwrap();
        for t in 0..6 {
            assert_eq!(p.table().is_free(t), p.fire(t).is_none());
        }
    }

    #[test]
    fn overload_rejected() {
        let r = PChannel::build(vec![predefined(1, 2, 2), predefined(2, 2, 1)], 100);
        assert!(matches!(r, Err(HvError::TableConstruction { .. })));
    }

    #[test]
    fn hyper_period_limit() {
        let r = PChannel::build(vec![predefined(1, 997, 1), predefined(2, 991, 1)], 1000);
        assert!(matches!(r, Err(HvError::TableConstruction { .. })));
    }

    #[test]
    fn fire_wraps_hyper_period() {
        let p = PChannel::build(vec![predefined(1, 3, 1)], 100).unwrap();
        for k in 0..5 {
            assert!(p.fire(3 * k).is_some());
            assert!(p.fire(3 * k + 1).is_none());
        }
    }

    #[test]
    fn constrained_deadline_layout_respects_deadline() {
        let tight = PredefinedTask {
            task_id: 7,
            vm: 1,
            task: SporadicTask::new(10, 2, 3).unwrap(),
            response_bytes: 32,
            start_offset: 0,
        };
        let p = PChannel::build(vec![tight], 100).unwrap();
        // Both slots of each job must land within [release, release+3).
        for k in 0..3u64 {
            let placed = (10 * k..10 * k + 3)
                .filter(|&t| p.fire(t).is_some())
                .count();
            assert_eq!(placed, 2, "job {k}");
        }
    }
}
