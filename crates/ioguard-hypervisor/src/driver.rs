//! The virtualization driver: translators and I/O controller models.
//!
//! The driver sits between the virtualization manager and the physical
//! device: a request-path translator turns virtualized I/O operations into
//! bottom-level instructions with a *bounded* worst-case translation time
//! (the real-time translators of BlueVisor \[6\]), the I/O controller clocks
//! payload bytes out at the device's line rate, and a response-path
//! translator carries results back through the pass-through response
//! channel.

use serde::{Deserialize, Serialize};

/// The I/O protocols evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoProtocol {
    /// SPI at 50 Mbps (typical FPGA SPI master).
    Spi,
    /// I²C fast mode plus: 1 Mbps.
    I2c,
    /// Gigabit Ethernet: 1 Gbps (the case study's inbound path).
    Ethernet,
    /// FlexRay: 10 Mbps (the case study's outbound path).
    FlexRay,
}

impl IoProtocol {
    /// Line rate in bits per second.
    pub const fn bits_per_second(self) -> u64 {
        match self {
            IoProtocol::Spi => 50_000_000,
            IoProtocol::I2c => 1_000_000,
            IoProtocol::Ethernet => 1_000_000_000,
            IoProtocol::FlexRay => 10_000_000,
        }
    }

    /// Fixed per-frame overhead in bits (preamble, header, CRC, ACK…).
    pub const fn frame_overhead_bits(self) -> u64 {
        match self {
            IoProtocol::Spi => 16,
            IoProtocol::I2c => 29,
            IoProtocol::Ethernet => 304, // preamble+hdr+FCS+IFG of one frame
            IoProtocol::FlexRay => 80,
        }
    }

    /// Maximum payload bytes per frame.
    pub const fn max_frame_payload(self) -> u32 {
        match self {
            IoProtocol::Spi => 4096,
            IoProtocol::I2c => 256,
            IoProtocol::Ethernet => 1500,
            IoProtocol::FlexRay => 254,
        }
    }

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            IoProtocol::Spi => "SPI",
            IoProtocol::I2c => "I2C",
            IoProtocol::Ethernet => "Ethernet",
            IoProtocol::FlexRay => "FlexRay",
        }
    }
}

/// The translator pair: bounded worst-case translation latency per I/O
/// operation, in nanoseconds (request + response path each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translator {
    /// Worst-case translation time of one operation, ns.
    pub wcet_ns: u64,
}

impl Translator {
    /// The calibrated BlueVisor-style translator: 240 ns worst case
    /// (24 cycles at 100 MHz).
    pub const fn real_time() -> Self {
        Self { wcet_ns: 240 }
    }
}

impl Default for Translator {
    fn default() -> Self {
        Self::real_time()
    }
}

/// A standardized I/O controller bound to one protocol.
///
/// # Example
///
/// ```
/// use ioguard_hypervisor::driver::{IoController, IoProtocol};
///
/// let eth = IoController::new(IoProtocol::Ethernet);
/// // 1500 B over GbE: ~12.3 µs of wire time.
/// let ns = eth.transfer_ns(1500);
/// assert!((12_000..13_500).contains(&ns), "{ns}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoController {
    protocol: IoProtocol,
    translator: Translator,
}

impl IoController {
    /// Creates a controller with the default real-time translator.
    pub fn new(protocol: IoProtocol) -> Self {
        Self {
            protocol,
            translator: Translator::real_time(),
        }
    }

    /// The protocol this controller drives.
    pub const fn protocol(self) -> IoProtocol {
        self.protocol
    }

    /// Pure wire time to move `bytes` of payload, in nanoseconds, including
    /// per-frame overhead and fragmentation.
    pub fn transfer_ns(self, bytes: u32) -> u64 {
        let p = self.protocol;
        let frames = bytes.div_ceil(p.max_frame_payload()).max(1) as u64;
        let bits = 8 * bytes as u64 + frames * p.frame_overhead_bits();
        // ns = bits / (bits/s) * 1e9 — computed without overflow.
        bits * 1_000_000_000 / p.bits_per_second()
    }

    /// End-to-end service time for one I/O operation of `bytes` payload:
    /// translation (request + response) plus wire time.
    pub fn service_ns(self, bytes: u32) -> u64 {
        self.translator
            .wcet_ns
            .saturating_mul(2)
            .saturating_add(self.transfer_ns(bytes))
    }

    /// Service time in hypervisor slots of `slot_ns` nanoseconds, rounded
    /// up (the executor owns whole slots).
    ///
    /// # Panics
    ///
    /// Panics if `slot_ns` is zero.
    pub fn service_slots(self, bytes: u32, slot_ns: u64) -> u64 {
        assert!(slot_ns > 0, "slot length must be positive");
        self.service_ns(bytes).div_ceil(slot_ns).max(1)
    }

    /// Sustainable throughput in bytes/second for back-to-back operations
    /// of `bytes` payload.
    pub fn throughput_bps(self, bytes: u32) -> f64 {
        bytes as f64 / (self.service_ns(bytes) as f64 / 1e9)
    }
}

/// Retry discipline of the per-transaction watchdog: how long a transaction
/// may stall before the driver retries it, how many retries are budgeted,
/// and the exponential backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Consecutive no-progress slots before a retry fires.
    pub timeout_slots: u64,
    /// Bounded retry budget per fault episode.
    pub max_retries: u32,
    /// Backoff after the first retry, in slots (each further retry doubles
    /// it, capped at `backoff_cap`).
    pub backoff_base: u64,
    /// Upper bound of the exponential backoff, in slots.
    pub backoff_cap: u64,
}

impl RetryPolicy {
    /// The calibrated default: 4-slot timeout, 3 retries, 2-slot base
    /// backoff capped at 64 slots.
    pub const fn real_time() -> Self {
        Self {
            timeout_slots: 4,
            max_retries: 3,
            backoff_base: 2,
            backoff_cap: 64,
        }
    }

    /// Backoff before retry `attempt` (1-based): `base · 2^(attempt-1)`,
    /// saturating, capped at `backoff_cap` and never below one slot.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(63);
        self.backoff_base
            .saturating_mul(1u64 << doublings)
            .clamp(1, self.backoff_cap.max(1))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::real_time()
    }
}

/// Outcome of one watchdog observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Still counting toward the timeout — keep waiting.
    Armed,
    /// The timeout fired: retry the transaction after `backoff_slots`.
    Retry {
        /// 1-based attempt number.
        attempt: u32,
        /// Backoff window before the retry, in slots.
        backoff_slots: u64,
    },
    /// The retry budget is exhausted — escalate (degrade).
    Exhausted,
}

/// Per-transaction watchdog: observes progress (or the lack of it) on the
/// device and drives the timeout → retry → backoff → exhaustion cycle.
///
/// # Example
///
/// ```
/// use ioguard_hypervisor::driver::{RetryPolicy, Watchdog, WatchdogVerdict};
///
/// let mut wd = Watchdog::new(RetryPolicy { timeout_slots: 2, max_retries: 1, backoff_base: 2, backoff_cap: 8 });
/// assert_eq!(wd.note_stall(0), WatchdogVerdict::Armed);
/// let v = wd.note_stall(1); // timeout: first retry, 2-slot backoff
/// assert_eq!(v, WatchdogVerdict::Retry { attempt: 1, backoff_slots: 2 });
/// assert!(wd.in_backoff(2) && !wd.in_backoff(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watchdog {
    policy: RetryPolicy,
    stalled: u64,
    attempt: u32,
    backoff_until: u64,
    episode: bool,
}

impl Watchdog {
    /// Creates a watchdog with the given retry policy.
    pub const fn new(policy: RetryPolicy) -> Self {
        Self {
            policy,
            stalled: 0,
            attempt: 0,
            backoff_until: 0,
            episode: false,
        }
    }

    /// The retry policy.
    pub const fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Retries issued in the current fault episode.
    pub const fn attempts(&self) -> u32 {
        self.attempt
    }

    /// True while the post-retry backoff window is open at `now`.
    pub fn in_backoff(&self, now: u64) -> bool {
        now < self.backoff_until
    }

    /// Reports one granted slot in which the transaction made no progress.
    /// Returns the escalation verdict; after [`WatchdogVerdict::Exhausted`]
    /// the cycle restarts so a persistent fault escalates repeatedly.
    pub fn note_stall(&mut self, now: u64) -> WatchdogVerdict {
        self.episode = true;
        self.stalled = self.stalled.saturating_add(1);
        if self.stalled < self.policy.timeout_slots.max(1) {
            return WatchdogVerdict::Armed;
        }
        self.stalled = 0;
        if self.attempt >= self.policy.max_retries {
            self.attempt = 0;
            self.backoff_until = 0;
            return WatchdogVerdict::Exhausted;
        }
        self.attempt += 1;
        let backoff_slots = self.policy.backoff_for(self.attempt);
        self.backoff_until = now.saturating_add(backoff_slots).saturating_add(1);
        WatchdogVerdict::Retry {
            attempt: self.attempt,
            backoff_slots,
        }
    }

    /// Reports progress on the device. Returns `true` when this closes an
    /// active fault episode (the caller traces a recovery).
    pub fn note_progress(&mut self) -> bool {
        let recovered = self.episode;
        self.stalled = 0;
        self.attempt = 0;
        self.backoff_until = 0;
        self.episode = false;
        recovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rates_match_the_paper() {
        // "…via an Ethernet controller (1 Gbps)… via a FlexRay (10 Mbps)."
        assert_eq!(IoProtocol::Ethernet.bits_per_second(), 1_000_000_000);
        assert_eq!(IoProtocol::FlexRay.bits_per_second(), 10_000_000);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let eth = IoController::new(IoProtocol::Ethernet);
        assert!(eth.transfer_ns(1500) > eth.transfer_ns(64));
        // Doubling payload beyond one frame roughly doubles time.
        let one = eth.transfer_ns(1500);
        let two = eth.transfer_ns(3000);
        assert!(two > 2 * one - one / 4 && two < 2 * one + one / 4);
    }

    #[test]
    fn slower_bus_takes_longer() {
        let bytes = 128;
        let eth = IoController::new(IoProtocol::Ethernet).transfer_ns(bytes);
        let spi = IoController::new(IoProtocol::Spi).transfer_ns(bytes);
        let flexray = IoController::new(IoProtocol::FlexRay).transfer_ns(bytes);
        let i2c = IoController::new(IoProtocol::I2c).transfer_ns(bytes);
        assert!(eth < spi && spi < flexray && flexray < i2c);
    }

    #[test]
    fn ethernet_wire_time_sanity() {
        // 1500 B + 304 bits overhead at 1 Gbps = 12.0 + 0.3 µs.
        let ns = IoController::new(IoProtocol::Ethernet).transfer_ns(1500);
        assert_eq!(ns, (8 * 1500 + 304) * 1_000_000_000 / 1_000_000_000);
    }

    #[test]
    fn fragmentation_adds_overhead() {
        let fr = IoController::new(IoProtocol::FlexRay);
        // 300 B needs 2 FlexRay frames (254 B max payload).
        let one_frame = fr.transfer_ns(254);
        let two_frames = fr.transfer_ns(300);
        let bits_300_direct = (8 * 300 + 80) * 1_000_000_000 / 10_000_000;
        assert!(
            two_frames > bits_300_direct,
            "second frame overhead counted"
        );
        assert!(two_frames > one_frame);
    }

    #[test]
    fn service_includes_translation() {
        let c = IoController::new(IoProtocol::Spi);
        assert_eq!(c.service_ns(100), 480 + c.transfer_ns(100));
    }

    #[test]
    fn service_slots_rounds_up_and_is_positive() {
        let c = IoController::new(IoProtocol::Ethernet);
        // Tiny transfer still costs one slot.
        assert_eq!(c.service_slots(1, 50_000), 1);
        // 1500 B ≈ 12.8 µs incl. translators → 1 slot of 50 µs.
        assert_eq!(c.service_slots(1500, 50_000), 1);
        // On I²C the same payload spans many 50 µs slots.
        let i2c = IoController::new(IoProtocol::I2c);
        assert!(i2c.service_slots(1500, 50_000) > 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slot_length_panics() {
        let _ = IoController::new(IoProtocol::Spi).service_slots(1, 0);
    }

    #[test]
    fn throughput_approaches_line_rate_for_large_frames() {
        let eth = IoController::new(IoProtocol::Ethernet);
        let tp = eth.throughput_bps(1500);
        // ≥ 90% of 125 MB/s.
        assert!(tp > 0.90 * 125_000_000.0, "throughput {tp}");
        // Small frames are overhead-dominated.
        assert!(eth.throughput_bps(64) < tp);
    }

    #[test]
    fn labels() {
        assert_eq!(IoProtocol::Ethernet.label(), "Ethernet");
        assert_eq!(IoProtocol::FlexRay.label(), "FlexRay");
        assert_eq!(IoProtocol::Spi.label(), "SPI");
        assert_eq!(IoProtocol::I2c.label(), "I2C");
    }

    #[test]
    fn default_translator_is_real_time() {
        assert_eq!(Translator::default(), Translator::real_time());
        assert_eq!(Translator::real_time().wcet_ns, 240);
    }
}
