//! Property-based tests for the hypervisor device model.

use proptest::prelude::*;

use ioguard_hypervisor::error::HvError;
use ioguard_hypervisor::gsched::GschedPolicy;
use ioguard_hypervisor::hypervisor::{Hypervisor, HypervisorParams, PchannelReclaim, RtJob};
use ioguard_hypervisor::pchannel::{PChannel, PredefinedTask};
use ioguard_hypervisor::pool::{IoPool, PoolEntry};
use ioguard_sched::task::{PeriodicServer, SporadicTask};

fn arb_predefined_set() -> impl Strategy<Value = Vec<PredefinedTask>> {
    prop::collection::vec(
        (2u64..=12, 1u64..=3, 0u64..12).prop_map(|(period, wcet, offset)| {
            let wcet = wcet.min(period);
            PredefinedTask {
                task_id: period * 1000 + wcet * 100 + offset,
                vm: 0,
                task: SporadicTask::implicit(period, wcet).expect("valid"),
                response_bytes: 16,
                start_offset: offset,
            }
        }),
        0..=3,
    )
}

/// Long-run cross-check of the incremental shadow register against a naive
/// linear-scan model: 10 000 randomized insert/execute/expire operations,
/// verifying `shadow()`/`shadow_key()` equal the scan minimum (ties by task
/// id) after every single operation.
#[test]
fn pool_shadow_matches_naive_model_over_10k_ops() {
    let mut pool = IoPool::new(32);
    let mut model: Vec<(u64, u64, u64)> = Vec::new(); // (deadline, task_id, remaining)
    let mut state = 0x5AD0_11E6_u64;
    let mut rand = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let mut next_id = 0u64;
    let mut now = 0u64;
    for step in 0..10_000u64 {
        match rand(8) {
            0..=3 => {
                next_id += 1;
                let deadline = now + 1 + rand(200);
                let remaining = 1 + rand(4);
                let admitted = pool
                    .insert(PoolEntry {
                        task_id: next_id,
                        deadline,
                        remaining,
                        enqueued_at: now,
                        first_dispatch: u64::MAX,
                        response_bytes: 0,
                        critical: true,
                    })
                    .is_ok();
                assert_eq!(admitted, model.len() < 32, "step {step}: admission");
                if admitted {
                    model.push((deadline, next_id, remaining));
                }
            }
            4..=5 => {
                if !pool.is_empty() {
                    let completed = pool.execute_slot().expect("pool checked non-empty");
                    let (i, _) = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(d, id, _))| (d, id))
                        .expect("model non-empty");
                    model[i].2 -= 1;
                    assert_eq!(completed.is_some(), model[i].2 == 0, "step {step}");
                    if model[i].2 == 0 {
                        let (d, id, _) = model.swap_remove(i);
                        let done = completed.expect("completed");
                        assert_eq!((done.deadline, done.task_id), (d, id));
                    }
                }
            }
            _ => {
                now += rand(40);
                let missed = pool.expire(now);
                let mut expected: Vec<(u64, u64)> = model
                    .iter()
                    .filter(|&&(d, _, _)| d <= now)
                    .map(|&(d, id, _)| (d, id))
                    .collect();
                expected.sort_unstable();
                let got: Vec<(u64, u64)> = missed.iter().map(|e| (e.deadline, e.task_id)).collect();
                assert_eq!(got, expected, "step {step}: expiry set and order");
                model.retain(|&(d, _, _)| d > now);
            }
        }
        let naive = model.iter().map(|&(d, id, _)| (d, id)).min();
        assert_eq!(pool.shadow_key(), naive, "step {step}");
        assert_eq!(
            pool.shadow().map(|e| (e.deadline, e.task_id)),
            naive,
            "step {step}"
        );
        assert_eq!(pool.len(), model.len(), "step {step}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// σ* invariants for any feasible pre-defined set: per hyper-period,
    /// each task owns exactly C·(H/T) slots, exactly one completing slot
    /// per job, and the free mask matches the owner map.
    #[test]
    fn pchannel_table_invariants(tasks in arb_predefined_set()) {
        let Ok(pch) = PChannel::build(tasks.clone(), 4096) else {
            return Ok(()); // infeasible set: construction correctly refuses
        };
        let h = pch.hyper_period();
        for (idx, t) in pch.tasks().iter().enumerate() {
            let jobs = h / t.task.period();
            let owned = (0..h)
                .filter(|&s| pch.fire(s).map(|o| o.task_index) == Some(idx))
                .count() as u64;
            prop_assert_eq!(owned, jobs * t.task.wcet(), "task {} slot count", idx);
            let completions = (0..h)
                .filter(|&s| {
                    pch.fire(s)
                        .map(|o| o.task_index == idx && o.completes_job)
                        .unwrap_or(false)
                })
                .count() as u64;
            prop_assert_eq!(completions, jobs, "task {} one completion per job", idx);
        }
        for s in 0..h {
            prop_assert_eq!(pch.table().is_free(s), pch.fire(s).is_none());
        }
    }

    /// Every pre-defined job's slots land inside its own release window.
    #[test]
    fn pchannel_slots_respect_windows(tasks in arb_predefined_set()) {
        let Ok(pch) = PChannel::build(tasks, 4096) else { return Ok(()) };
        let h = pch.hyper_period();
        for (idx, t) in pch.tasks().iter().enumerate() {
            let period = t.task.period();
            let offset = t.start_offset % period;
            // Walk two hyper-periods and check each owned slot falls in
            // some window [offset + kT, offset + kT + D) modulo wrap.
            for s in 0..2 * h {
                if pch.fire(s).map(|o| o.task_index) == Some(idx) {
                    let rel = (s + period - (offset % period)) % period;
                    prop_assert!(
                        rel < t.task.deadline(),
                        "task {} slot {} at window offset {} >= D {}",
                        idx,
                        s,
                        rel,
                        t.task.deadline()
                    );
                }
            }
        }
    }

    /// Pool EDF invariant: the incrementally maintained shadow register
    /// always holds the minimum `(deadline, task_id)` among buffered
    /// entries, under arbitrary insert/execute/expire interleavings.
    #[test]
    fn pool_shadow_is_always_min(
        ops in prop::collection::vec((0u8..6, 1u64..100, 1u64..4), 1..60),
    ) {
        let mut pool = IoPool::new(16);
        let mut next_id = 0u64;
        let mut now = 0u64;
        for (op, deadline, wcet) in ops {
            match op {
                0..=2 => {
                    next_id += 1;
                    let _ = pool.insert(PoolEntry {
                        task_id: next_id,
                        deadline,
                        remaining: wcet,
                        enqueued_at: 0,
                        first_dispatch: u64::MAX,
                        response_bytes: 0,
                        critical: true,
                    });
                }
                3..=4 => {
                    if !pool.is_empty() {
                        let _ = pool.execute_slot();
                    }
                }
                _ => {
                    // Advance the clock and expire: removals must come back
                    // earliest-deadline-first and leave the register valid.
                    now = now.max(deadline / 2);
                    let missed = pool.expire(now);
                    prop_assert!(
                        missed.windows(2).all(|w| (w[0].deadline, w[0].task_id)
                            <= (w[1].deadline, w[1].task_id)),
                        "expiry order"
                    );
                    prop_assert!(missed.iter().all(|e| e.deadline <= now));
                }
            }
            let min = pool.iter().map(|e| (e.deadline, e.task_id)).min();
            prop_assert_eq!(pool.shadow_key(), min);
            if let Some(shadow) = pool.shadow() {
                prop_assert_eq!(
                    Some((shadow.deadline, shadow.task_id)),
                    min
                );
            }
        }
    }

    /// Work conservation of the device: with a backlogged pool and a free
    /// table, no slot idles.
    #[test]
    fn no_idle_slots_under_backlog(wcets in prop::collection::vec(1u64..6, 4..12)) {
        let mut hv = Hypervisor::new(HypervisorParams::new(1)).expect("valid");
        let total: u64 = wcets.iter().sum();
        for (i, w) in wcets.iter().enumerate() {
            hv.submit(RtJob::new(0, i as u64, 0, *w, 10_000)).expect("fits");
        }
        hv.run(total);
        prop_assert_eq!(hv.metrics().idle_slots, 0);
        prop_assert_eq!(hv.metrics().rchannel_slots, total);
        prop_assert_eq!(hv.metrics().completed, wcets.len() as u64);
    }

    /// Reclamation never loses work: with slack reclamation on, every
    /// pre-defined job still completes exactly once per period, and total
    /// slot accounting balances.
    #[test]
    fn reclamation_preserves_completions(tasks in arb_predefined_set(), seed in any::<u64>()) {
        if tasks.is_empty() {
            return Ok(());
        }
        let Ok(probe) = PChannel::build(tasks.clone(), 4096) else { return Ok(()) };
        let h = probe.hyper_period();
        let expected_per_hyper: u64 = tasks.iter().map(|t| h / t.task.period()).sum();
        let params = HypervisorParams::new(1)
            .with_predefined(tasks)
            .with_reclaim(PchannelReclaim { seed, min_fraction: 0.5 });
        let mut hv = Hypervisor::new(params).expect("probe succeeded");
        let periods = 4;
        hv.run(periods * h);
        prop_assert_eq!(
            hv.metrics().predefined_completed,
            periods * expected_per_hyper
        );
        prop_assert_eq!(hv.metrics().total_slots(), periods * h);
        // Reclamation can only donate slots, never consume extra.
        prop_assert!(hv.metrics().pchannel_slots <= periods * (h - probe.table().free_slots()));
    }

    /// Fault-interleaving safety: arbitrary submit/step sequences — pool
    /// overflow storms, empty-pool slots, unknown VMs, device stalls and
    /// clears — never panic, never overfill a pool, and never lose a job
    /// from the accounting (admitted = completed + missed + in flight).
    #[test]
    fn fault_interleavings_never_panic_or_overfill(
        ops in prop::collection::vec((0u8..8, 0u64..5, 1u64..40), 1..120),
    ) {
        let capacity = 4;
        let params = HypervisorParams {
            pool_capacity: capacity,
            ..HypervisorParams::new(2)
        }
        .with_policy(GschedPolicy::GuardedEdf(vec![
            PeriodicServer::new(8, 4).expect("valid");
            2
        ]))
        .with_watchdog(ioguard_hypervisor::driver::RetryPolicy {
            timeout_slots: 2,
            max_retries: 2,
            backoff_base: 1,
            backoff_cap: 4,
        })
        .with_admission_guard(ioguard_hypervisor::hypervisor::AdmissionGuard {
            window: 8,
            max_submissions: 6,
            throttle_slots: 8,
        });
        let mut hv = Hypervisor::new(params).expect("valid");
        let mut next_id = 0u64;
        let mut admitted = 0u64;
        let mut refused_missed = 0u64;
        for (op, vm, span) in ops {
            match op {
                // Submissions: vm 0/1 are real, larger indices malformed;
                // tight spans produce immediate-miss deadlines, wide spans
                // normal jobs. Errors (PoolFull, Throttled, UnknownVm,
                // DegradedMode) are the faults under test.
                0..=3 => {
                    next_id += 1;
                    let release = hv.now();
                    let job = RtJob::new(vm as usize, next_id, release, 1 + span % 3, release + span);
                    match hv.submit(job) {
                        Ok(()) => admitted += 1,
                        // These two refusal paths count the (critical) job
                        // as missed; throttles and unknown VMs do not.
                        Err(HvError::PoolFull { .. }) | Err(HvError::DegradedMode) => {
                            refused_missed += 1;
                        }
                        Err(_) => {}
                    }
                }
                4..=5 => hv.run(span % 6),
                6 => hv.inject_device_stall(span),
                _ => hv.clear_device_faults(),
            }
            for pool in hv.pools() {
                prop_assert!(pool.len() <= capacity, "pool over capacity");
            }
        }
        // Drain with the device healthy: every admitted job must end up
        // accounted as completed or missed, never vanish.
        hv.clear_device_faults();
        hv.run(600);
        let m = hv.metrics();
        let in_flight: u64 = hv.pools().iter().map(|p| p.len() as u64).sum();
        prop_assert_eq!(in_flight, 0, "600 healthy slots drain capacity-4 backlogs");
        prop_assert_eq!(m.completed + m.missed, admitted + refused_missed,
            "every admitted or miss-counted job is conserved");
    }

    /// Server-based G-Sched never grants a VM more than its budget within
    /// any server period.
    #[test]
    fn server_budget_is_never_exceeded(
        budget in 1u64..4,
        period_factor in 2u64..5,
        jobs in prop::collection::vec(1u64..4, 4..20),
    ) {
        let period = budget * period_factor;
        let servers = vec![PeriodicServer::new(period, budget).expect("valid")];
        let params = HypervisorParams::new(1)
            .with_policy(GschedPolicy::ServerBased(servers));
        let mut hv = Hypervisor::new(params).expect("valid");
        // Saturate the pool.
        for (i, w) in jobs.iter().enumerate() {
            let _ = hv.submit(RtJob::new(0, i as u64, 0, *w, 100_000));
        }
        let horizon = 20 * period;
        let mut granted_in_period = 0u64;
        for t in 0..horizon {
            let before = hv.metrics().rchannel_slots;
            hv.step();
            granted_in_period += hv.metrics().rchannel_slots - before;
            if (t + 1) % period == 0 {
                prop_assert!(
                    granted_in_period <= budget,
                    "granted {} > budget {} in one period",
                    granted_in_period,
                    budget
                );
                granted_in_period = 0;
            }
        }
    }
}
