//! Drivers and renderers for the non-case-study experiments.
//!
//! * **Fig. 6** — software overhead: delegates to
//!   [`ioguard_hw::footprint`].
//! * **Table I** — hardware overhead: delegates to
//!   [`ioguard_hw::reference`].
//! * **Fig. 8** — scalability: delegates to [`ioguard_hw::scale`].
//! * **Schedulability** — acceptance-ratio sweeps comparing the exact and
//!   pseudo-polynomial tests of Sec. IV, plus their runtime cost.

use serde::{Deserialize, Serialize};

use ioguard_sched::design::{synthesize_servers, SynthesisConfig};
use ioguard_sched::gsched::{theorem1_exact, theorem2_pseudo_poly};
use ioguard_sched::lsched::{theorem3_exact, theorem4_pseudo_poly};
use ioguard_sched::table::TimeSlotTable;
use ioguard_sched::task::{PeriodicServer, SporadicTask, TaskSet};
use ioguard_sim::rng::Xoshiro256StarStar;
use ioguard_workload::uunifast::uunifast;

/// Renders the Fig. 6 software-overhead table.
pub fn fig6_report() -> String {
    ioguard_hw::footprint::render_fig6()
}

/// Renders Table I.
pub fn table1_report() -> String {
    ioguard_hw::reference::render_table1()
}

/// Renders the Fig. 8 scalability sweep for η in `0..=eta_max`.
pub fn fig8_report(eta_max: u32) -> String {
    ioguard_hw::scale::render_fig8(&ioguard_hw::scale::fig8_sweep(eta_max))
}

/// Configuration of the schedulability acceptance-ratio experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedExperimentConfig {
    /// Number of random systems per utilization point.
    pub systems_per_point: u32,
    /// Number of VMs per system.
    pub vms: usize,
    /// Tasks per VM.
    pub tasks_per_vm: usize,
    /// Table length H.
    pub table_len: u64,
    /// Occupied (P-channel) fraction of the table.
    pub occupied_fraction: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for SchedExperimentConfig {
    fn default() -> Self {
        Self {
            systems_per_point: 50,
            vms: 4,
            tasks_per_vm: 3,
            table_len: 24,
            occupied_fraction: 0.25,
            seed: 99,
        }
    }
}

/// One point of the acceptance-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePoint {
    /// Total R-channel utilization of the generated systems.
    pub utilization: f64,
    /// Fraction of systems accepted by the two-layer analysis (with
    /// synthesized servers).
    pub accepted: f64,
}

/// Sweeps R-channel utilization and measures which fraction of random
/// systems the two-layer analysis (Theorems 1 + 3, with synthesized
/// servers) admits. This is the analysis-side counterpart of Fig. 7: the
/// schedulable region shrinks as utilization grows.
pub fn acceptance_ratio_sweep(
    config: &SchedExperimentConfig,
    utilizations: &[f64],
) -> Vec<AcceptancePoint> {
    let mut rng = Xoshiro256StarStar::new(config.seed);
    let occupied: Vec<u64> =
        (0..((config.table_len as f64 * config.occupied_fraction) as u64)).collect();
    let sigma = TimeSlotTable::from_occupied(config.table_len, &occupied)
        .expect("table parameters are valid");
    utilizations
        .iter()
        .map(|&util| {
            let mut accepted = 0u32;
            for _ in 0..config.systems_per_point {
                let task_sets = random_task_sets(&mut rng, config, util);
                if let Ok(servers) = synthesize_servers(
                    &sigma,
                    &task_sets,
                    &SynthesisConfig::divisors_of(config.table_len),
                ) {
                    // Synthesis already validates both layers.
                    debug_assert_eq!(servers.len(), task_sets.len());
                    accepted += 1;
                }
            }
            AcceptancePoint {
                utilization: util,
                accepted: accepted as f64 / config.systems_per_point as f64,
            }
        })
        .collect()
}

fn random_task_sets(
    rng: &mut Xoshiro256StarStar,
    config: &SchedExperimentConfig,
    total_util: f64,
) -> Vec<TaskSet> {
    let n = config.vms * config.tasks_per_vm;
    let utils = uunifast(rng, n, total_util);
    let mut sets = vec![TaskSet::new(); config.vms];
    for (i, u) in utils.into_iter().enumerate() {
        // Periods divide the table length so the exact tests stay cheap.
        let period = config.table_len * rng.range_u64(1, 9);
        let wcet = ((u * period as f64).round() as u64).clamp(1, period);
        let task = SporadicTask::implicit(period, wcet).expect("clamped");
        sets[i % config.vms].push(task);
    }
    sets
}

/// Result of the exact-vs-pseudo-polynomial agreement experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AgreementReport {
    /// Systems where both tests were applicable.
    pub compared: u32,
    /// Systems where verdicts agreed.
    pub agreed: u32,
    /// Systems where the pseudo-poly precondition (slack) failed.
    pub not_applicable: u32,
}

/// Compares Theorem 1 vs 2 and Theorem 3 vs 4 on random systems; the paper
/// proves they agree whenever the slack precondition holds.
pub fn theorem_agreement(config: &SchedExperimentConfig, samples: u32) -> AgreementReport {
    let mut rng = Xoshiro256StarStar::new(config.seed ^ 0xA9);
    let mut report = AgreementReport::default();
    for _ in 0..samples {
        let h = 4 + rng.range_u64(0, 12);
        let occ: Vec<u64> = (0..h / 4).collect();
        let sigma = TimeSlotTable::from_occupied(h, &occ).expect("valid");
        let servers: Vec<PeriodicServer> = (0..2)
            .map(|_| {
                let pi = 2 + rng.range_u64(0, 10);
                PeriodicServer::new(pi, 1 + rng.range_u64(0, pi)).expect("valid")
            })
            .collect();
        let exact = theorem1_exact(&sigma, &servers, 1 << 24).expect("bounded");
        match theorem2_pseudo_poly(&sigma, &servers, 0.01) {
            Ok(pseudo) => {
                report.compared += 1;
                if pseudo.is_schedulable() == exact.is_schedulable() {
                    report.agreed += 1;
                }
            }
            Err(_) => report.not_applicable += 1,
        }
        // L-Sched side.
        let server = servers[0];
        let mut ts = TaskSet::new();
        for _ in 0..config.tasks_per_vm {
            let t = 5 + rng.range_u64(0, 40);
            let c = 1 + rng.range_u64(0, 4.min(t));
            let d = c + rng.range_u64(0, t - c + 1);
            ts.push(SporadicTask::new(t, c, d).expect("valid by construction"));
        }
        let exact = theorem3_exact(&server, &ts, 1 << 26).expect("bounded");
        match theorem4_pseudo_poly(&server, &ts, 0.01) {
            Ok(pseudo) => {
                report.compared += 1;
                if pseudo.is_schedulable() == exact.is_schedulable() {
                    report.agreed += 1;
                }
            }
            Err(_) => report.not_applicable += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_table1_fig8_render() {
        assert!(fig6_report().contains("I/O-GUARD"));
        assert!(table1_report().contains("Proposed"));
        let fig8 = fig8_report(4);
        assert!(fig8.lines().count() >= 5);
    }

    #[test]
    fn acceptance_ratio_decreases_with_utilization() {
        let config = SchedExperimentConfig {
            systems_per_point: 30,
            ..SchedExperimentConfig::default()
        };
        let points = acceptance_ratio_sweep(&config, &[0.2, 0.5, 0.9]);
        assert_eq!(points.len(), 3);
        assert!(points[0].accepted >= points[2].accepted);
        assert!(
            points[0].accepted > 0.8,
            "light systems admitted: {points:?}"
        );
        // Beyond the free capacity (0.75 here) nothing fits.
        assert!(
            points[2].accepted < 0.5,
            "heavy systems rejected: {points:?}"
        );
    }

    #[test]
    fn theorems_agree_on_every_applicable_sample() {
        let report = theorem_agreement(&SchedExperimentConfig::default(), 150);
        assert!(report.compared > 50);
        assert_eq!(report.agreed, report.compared, "{report:?}");
    }
}
