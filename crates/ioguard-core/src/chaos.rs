//! Chaos sweep: fault-plan batches over the experiment engine.
//!
//! A [`ChaosSweep`] fans a batch of [`ChaosScenario`]s (quiet baselines,
//! babbling adversaries, lossy NoCs, stalling devices) out over the
//! work-stealing [`engine`](crate::engine). Because every fault decision in
//! a plan is a pure hash of its seed, the sweep's outcome vector is
//! **bit-identical at any thread count** — the reproducibility property the
//! chaos-isolation test suite pins down.

use ioguard_faults::{
    ChaosOutcome, ChaosScenario, FaultPlan, ObservedChaos, ReconfigOutcome, ReconfigScenario,
};
use ioguard_hypervisor::HvObs;
use ioguard_obs::{CounterRegistry, Histogram};

use crate::engine::{run_indexed, EngineStats};

/// A batch of chaos trials to run through the engine.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// The scenarios, run as one engine batch.
    pub scenarios: Vec<ChaosScenario>,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
}

impl ChaosSweep {
    /// The standard robustness battery: for each of `trials` seeds derived
    /// from `base_seed`, a quiet baseline, a babbling adversary, a lossy
    /// NoC, and a stalling device — four scenarios per seed.
    pub fn standard(base_seed: u64, trials: u64, threads: usize) -> Self {
        let mut scenarios = Vec::new();
        for trial in 0..trials {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(trial);
            scenarios.push(ChaosScenario::new(FaultPlan::new(seed)));
            scenarios.push(ChaosScenario::new(
                FaultPlan::new(seed).with_adversary(1, 6),
            ));
            scenarios.push(ChaosScenario::new(
                FaultPlan::new(seed)
                    .with_drop_rate(0.2)
                    .with_corrupt_rate(0.1),
            ));
            scenarios.push(ChaosScenario::new(
                FaultPlan::new(seed).with_device_stalls(0.5, 48),
            ));
        }
        Self { scenarios, threads }
    }

    /// Runs every scenario through the engine and collects the outcomes in
    /// scenario order.
    ///
    /// # Errors
    ///
    /// Propagates the first scenario-construction error
    /// ([`ioguard_hypervisor::HvError`]); fault-induced submission errors
    /// inside a trial are data, not failures.
    pub fn run(&self) -> Result<ChaosSweepReport, ioguard_hypervisor::HvError> {
        let (results, stats) = run_indexed(self.threads, &self.scenarios, |_, s| s.run());
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }
        Ok(ChaosSweepReport {
            scenarios: self.scenarios.clone(),
            outcomes,
            stats,
        })
    }

    /// Runs every scenario with the observability layer attached
    /// ([`ChaosScenario::run_observed`]) and collects the observed trials
    /// in scenario order.
    ///
    /// The plain outcomes inside are bit-identical to [`ChaosSweep::run`]
    /// at any thread count, and the merged histograms are too: merging is
    /// associative and commutative, and the fold below runs in scenario
    /// order regardless of which worker ran which trial.
    ///
    /// # Errors
    ///
    /// As [`ChaosSweep::run`].
    pub fn run_observed(&self) -> Result<ObservedSweepReport, ioguard_hypervisor::HvError> {
        let (results, stats) = run_indexed(self.threads, &self.scenarios, |_, s| s.run_observed());
        let mut trials = Vec::with_capacity(results.len());
        for r in results {
            trials.push(r?);
        }
        Ok(ObservedSweepReport {
            scenarios: self.scenarios.clone(),
            trials,
            stats,
        })
    }
}

/// The collected observed trials of one sweep.
#[derive(Debug)]
pub struct ObservedSweepReport {
    /// The scenarios that ran, in order.
    pub scenarios: Vec<ChaosScenario>,
    /// Per-scenario observed trials, in scenario order.
    pub trials: Vec<ObservedChaos>,
    /// Engine counters for the run.
    pub stats: EngineStats,
}

impl ObservedSweepReport {
    /// The plain outcomes, in scenario order.
    pub fn outcomes(&self) -> Vec<&ChaosOutcome> {
        self.trials.iter().map(|t| &t.outcome).collect()
    }

    /// All hypervisor-side histograms merged across trials (per-VM vectors
    /// zip by VM index; the standard battery uses one geometry throughout).
    pub fn merged_hv_obs(&self) -> Option<HvObs> {
        let mut iter = self.trials.iter();
        let first = iter.next()?;
        let mut merged = HvObs::new(0, first.hv_obs.e2e_per_vm.len());
        merged.merge_histograms(&first.hv_obs);
        for t in iter {
            merged.merge_histograms(&t.hv_obs);
        }
        Some(merged)
    }

    /// NoC packet latency merged across trials.
    pub fn merged_noc_latency(&self) -> Histogram {
        let mut merged = Histogram::new();
        for t in &self.trials {
            merged.merge(&t.noc_latency);
        }
        merged
    }

    /// Indices of trials where folding the recorded event stream does not
    /// reproduce the live per-VM counter registry — empty when the
    /// trace/metrics cross-check holds across the battery.
    pub fn cross_check_violations(&self) -> Vec<usize> {
        self.trials
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                let vms = t.outcome.metrics.per_vm.len();
                let folded = CounterRegistry::from_events(vms, t.hv_obs.sink.iter());
                folded != t.outcome.metrics.registry() || t.hv_obs.sink.dropped() != 0
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// The collected outcomes of one sweep.
#[derive(Debug, Clone)]
pub struct ChaosSweepReport {
    /// The scenarios that ran, in order.
    pub scenarios: Vec<ChaosScenario>,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<ChaosOutcome>,
    /// Engine counters for the run.
    pub stats: EngineStats,
}

impl ChaosSweepReport {
    /// Indices of scenarios where a well-behaved VM missed a deadline —
    /// empty when the paper's isolation claim held across the battery.
    ///
    /// Device-stall plans are exempt: a stalled device is a *shared* fault,
    /// not VM misbehavior, and the guarantee there is graceful degradation
    /// plus bounded recovery (see [`Self::all_recovered_within`]), not zero
    /// misses.
    pub fn isolation_violations(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .zip(&self.scenarios)
            .enumerate()
            .filter(|(_, (o, s))| s.plan.device_stall_rate == 0.0 && !o.isolation_holds())
            .map(|(i, _)| i)
            .collect()
    }

    /// True when every trial that left Normal mode climbed back within
    /// `bound` slots of fault clearance.
    pub fn all_recovered_within(&self, bound: u64) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.recovery_slots.is_some_and(|r| r <= bound))
    }

    /// One-line-per-trial text rendering for the example binaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("trial  mode  mode-chg  completed  missed  throttled  isolation\n");
        for (i, (o, s)) in self.outcomes.iter().zip(&self.scenarios).enumerate() {
            let m = &o.metrics;
            let throttled: u64 = m.per_vm.iter().map(|v| v.throttled_submissions).sum();
            let isolation = if s.plan.device_stall_rate > 0.0 {
                "n/a (shared fault)"
            } else if o.isolation_holds() {
                "ok"
            } else {
                "VIOLATED"
            };
            out.push_str(&format!(
                "{i:>5}  {:>4}  {:>8}  {:>9}  {:>6}  {:>9}  {isolation}\n",
                o.final_mode_ordinal, o.mode_changes, m.completed, m.missed, throttled,
            ));
        }
        out
    }
}

/// A batch of fault-injected reconfiguration trials: configurations flip
/// mid-trial (stalls during drains, babbling VMs across boundaries,
/// back-to-back flips) while the exactly-once and bounded-drain
/// guarantees are checked per trial. Like [`ChaosSweep`], the outcome
/// vector is bit-identical at any thread count.
#[derive(Debug, Clone)]
pub struct ReconfigSweep {
    /// The scenarios, run as one engine batch.
    pub scenarios: Vec<ReconfigScenario>,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
}

impl ReconfigSweep {
    /// The standard mode-change battery: for each of `trials` seeds
    /// derived from `base_seed`, clean flips, flips under device stalls,
    /// flips with a babbling adversary, and back-to-back flips — four
    /// scenarios per seed.
    pub fn standard(base_seed: u64, trials: u64, threads: usize) -> Self {
        let mut scenarios = Vec::new();
        for trial in 0..trials {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(trial);
            scenarios.push(ReconfigScenario::new(FaultPlan::new(seed)));
            scenarios.push(ReconfigScenario::new(
                FaultPlan::new(seed).with_device_stalls(0.5, 48),
            ));
            let mut babble = ReconfigScenario::new(FaultPlan::new(seed).with_adversary(1, 6));
            babble.plan.malformed_rate = 0.2;
            scenarios.push(babble);
            let mut rapid = ReconfigScenario::new(FaultPlan::new(seed));
            rapid.flip_period = 2;
            rapid.horizon = 600;
            scenarios.push(rapid);
        }
        Self { scenarios, threads }
    }

    /// Runs every scenario through the engine and collects the outcomes
    /// in scenario order.
    ///
    /// # Errors
    ///
    /// Propagates the first scenario-construction error
    /// ([`ioguard_hypervisor::HvError`]); rejections and aborts during a
    /// trial are data, not failures.
    pub fn run(&self) -> Result<ReconfigSweepReport, ioguard_hypervisor::HvError> {
        let (results, stats) = run_indexed(self.threads, &self.scenarios, |_, s| s.run());
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }
        Ok(ReconfigSweepReport {
            scenarios: self.scenarios.clone(),
            outcomes,
            stats,
        })
    }
}

/// The collected outcomes of one reconfiguration sweep.
#[derive(Debug, Clone)]
pub struct ReconfigSweepReport {
    /// The scenarios that ran, in order.
    pub scenarios: Vec<ReconfigScenario>,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<ReconfigOutcome>,
    /// Engine counters for the run.
    pub stats: EngineStats,
}

impl ReconfigSweepReport {
    /// Indices of trials whose work-conservation totals do not balance —
    /// empty when the exactly-once guarantee held across the battery.
    pub fn conservation_violations(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.conserved)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of trials where a drain ran past its budget — empty when
    /// the bound was enforced across the battery.
    pub fn drain_bound_violations(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.drain_within_budget)
            .map(|(i, _)| i)
            .collect()
    }

    /// Completed switches summed over the battery.
    pub fn total_switches(&self) -> u64 {
        self.outcomes.iter().map(|o| o.switches).sum()
    }

    /// One-line-per-trial text rendering for the example binaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("trial  epochs  commits  rejects  aborts  max-drain  conserved\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let conserved = if o.conserved { "ok" } else { "VIOLATED" };
            out.push_str(&format!(
                "{i:>5}  {:>6}  {:>7}  {:>7}  {:>6}  {:>9}  {conserved}\n",
                o.epochs,
                o.commits,
                o.stage_rejects + o.commit_rejects,
                o.boundary_aborts,
                o.max_drain,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_battery_holds_isolation() {
        let report = ChaosSweep::standard(0xC4A05, 2, 1).run().unwrap();
        assert_eq!(report.outcomes.len(), 8);
        assert_eq!(report.isolation_violations(), Vec::<usize>::new());
        assert!(report.all_recovered_within(16 * 32));
    }

    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let single = ChaosSweep::standard(7, 2, 1).run().unwrap();
        let multi = ChaosSweep::standard(7, 2, 4).run().unwrap();
        assert_eq!(single.outcomes, multi.outcomes);
    }

    #[test]
    fn render_flags_every_trial() {
        let report = ChaosSweep::standard(3, 1, 1).run().unwrap();
        let text = report.render();
        assert_eq!(text.lines().count(), 1 + report.outcomes.len());
        assert!(text.contains("ok"));
    }

    #[test]
    fn reconfig_battery_conserves_and_bounds_drains() {
        let report = ReconfigSweep::standard(0xF11B, 1, 1).run().unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.conservation_violations(), Vec::<usize>::new());
        assert_eq!(report.drain_bound_violations(), Vec::<usize>::new());
        assert!(report.total_switches() > 0, "{:?}", report.outcomes);
        let text = report.render();
        assert_eq!(text.lines().count(), 1 + report.outcomes.len());
    }

    #[test]
    fn reconfig_sweep_is_bit_identical_across_thread_counts() {
        let single = ReconfigSweep::standard(9, 2, 1).run().unwrap();
        let multi = ReconfigSweep::standard(9, 2, 4).run().unwrap();
        assert_eq!(single.outcomes, multi.outcomes);
    }
}
