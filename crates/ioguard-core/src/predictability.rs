//! Predictability experiment: response-latency distributions.
//!
//! The paper's abstract promises "time-predictability and performance …
//! simultaneously"; Sec. V examines predictability through the case study's
//! variance remarks. This module measures it directly: drive each system
//! with the same periodic workload and record the *distribution* of
//! response latencies of one probe task. A predictable system shows a
//! narrow distribution (small p99 − p50); FIFO systems under load show a
//! heavy tail.

use serde::{Deserialize, Serialize};

use ioguard_baselines::platform::{IoPlatform, PlatformJob};
use ioguard_sim::stats::Histogram;

use crate::casestudy::SystemUnderTest;
use ioguard_baselines::bluevisor::BlueVisorPlatform;
use ioguard_baselines::ioguard::IoGuardPlatform;
use ioguard_baselines::legacy::LegacyPlatform;
use ioguard_baselines::rtxen::RtXenPlatform;
use ioguard_hypervisor::gsched::GschedPolicy;

/// Configuration of the latency-profile experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictabilityConfig {
    /// Probe task period in slots.
    pub probe_period: u64,
    /// Probe task service demand in slots.
    pub probe_wcet: u64,
    /// Number of background (interfering) tasks.
    pub background_tasks: u64,
    /// Background task service demand in slots.
    pub background_wcet: u64,
    /// Background release period in slots.
    pub background_period: u64,
    /// Horizon in slots.
    pub horizon: u64,
    /// Seed for the platform's internal jitter models.
    pub seed: u64,
}

impl Default for PredictabilityConfig {
    fn default() -> Self {
        Self {
            probe_period: 100,
            probe_wcet: 2,
            background_tasks: 6,
            background_wcet: 12,
            background_period: 100,
            horizon: 40_000,
            seed: 7,
        }
    }
}

/// Latency profile of one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// System label.
    pub system: String,
    /// Median latency of the probe task, in slots.
    pub p50: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// Worst observed latency.
    pub max: f64,
    /// Probe jobs that missed their (period-implicit) deadline.
    pub missed: u64,
}

impl LatencyProfile {
    /// Jitter proxy: p99 − p50 (slots). Small = predictable.
    pub fn spread(&self) -> f64 {
        self.p99 - self.p50
    }
}

fn build(system: SystemUnderTest, vms: usize, seed: u64) -> Box<dyn IoPlatform> {
    match system {
        SystemUnderTest::Legacy => Box::new(LegacyPlatform::new(vms, seed)),
        SystemUnderTest::RtXen => Box::new(RtXenPlatform::new(vms, seed)),
        SystemUnderTest::BlueVisor => Box::new(BlueVisorPlatform::new(vms, seed)),
        SystemUnderTest::IoGuard { .. } | SystemUnderTest::IoGuardServerIsolated { .. } => {
            Box::new(
                IoGuardPlatform::new(vms, vec![], GschedPolicy::GlobalEdf)
                    .expect("no pre-defined tasks: always constructible"),
            )
        }
    }
}

/// Runs the latency-profile experiment for one system.
///
/// The probe task (VM 0) releases every `probe_period` slots; background
/// tasks (VM 1) release *bulk* jobs in the same phase — the adversarial
/// pattern where FIFO queues head-of-line-block the probe.
pub fn latency_profile(system: SystemUnderTest, config: &PredictabilityConfig) -> LatencyProfile {
    let mut platform = build(system, 2, config.seed);
    // Probe completions are identified exactly by a byte signature: probe
    // responses are 64 B, background responses 256 B, and at most one job
    // completes per slot on the single shared device — so each step's
    // `response_bytes` delta names the completing job class. Probe jobs
    // complete in release order in every discipline (equal relative
    // deadlines), so the oldest outstanding release matches.
    const PROBE_BYTES: u64 = 64;
    let mut hist = Histogram::new(0.0, 4.0 * config.probe_period as f64, 400);
    let mut id = 1u64;
    let mut prev_bytes = 0u64;
    let mut prev_missed = 0u64;
    let mut outstanding: std::collections::VecDeque<u64> = std::collections::VecDeque::new();

    // The probe releases a few slots after each background burst, so in a
    // FIFO it queues behind the bulk jobs (head-of-line blocking); a
    // preemptive scheduler serves it immediately regardless.
    let probe_phase = 4 % config.probe_period;
    for slot in 0..config.horizon {
        if slot % config.probe_period == probe_phase {
            platform.submit(PlatformJob::new(
                0,
                id,
                slot,
                config.probe_wcet,
                slot + config.probe_period,
                PROBE_BYTES as u32,
                true,
            ));
            outstanding.push_back(slot);
            id += 1;
        }
        if slot % config.background_period == 0 {
            for _ in 0..config.background_tasks {
                platform.submit(PlatformJob::new(
                    1,
                    id,
                    slot,
                    config.background_wcet,
                    slot + 4 * config.background_period,
                    256,
                    false,
                ));
                id += 1;
            }
        }
        platform.step();
        let m = platform.metrics();
        if m.response_bytes - prev_bytes == PROBE_BYTES {
            if let Some(rel) = outstanding.pop_front() {
                hist.record((slot + 1 - rel) as f64);
            }
        }
        // A probe that expired inside an I/O pool never completes; drop its
        // release so later completions align (only the proposed system
        // expires jobs — FIFO devices finish late instead).
        while m.critical_missed > prev_missed {
            prev_missed += 1;
            if m.response_bytes - prev_bytes != PROBE_BYTES {
                outstanding.pop_front();
            }
        }
        prev_bytes = m.response_bytes;
    }

    let m = platform.metrics();
    LatencyProfile {
        system: system.label(),
        p50: hist.quantile(0.5).unwrap_or(f64::NAN),
        p99: hist.quantile(0.99).unwrap_or(f64::NAN),
        max: hist.quantile(1.0).unwrap_or(f64::NAN),
        missed: m.critical_missed,
    }
}

/// Runs the experiment for the standard lineup (without the pre-load
/// variants — predictability is a channel property, not a table property).
pub fn latency_profiles(config: &PredictabilityConfig) -> Vec<LatencyProfile> {
    [
        SystemUnderTest::Legacy,
        SystemUnderTest::RtXen,
        SystemUnderTest::BlueVisor,
        SystemUnderTest::IoGuard { preload_pct: 0 },
    ]
    .into_iter()
    .map(|s| latency_profile(s, config))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> PredictabilityConfig {
        PredictabilityConfig {
            horizon: 10_000,
            ..PredictabilityConfig::default()
        }
    }

    #[test]
    fn ioguard_probe_latency_is_tight() {
        let p = latency_profile(SystemUnderTest::IoGuard { preload_pct: 0 }, &quick_config());
        // The probe preempts background bulk jobs: latency ≈ service time.
        assert_eq!(p.missed, 0, "{p:?}");
        assert!(p.p99 <= 16.0, "{p:?}");
        assert!(p.spread() <= 12.0, "{p:?}");
    }

    #[test]
    fn fifo_probe_latency_has_heavy_tail() {
        let p = latency_profile(SystemUnderTest::BlueVisor, &quick_config());
        // Head-of-line blocking behind 6 × 12-slot bulk jobs.
        assert!(p.p99 > 30.0, "{p:?}");
    }

    #[test]
    fn ioguard_beats_all_baselines_on_spread() {
        let profiles = latency_profiles(&quick_config());
        let iog = profiles.last().expect("lineup is non-empty");
        assert!(iog.system.starts_with("I/O-GUARD"));
        for other in &profiles[..profiles.len() - 1] {
            assert!(
                iog.spread() <= other.spread(),
                "{} spread {} vs I/O-GUARD {}",
                other.system,
                other.spread(),
                iog.spread()
            );
            assert!(iog.p99 <= other.p99, "{other:?}");
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = latency_profile(SystemUnderTest::Legacy, &quick_config());
        let b = latency_profile(SystemUnderTest::Legacy, &quick_config());
        assert_eq!(a, b);
    }
}
