//! The automotive case study (Sec. V-C, Fig. 7).
//!
//! One *trial* generates the 40-task automotive suite plus synthetic filler
//! at a target utilization, gives every task a random initial phase, and
//! drives one system with the resulting periodic job stream for a fixed
//! horizon. A trial *succeeds* when no safety or function task misses a
//! deadline; *throughput* is the rate of on-time response bytes. A *point*
//! repeats trials over seeds; the full *figure* sweeps systems ×
//! utilizations × VM-group sizes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::engine::{self, EngineStats};

use ioguard_baselines::bluevisor::BlueVisorPlatform;
use ioguard_baselines::ioguard::IoGuardPlatform;
use ioguard_baselines::legacy::LegacyPlatform;
use ioguard_baselines::platform::{IoPlatform, PlatformJob};
use ioguard_baselines::rtxen::RtXenPlatform;
use ioguard_hypervisor::gsched::GschedPolicy;
use ioguard_hypervisor::pchannel::PredefinedTask;
use ioguard_sim::rng::{SplitMix64, Xoshiro256StarStar};
use ioguard_sim::stats::OnlineStats;
use ioguard_workload::generator::{TrialConfig, TrialWorkload};
use ioguard_workload::suites::SLOT_MICROS;

/// Actual per-job execution time as a fraction of the task's measured WCET:
/// hybrid-measurement WCETs are conservative, so jobs usually finish early.
/// Sampled uniformly in `[ACTUAL_EXEC_MIN, 1.0]` per job, identically for
/// every system under test.
const ACTUAL_EXEC_MIN: f64 = 0.90;

/// Which system a trial drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemUnderTest {
    /// BS|Legacy.
    Legacy,
    /// BS|RT-XEN.
    RtXen,
    /// BS|BV.
    BlueVisor,
    /// I/O-GUARD-x: `preload_pct`% of tasks pre-loaded into the P-channel.
    IoGuard {
        /// Percentage of tasks executed by the P-channel (the paper uses
        /// 40 and 70).
        preload_pct: u8,
    },
    /// Ablation: I/O-GUARD with the server-based G-Sched instead of global
    /// EDF (hard inter-VM isolation; slightly lower raw schedulability).
    IoGuardServerIsolated {
        /// P-channel preload percentage.
        preload_pct: u8,
    },
}

impl SystemUnderTest {
    /// The five systems of Fig. 7, in plot order.
    pub fn figure7_lineup() -> Vec<SystemUnderTest> {
        vec![
            SystemUnderTest::Legacy,
            SystemUnderTest::RtXen,
            SystemUnderTest::BlueVisor,
            SystemUnderTest::IoGuard { preload_pct: 40 },
            SystemUnderTest::IoGuard { preload_pct: 70 },
        ]
    }

    /// Display label matching the paper.
    pub fn label(&self) -> String {
        match self {
            SystemUnderTest::Legacy => "BS|Legacy".into(),
            SystemUnderTest::RtXen => "BS|RT-XEN".into(),
            SystemUnderTest::BlueVisor => "BS|BV".into(),
            SystemUnderTest::IoGuard { preload_pct } => format!("I/O-GUARD-{preload_pct}"),
            SystemUnderTest::IoGuardServerIsolated { preload_pct } => {
                format!("I/O-GUARD-{preload_pct}-srv")
            }
        }
    }
}

/// Outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// True when no critical task missed a deadline.
    pub success: bool,
    /// On-time response throughput in Mbit/s.
    pub throughput_mbps: f64,
    /// Critical misses observed.
    pub critical_misses: u64,
    /// All misses observed.
    pub misses: u64,
}

/// Runs one trial of `system` on `workload` for `horizon_slots`.
///
/// Release phases are deterministic in `phase_seed`, and the same job
/// stream (ids, phases, payloads) is offered to every system — the paper's
/// "identical data input" guarantee.
pub fn run_trial(
    system: SystemUnderTest,
    workload: &TrialWorkload,
    phase_seed: u64,
    horizon_slots: u64,
) -> TrialOutcome {
    let vms = workload.config().vms;
    // Deterministic per-task initial phases in [0, T).
    let mut phase_rng = Xoshiro256StarStar::new(SplitMix64::new(phase_seed).derive(0xFA5E));
    let phases: Vec<u64> = workload
        .tasks()
        .iter()
        .map(|t| phase_rng.range_u64(0, t.task.period()))
        .collect();

    // Which tasks run from the P-channel (I/O-GUARD only)?
    let (preload_names, policy) = match system {
        SystemUnderTest::IoGuard { preload_pct } => {
            let (pre, _) = workload.split_preload(preload_pct as f64 / 100.0);
            (
                pre.iter().map(|t| t.name.clone()).collect::<Vec<_>>(),
                GschedPolicy::GlobalEdf,
            )
        }
        SystemUnderTest::IoGuardServerIsolated { preload_pct } => {
            let (pre, _) = workload.split_preload(preload_pct as f64 / 100.0);
            // Equal-share servers over the expected free fraction: period
            // 100 slots (the fastest task period), budget split evenly with
            // a small safety margin.
            let free = (1.0 - pre.iter().map(|t| t.task.utilization()).sum::<f64>()).max(0.05);
            let budget = ((free * 100.0 / vms as f64).floor() as u64).max(1);
            let servers = (0..vms)
                .map(|_| {
                    ioguard_sched::task::PeriodicServer::new(100, budget.min(100))
                        .expect("1 ≤ budget ≤ 100")
                })
                .collect();
            (
                pre.iter().map(|t| t.name.clone()).collect::<Vec<_>>(),
                GschedPolicy::ServerBased(servers),
            )
        }
        _ => (Vec::new(), GschedPolicy::GlobalEdf),
    };

    let mut platform: Box<dyn IoPlatform> = match system {
        SystemUnderTest::Legacy => Box::new(LegacyPlatform::new(vms, phase_seed)),
        SystemUnderTest::RtXen => Box::new(RtXenPlatform::new(vms, phase_seed)),
        SystemUnderTest::BlueVisor => Box::new(BlueVisorPlatform::new(vms, phase_seed)),
        SystemUnderTest::IoGuard { .. } | SystemUnderTest::IoGuardServerIsolated { .. } => {
            match build_ioguard(workload, &preload_names, policy, phase_seed) {
                Ok(p) => Box::new(p),
                Err(_) => {
                    // The P-channel cannot host this pre-load (overloaded
                    // sampled WCETs): the trial fails outright.
                    return TrialOutcome {
                        success: false,
                        throughput_mbps: 0.0,
                        critical_misses: u64::MAX,
                        misses: u64::MAX,
                    };
                }
            }
        }
    };

    // Drive the periodic job stream. Pre-loaded tasks execute autonomously
    // inside the P-channel. Releases are drawn from a calendar heap keyed
    // `(release slot, task index)` rather than re-testing every task every
    // slot: a slot with no release costs one heap peek, and within a slot
    // releases pop in ascending task index — the same order the full scan
    // produced, so job ids (and hence jitter draws) are unchanged.
    let mut calendar: BinaryHeap<Reverse<(u64, usize)>> = workload
        .tasks()
        .iter()
        .enumerate()
        .filter(|(_, t)| !preload_names.contains(&t.name))
        .map(|(idx, _)| Reverse((phases[idx], idx)))
        .collect();
    let mut next_job_id = 1u64;
    for slot in 0..horizon_slots {
        while let Some(&Reverse((release, idx))) = calendar.peek() {
            if release > slot {
                break;
            }
            calendar.pop();
            let task = &workload.tasks()[idx];
            // Per-job actual execution time (deterministic in the ids).
            let frac = ACTUAL_EXEC_MIN
                + (1.0 - ACTUAL_EXEC_MIN)
                    * (ioguard_baselines::platform::job_jitter(
                        phase_seed ^ 0xEC,
                        next_job_id,
                        slot,
                        1024,
                    ) as f64
                        / 1024.0);
            let actual = ((task.task.wcet() as f64 * frac).round() as u64).max(1);
            platform.submit(PlatformJob::new(
                task.vm,
                next_job_id,
                slot,
                actual,
                slot + task.task.deadline(),
                task.response_bytes,
                task.is_critical(),
            ));
            next_job_id += 1;
            calendar.push(Reverse((release + task.task.period(), idx)));
        }
        platform.step();
    }

    let m = platform.metrics();
    let sim_seconds = horizon_slots as f64 * SLOT_MICROS as f64 / 1e6;
    TrialOutcome {
        success: m.trial_success(),
        throughput_mbps: m.on_time_bytes as f64 * 8.0 / sim_seconds / 1e6,
        critical_misses: m.critical_missed,
        misses: m.missed,
    }
}

/// Builds the I/O-GUARD platform for a workload, pre-loading the named
/// tasks. An infeasible pre-load (the sampled WCETs overflow the table) is
/// a construction error — the caller records the trial as failed, exactly
/// as the real system would refuse the configuration at initialization.
fn build_ioguard(
    workload: &TrialWorkload,
    preload_names: &[String],
    policy: GschedPolicy,
    phase_seed: u64,
) -> Result<IoGuardPlatform, ioguard_hypervisor::HvError> {
    let vms = workload.config().vms;
    let predefined: Vec<PredefinedTask> = workload
        .tasks()
        .iter()
        .enumerate()
        .filter(|(_, t)| preload_names.contains(&t.name))
        .map(|(idx, t)| PredefinedTask {
            task_id: idx as u64 + 1,
            vm: t.vm,
            task: t.task,
            response_bytes: t.response_bytes,
            // Stagger start times across the period so table occupancy is
            // flat and free slots stay evenly available to the R-channel.
            start_offset: (idx as u64).wrapping_mul(0x9E37_79B9) % t.task.period(),
        })
        .collect();
    // Pre-defined jobs show the same conservative-WCET behaviour as
    // run-time jobs; early completions release their residual slots.
    IoGuardPlatform::with_reclaim(
        vms,
        predefined,
        policy,
        ioguard_hypervisor::hypervisor::PchannelReclaim {
            seed: phase_seed ^ 0xEC2,
            min_fraction: ACTUAL_EXEC_MIN,
        },
    )
}

/// One experiment point: a (system, VM count, utilization) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyPoint {
    /// System to drive.
    pub system: SystemUnderTest,
    /// Number of active VMs (4 or 8 in the paper).
    pub vms: usize,
    /// Target utilization.
    pub target_utilization: f64,
    /// Number of trials (the paper runs 1000; examples default lower).
    pub trials: u64,
    /// Base seed; trial `i` uses a derived stream.
    pub seed: u64,
    /// Trial length in slots (16 000 slots = one suite hyper-period
    /// = 0.8 s simulated).
    pub horizon_slots: u64,
}

/// Aggregated result of one point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Fraction of trials with zero critical misses.
    pub success_ratio: f64,
    /// Mean on-time throughput over trials, Mbit/s.
    pub throughput_mbps: f64,
    /// Standard deviation of the throughput across trials.
    pub throughput_std: f64,
}

impl CaseStudyPoint {
    /// Runs all trials of this point in order on the calling thread.
    ///
    /// This is the reference path: [`Fig7Report::run`] distributes the same
    /// trials over the work-stealing engine and aggregates them in the same
    /// trial order, so both paths produce bit-identical summaries.
    pub fn run(&self) -> PointSummary {
        let root = SplitMix64::new(self.seed);
        let mut successes = 0u64;
        let mut tp = OnlineStats::new();
        for trial in 0..self.trials {
            let trial_seed = root.derive(trial + 1);
            let workload = TrialWorkload::generate(&TrialConfig::new(
                self.vms,
                self.target_utilization,
                trial_seed,
            ));
            let outcome = run_trial(self.system, &workload, trial_seed, self.horizon_slots);
            if outcome.success {
                successes += 1;
            }
            tp.push(outcome.throughput_mbps);
        }
        PointSummary {
            success_ratio: successes as f64 / self.trials.max(1) as f64,
            throughput_mbps: tp.mean(),
            throughput_std: tp.std_dev(),
        }
    }
}

/// Full Fig. 7 sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyConfig {
    /// VM group sizes (the paper: 4 and 8).
    pub vm_groups: Vec<usize>,
    /// Target utilizations (the paper: 0.40..=1.00 step 0.05).
    pub utilizations: Vec<f64>,
    /// Trials per point.
    pub trials: u64,
    /// Base seed.
    pub seed: u64,
    /// Trial horizon in slots.
    pub horizon_slots: u64,
    /// Systems to include.
    pub systems: Vec<SystemUnderTest>,
}

impl CaseStudyConfig {
    /// The paper's sweep with a reduced trial count (the full 1000-trial
    /// sweep is run by the bench harness).
    pub fn paper_shape(trials: u64) -> Self {
        Self {
            vm_groups: vec![4, 8],
            utilizations: (0..=12).map(|i| 0.40 + 0.05 * i as f64).collect(),
            trials,
            seed: 2021,
            horizon_slots: 16_000,
            systems: SystemUnderTest::figure7_lineup(),
        }
    }
}

/// One rendered cell of the Fig. 7 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Cell {
    /// System.
    pub system: SystemUnderTest,
    /// VM group size.
    pub vms: usize,
    /// Target utilization.
    pub target_utilization: f64,
    /// Aggregates.
    pub summary: PointSummary,
}

/// The full Fig. 7 data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Report {
    /// All cells, ordered (vm group, system, utilization).
    pub cells: Vec<Fig7Cell>,
}

impl Fig7Report {
    /// Runs the whole sweep on all available cores. See
    /// [`Fig7Report::run_with_threads`].
    pub fn run(config: &CaseStudyConfig) -> Self {
        Self::run_with_threads(config, 0)
    }

    /// Runs the whole sweep on `threads` workers (`0` = all cores).
    pub fn run_with_threads(config: &CaseStudyConfig, threads: usize) -> Self {
        Self::run_instrumented(config, threads).0
    }

    /// Runs the sweep and also returns the engine counters (trial count,
    /// steals, per-trial timing) for throughput reporting.
    ///
    /// Work is scheduled at *(system, trial)* granularity on the
    /// work-stealing engine, one `(vms, utilization)` group at a time. Each
    /// group generates its trial workloads once and shares them (via `Arc`)
    /// across all systems — the sequential path regenerates the identical
    /// workload per system from the same `(vms, utilization, trial_seed)`
    /// triple, so sharing changes nothing but the work done. Outcomes are
    /// scattered back into `(system, trial)` order and aggregated in trial
    /// order, making the report bit-identical for every thread count.
    pub fn run_instrumented(config: &CaseStudyConfig, threads: usize) -> (Self, EngineStats) {
        let root = SplitMix64::new(config.seed);
        let trial_seeds: Vec<u64> = (0..config.trials).map(|t| root.derive(t + 1)).collect();
        let n_systems = config.systems.len();
        let n_utils = config.utilizations.len();
        let trials = trial_seeds.len();

        // Cells ordered (vm group, system, utilization), as documented.
        let total = config.vm_groups.len() * n_systems * n_utils;
        let mut cells: Vec<Option<Fig7Cell>> = (0..total).map(|_| None).collect();
        let mut stats = EngineStats::default();

        for (gi, &vms) in config.vm_groups.iter().enumerate() {
            for (ui, &u) in config.utilizations.iter().enumerate() {
                // One workload per trial, shared by every system.
                let (workloads, gen_stats) =
                    engine::run_indexed(threads, &trial_seeds, |_, &seed| {
                        Arc::new(TrialWorkload::generate(&TrialConfig::new(vms, u, seed)))
                    });
                stats.absorb(&gen_stats);

                let units: Vec<(usize, usize)> = (0..n_systems)
                    .flat_map(|si| (0..trials).map(move |ti| (si, ti)))
                    .collect();
                let (outcomes, run_stats) = engine::run_indexed(threads, &units, |_, &(si, ti)| {
                    run_trial(
                        config.systems[si],
                        &workloads[ti],
                        trial_seeds[ti],
                        config.horizon_slots,
                    )
                });
                stats.absorb(&run_stats);

                for (si, &system) in config.systems.iter().enumerate() {
                    let mut successes = 0u64;
                    let mut tp = OnlineStats::new();
                    for outcome in &outcomes[si * trials..(si + 1) * trials] {
                        if outcome.success {
                            successes += 1;
                        }
                        tp.push(outcome.throughput_mbps);
                    }
                    cells[(gi * n_systems + si) * n_utils + ui] = Some(Fig7Cell {
                        system,
                        vms,
                        target_utilization: u,
                        summary: PointSummary {
                            success_ratio: successes as f64 / config.trials.max(1) as f64,
                            throughput_mbps: tp.mean(),
                            throughput_std: tp.std_dev(),
                        },
                    });
                }
            }
        }
        let report = Self {
            cells: cells
                .into_iter()
                .map(|c| c.expect("every sweep cell filled"))
                .collect(),
        };
        (report, stats)
    }

    /// Cells of one (vms, system) series in utilization order.
    pub fn series(&self, vms: usize, system: SystemUnderTest) -> Vec<&Fig7Cell> {
        self.cells
            .iter()
            .filter(|c| c.vms == vms && c.system == system)
            .collect()
    }

    /// Exports the report as CSV (one row per cell), ready for plotting:
    /// `system,vms,target_utilization,success_ratio,throughput_mbps,throughput_std`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "system,vms,target_utilization,success_ratio,throughput_mbps,throughput_std
",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{:.2},{:.4},{:.4},{:.4}
",
                c.system.label(),
                c.vms,
                c.target_utilization,
                c.summary.success_ratio,
                c.summary.throughput_mbps,
                c.summary.throughput_std,
            ));
        }
        out
    }
}

impl fmt::Display for Fig7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut vm_groups: Vec<usize> = self.cells.iter().map(|c| c.vms).collect();
        vm_groups.sort_unstable();
        vm_groups.dedup();
        let mut systems: Vec<SystemUnderTest> = Vec::new();
        for c in &self.cells {
            if !systems.contains(&c.system) {
                systems.push(c.system);
            }
        }
        for vms in vm_groups {
            writeln!(
                f,
                "== {vms}-VM group: success ratio (top), throughput Mbit/s (bottom) =="
            )?;
            let utils: Vec<f64> = {
                let mut u: Vec<f64> = self
                    .cells
                    .iter()
                    .filter(|c| c.vms == vms)
                    .map(|c| c.target_utilization)
                    .collect();
                u.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                u.dedup();
                u
            };
            write!(f, "{:<16}", "util →")?;
            for u in &utils {
                write!(f, " {:>6.0}%", u * 100.0)?;
            }
            writeln!(f)?;
            for &system in &systems {
                let series = self.series(vms, system);
                write!(f, "{:<16}", system.label())?;
                for cell in &series {
                    write!(f, " {:>6.2} ", cell.summary.success_ratio)?;
                }
                writeln!(f)?;
                write!(f, "{:<16}", "")?;
                for cell in &series {
                    write!(f, " {:>6.1} ", cell.summary.throughput_mbps)?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point(system: SystemUnderTest, util: f64) -> PointSummary {
        CaseStudyPoint {
            system,
            vms: 4,
            target_utilization: util,
            trials: 4,
            seed: 7,
            horizon_slots: 8_000,
        }
        .run()
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemUnderTest::Legacy.label(), "BS|Legacy");
        assert_eq!(
            SystemUnderTest::IoGuard { preload_pct: 70 }.label(),
            "I/O-GUARD-70"
        );
        assert_eq!(SystemUnderTest::figure7_lineup().len(), 5);
    }

    #[test]
    fn all_systems_succeed_at_base_utilization() {
        // At the 40% base load every system should be comfortable.
        for system in SystemUnderTest::figure7_lineup() {
            let s = quick_point(system, 0.40);
            assert!(
                s.success_ratio >= 0.75,
                "{} at 40%: {:?}",
                system.label(),
                s
            );
        }
    }

    #[test]
    fn ioguard70_survives_high_utilization_better_than_fifo_baselines() {
        let iog = quick_point(SystemUnderTest::IoGuard { preload_pct: 70 }, 0.90);
        let bv = quick_point(SystemUnderTest::BlueVisor, 0.90);
        let xen = quick_point(SystemUnderTest::RtXen, 0.90);
        assert!(
            iog.success_ratio >= bv.success_ratio,
            "iog {iog:?} vs bv {bv:?}"
        );
        assert!(
            iog.success_ratio >= xen.success_ratio,
            "iog {iog:?} vs xen {xen:?}"
        );
    }

    #[test]
    fn trials_are_deterministic() {
        let a = quick_point(SystemUnderTest::BlueVisor, 0.7);
        let b = quick_point(SystemUnderTest::BlueVisor, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_input_offered_to_all_systems() {
        // The same workload + phase seed yields the same job stream; verify
        // via equal *offered* load accounting: run two FIFO-family systems
        // and compare total jobs seen (completed + missed + queued tail).
        let workload = TrialWorkload::generate(&TrialConfig::new(4, 0.5, 99));
        let a = run_trial(SystemUnderTest::BlueVisor, &workload, 99, 4000);
        let b = run_trial(SystemUnderTest::BlueVisor, &workload, 99, 4000);
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_and_indexes() {
        let config = CaseStudyConfig {
            vm_groups: vec![2],
            utilizations: vec![0.4, 0.6],
            trials: 2,
            seed: 3,
            horizon_slots: 4000,
            systems: vec![
                SystemUnderTest::BlueVisor,
                SystemUnderTest::IoGuard { preload_pct: 40 },
            ],
        };
        let report = Fig7Report::run(&config);
        assert_eq!(report.cells.len(), 4);
        let series = report.series(2, SystemUnderTest::BlueVisor);
        assert_eq!(series.len(), 2);
        assert!(series[0].target_utilization < series[1].target_utilization);
        let text = format!("{report}");
        assert!(text.contains("BS|BV"));
        assert!(text.contains("I/O-GUARD-40"));
        assert!(text.contains("2-VM group"));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 1 + report.cells.len());
        assert!(csv.starts_with("system,vms"));
        assert!(csv.contains("BS|BV,2,0.40,"));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_single_threaded() {
        let config = CaseStudyConfig {
            vm_groups: vec![3],
            utilizations: vec![0.5, 0.8],
            trials: 3,
            seed: 11,
            horizon_slots: 3000,
            systems: vec![
                SystemUnderTest::Legacy,
                SystemUnderTest::BlueVisor,
                SystemUnderTest::IoGuard { preload_pct: 40 },
                SystemUnderTest::IoGuardServerIsolated { preload_pct: 40 },
            ],
        };
        let parallel = Fig7Report::run_with_threads(&config, 4);
        let forced_sequential = Fig7Report::run_with_threads(&config, 1);
        // f64 PartialEq: bit-identical, not approximately equal.
        assert_eq!(parallel, forced_sequential);
        // The engine path also matches the per-point reference path, which
        // regenerates each workload instead of sharing it.
        for cell in &parallel.cells {
            let point = CaseStudyPoint {
                system: cell.system,
                vms: cell.vms,
                target_utilization: cell.target_utilization,
                trials: config.trials,
                seed: config.seed,
                horizon_slots: config.horizon_slots,
            };
            assert_eq!(point.run(), cell.summary, "{}", cell.system.label());
        }
    }

    #[test]
    fn shared_workload_matches_regenerated_workload() {
        // The sweep generates one workload per (vms, utilization, seed) and
        // shares it across systems; a trial on the shared instance must
        // equal a trial on a fresh generation.
        let shared = Arc::new(TrialWorkload::generate(&TrialConfig::new(4, 0.7, 123)));
        let fresh = TrialWorkload::generate(&TrialConfig::new(4, 0.7, 123));
        for system in SystemUnderTest::figure7_lineup() {
            assert_eq!(
                run_trial(system, &shared, 123, 2000),
                run_trial(system, &fresh, 123, 2000),
                "{}",
                system.label()
            );
        }
    }

    #[test]
    fn throughput_grows_with_utilization_when_meeting_deadlines() {
        let low = quick_point(SystemUnderTest::IoGuard { preload_pct: 70 }, 0.40);
        let high = quick_point(SystemUnderTest::IoGuard { preload_pct: 70 }, 0.70);
        assert!(
            high.throughput_mbps > low.throughput_mbps,
            "low {low:?} high {high:?}"
        );
    }
}
