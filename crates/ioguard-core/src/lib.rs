//! # I/O-GUARD — hardware/software co-designed real-time I/O virtualization
//!
//! This is the top-level crate of the I/O-GUARD reproduction (Jiang et al.,
//! DAC 2021). It assembles the substrates into the systems the paper
//! evaluates and provides one driver per published experiment:
//!
//! * [`casestudy`] — the automotive case study (Fig. 7): success ratio and
//!   I/O throughput of Legacy / RT-Xen / BlueVisor / I/O-GUARD-40 /
//!   I/O-GUARD-70 across target utilizations and VM counts.
//! * [`experiments`] — drivers and text renderers for Fig. 6 (software
//!   overhead), Table I (hardware overhead), Fig. 8 (scalability) and the
//!   Sec. IV schedulability-analysis experiments.
//! * [`engine`] — the work-stealing experiment engine the case study runs
//!   on: deterministic results at any thread count.
//! * [`chaos`] — the robustness battery: fault-plan sweeps (adversarial
//!   VMs, lossy NoCs, stalling devices) asserting the isolation claim,
//!   plus reconfiguration sweeps that flip the VM population mid-trial
//!   and assert exactly-once dispatch with bounded drains.
//! * [`observe`] — canonical observed runs for the `ioguard-obs` layer:
//!   deterministic golden traces and the `OBS_snapshot.json` composer
//!   behind the `trace-export` binary.
//! * [`prelude`] — the commonly used types re-exported in one place.
//!
//! ## Quickstart
//!
//! ```
//! use ioguard_core::casestudy::{CaseStudyPoint, SystemUnderTest};
//!
//! // One experiment point: 4 VMs at 60% target utilization, 5 trials.
//! let point = CaseStudyPoint {
//!     system: SystemUnderTest::IoGuard { preload_pct: 70 },
//!     vms: 4,
//!     target_utilization: 0.60,
//!     trials: 5,
//!     seed: 42,
//!     horizon_slots: 16_000,
//! };
//! let summary = point.run();
//! assert!(summary.success_ratio >= 0.99, "I/O-GUARD-70 holds at 60%");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod chaos;
pub mod engine;
pub mod experiments;
pub mod observe;
pub mod predictability;

/// Commonly used types, re-exported.
pub mod prelude {
    pub use crate::casestudy::{
        CaseStudyConfig, CaseStudyPoint, Fig7Report, PointSummary, SystemUnderTest,
    };
    pub use crate::chaos::{
        ChaosSweep, ChaosSweepReport, ObservedSweepReport, ReconfigSweep, ReconfigSweepReport,
    };
    pub use crate::engine::{run_indexed, run_indexed_profiled, EngineStats};
    pub use crate::experiments::{fig6_report, fig8_report, table1_report};
    pub use crate::observe::{
        chaos_observed, end_to_end_observed, reconfig_observed, render_reconfig_trace,
        render_trace, ObservedReconfig, ObservedRun,
    };
    pub use crate::predictability::{latency_profiles, PredictabilityConfig};
    pub use ioguard_baselines::platform::{IoPlatform, PlatformJob, PlatformMetrics};
    pub use ioguard_hypervisor::{Hypervisor, HypervisorParams, RtJob};
    pub use ioguard_reconfig::{ReconfigController, ReconfigTotals, StagedConfig};
    pub use ioguard_rtos::{IoPath, SoftwareLayer};
    pub use ioguard_sched::{
        PeriodicServer, SporadicTask, TaskSet, TimeSlotTable, TwoLayerAnalysis,
    };
    pub use ioguard_workload::{TrialConfig, TrialWorkload};
}
