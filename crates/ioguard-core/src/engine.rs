//! Work-stealing experiment engine.
//!
//! The Fig. 7 sweep runs thousands of independent trials whose durations
//! vary wildly — an overloaded Legacy trial floods its FIFOs and takes many
//! times longer than an I/O-GUARD trial at base load. Static chunking
//! (splitting the task list up front, one chunk per thread) leaves every
//! other core idle while the unlucky chunk finishes; this engine instead
//! schedules at *task* granularity with work stealing, so the wall clock
//! tracks total work divided by core count.
//!
//! Design:
//!
//! * Each worker owns a deque of task indices, seeded round-robin. It pops
//!   from the front of its own deque and, when empty, steals the back half
//!   of a victim's deque — the classic stealing split that moves bulk work
//!   once instead of an index at a time.
//! * Results carry their task index and are scattered back into input
//!   order, so the output is **independent of the interleaving**: callers
//!   aggregate in a fixed order and get bit-identical summaries whether the
//!   run used one thread or sixteen.
//! * `threads == 1` runs inline on the caller's thread — no spawn, same
//!   results, which the determinism tests exploit.
//!
//! Per-worker timing is accumulated in [`OnlineStats`] and combined with
//! [`OnlineStats::merge`], the parallel-reduction path the statistics
//! module provides exactly for this purpose.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ioguard_obs::Profiler;
use ioguard_sim::stats::OnlineStats;

/// Aggregate counters of one or more engine runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Tasks executed.
    pub tasks: u64,
    /// Workers used by the largest run merged in.
    pub workers: usize,
    /// Successful steal operations (bulk transfers, not items moved).
    pub steals: u64,
    /// Per-task wall-clock seconds (Welford-accumulated across workers).
    pub task_seconds: OnlineStats,
}

impl EngineStats {
    /// Folds another run's counters into this one.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.tasks += other.tasks;
        self.workers = self.workers.max(other.workers);
        self.steals += other.steals;
        self.task_seconds.merge(&other.task_seconds);
    }

    /// Total busy seconds across all workers (sum of task durations).
    pub fn busy_seconds(&self) -> f64 {
        self.task_seconds.mean() * self.task_seconds.count() as f64
    }
}

/// Resolves a thread-count request: `0` means "all available cores".
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Runs `f(index, &items[index])` for every item, distributing the indices
/// over `threads` work-stealing workers (`0` = all cores), and returns the
/// results **in input order** plus the run's counters.
///
/// The scatter-by-index design makes the output deterministic: for a pure
/// `f`, any thread count yields the same `Vec<R>`.
pub fn run_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, EngineStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len());
    if items.is_empty() {
        return (Vec::new(), EngineStats::default());
    }
    if workers <= 1 {
        let mut task_seconds = OnlineStats::new();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let started = Instant::now();
                let r = f(i, item);
                task_seconds.push(started.elapsed().as_secs_f64());
                r
            })
            .collect();
        return (
            out,
            EngineStats {
                tasks: items.len() as u64,
                workers: 1,
                steals: 0,
                task_seconds,
            },
        );
    }

    // Round-robin seeding: worker w starts with indices w, w+workers, …
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();
    let steals = AtomicU64::new(0);

    let harvest: Vec<(Vec<(usize, R)>, OnlineStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let steals = &steals;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut timing = OnlineStats::new();
                    while let Some(idx) = next_task(w, deques, steals) {
                        let started = Instant::now();
                        let r = f(idx, &items[idx]);
                        timing.push(started.elapsed().as_secs_f64());
                        local.push((idx, r));
                    }
                    (local, timing)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    let mut task_seconds = OnlineStats::new();
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (local, timing) in harvest {
        task_seconds.merge(&timing);
        for (idx, r) in local {
            out[idx] = Some(r);
        }
    }
    let out: Vec<R> = out
        .into_iter()
        .map(|r| r.expect("every task index produced exactly one result"))
        .collect();
    (
        out,
        EngineStats {
            tasks: items.len() as u64,
            workers,
            // lint: allow(relaxed-ordering) — monotonic steal counter read after all workers joined; no ordering carries data
            steals: steals.load(Ordering::Relaxed),
            task_seconds,
        },
    )
}

/// As [`run_indexed`], additionally profiling every task into an obs-layer
/// [`Profiler`] under the `"task"` span.
///
/// Per-task durations are measured inside the worker closure and folded
/// into the profiler in **input order** after the scatter, so the span's
/// call count is exact and thread-count independent (the nanosecond totals
/// are wall-clock and vary run to run, as profiling always does).
pub fn run_indexed_profiled<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, EngineStats, Profiler)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (pairs, stats) = run_indexed(threads, items, |i, item| {
        let started = Instant::now();
        let r = f(i, item);
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (r, ns)
    });
    let mut profiler = Profiler::new(&["task"]);
    let mut out = Vec::with_capacity(pairs.len());
    for (r, ns) in pairs {
        profiler.record_ns(0, ns);
        out.push(r);
    }
    (out, stats, profiler)
}

/// Pops the next task for worker `w`: front of its own deque, else the
/// back half of the first non-empty victim (scanning from `w + 1` around
/// the ring). Returns `None` when every deque is empty — with a static
/// task set, that means the remaining work is already claimed by the
/// workers holding it.
fn next_task(w: usize, deques: &[Mutex<VecDeque<usize>>], steals: &AtomicU64) -> Option<usize> {
    if let Some(idx) = deques[w].lock().expect("engine deque").pop_front() {
        return Some(idx);
    }
    let n = deques.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        let stolen: VecDeque<usize> = {
            let mut v = deques[victim].lock().expect("engine deque");
            let keep = v.len() / 2;
            v.split_off(keep)
        };
        if stolen.is_empty() {
            continue;
        }
        // lint: allow(relaxed-ordering) — statistics-only counter; the deque mutexes order the stolen tasks themselves
        steals.fetch_add(1, Ordering::Relaxed);
        let mut own = deques[w].lock().expect("engine deque");
        *own = stolen;
        let first = own.pop_front();
        return first;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, stats) = run_indexed(4, &[] as &[u32], |_, x| *x);
        assert!(out.is_empty());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let (out, stats) = run_indexed(8, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(stats.tasks, 1000);
        assert!(stats.workers >= 1);
        assert_eq!(stats.task_seconds.count(), 1000);
    }

    #[test]
    fn one_thread_matches_many_threads() {
        let items: Vec<u64> = (0..257).collect();
        let work = |i: usize, x: &u64| (i as u64).wrapping_mul(*x ^ 0xABCD);
        let (seq, seq_stats) = run_indexed(1, &items, work);
        let (par, _) = run_indexed(6, &items, work);
        assert_eq!(seq, par);
        assert_eq!(seq_stats.workers, 1);
        assert_eq!(seq_stats.steals, 0);
    }

    #[test]
    fn uneven_work_is_still_complete() {
        // Task 0 is much heavier than the rest: stealing must redistribute
        // the remainder and every result must still arrive.
        let items: Vec<u64> = (0..64).collect();
        let (out, _) = run_indexed(4, &items, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_caps_at_item_count() {
        let (out, stats) = run_indexed(16, &[1u32, 2], |_, &x| x);
        assert_eq!(out, vec![1, 2]);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn absorb_accumulates_runs() {
        let items: Vec<u64> = (0..10).collect();
        let (_, a) = run_indexed(1, &items, |_, &x| x);
        let (_, b) = run_indexed(1, &items, |_, &x| x);
        let mut total = EngineStats::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.tasks, 20);
        assert_eq!(total.task_seconds.count(), 20);
        assert!(total.busy_seconds() >= 0.0);
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn profiled_run_counts_every_task() {
        let items: Vec<u64> = (0..100).collect();
        let (out, stats, profiler) = run_indexed_profiled(4, &items, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.tasks, 100);
        let span = profiler.spans().first().expect("task span");
        assert_eq!(span.name, "task");
        assert_eq!(span.count, 100);
    }
}
