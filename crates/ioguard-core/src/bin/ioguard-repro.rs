//! `ioguard-repro` — regenerate any of the paper's artifacts from the
//! command line.
//!
//! ```text
//! ioguard-repro fig3                      software i/o paths
//! ioguard-repro fig6                      software overhead table
//! ioguard-repro table1                    hardware overhead table
//! ioguard-repro fig7 [--trials N] [--threads N]   the automotive case study
//! ioguard-repro fig8 [--eta N]            scalability sweep
//! ioguard-repro sched                     analysis experiments
//! ioguard-repro predictability            latency profiles
//! ioguard-repro all [--trials N] [--threads N]    everything above
//! ```
//!
//! `--trials` sets the per-point trial count of the Fig. 7 sweep (default
//! 25; the paper uses 1000). `--threads` caps the experiment engine's
//! worker count (default 0 = all cores); results are bit-identical for any
//! value.

use std::process::ExitCode;

use ioguard_core::casestudy::{CaseStudyConfig, Fig7Report};
use ioguard_core::experiments::{
    acceptance_ratio_sweep, fig6_report, fig8_report, table1_report, theorem_agreement,
    SchedExperimentConfig,
};
use ioguard_core::predictability::{latency_profiles, PredictabilityConfig};

fn flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_fig3() {
    println!("== Fig. 3 — software i/o paths ==");
    println!("{}", ioguard_rtos::path::render_fig3(256));
}

fn run_fig6() {
    println!("== Fig. 6 — run-time software overhead (KB) ==");
    println!("{}", fig6_report());
}

fn run_table1() {
    println!("== Table I — hardware overhead ==");
    println!("{}", table1_report());
}

fn run_fig7(trials: u64, threads: usize) {
    println!("== Fig. 7 — automotive case study ({trials} trials/point) ==");
    let (report, stats) =
        Fig7Report::run_instrumented(&CaseStudyConfig::paper_shape(trials), threads);
    println!("{report}");
    let busy = stats.busy_seconds();
    if busy > 0.0 {
        println!(
            "engine: {} tasks on {} workers, {} steals, {:.1} tasks/s/core",
            stats.tasks,
            stats.workers,
            stats.steals,
            stats.tasks as f64 / busy,
        );
    }
}

fn run_fig8(eta: u64) {
    println!("== Fig. 8 — scalability ==");
    println!("{}", fig8_report(eta as u32));
}

fn run_sched() {
    println!("== Sec. IV — schedulability analysis ==");
    let config = SchedExperimentConfig::default();
    let utils: Vec<f64> = (1..=9).map(|i| 0.1 * i as f64).collect();
    println!("acceptance ratio vs utilization:");
    for p in acceptance_ratio_sweep(&config, &utils) {
        println!("  u = {:.1}: {:>5.1}%", p.utilization, p.accepted * 100.0);
    }
    let agreement = theorem_agreement(&config, 200);
    println!(
        "theorem agreement: {}/{} (n/a {})",
        agreement.agreed, agreement.compared, agreement.not_applicable
    );
}

fn run_predictability() {
    println!("== predictability — probe latency profiles ==");
    for p in latency_profiles(&PredictabilityConfig::default()) {
        println!(
            "{:<14} p50 {:>6.1}  p99 {:>6.1}  max {:>6.1}  missed {}",
            p.system, p.p50, p.p99, p.max, p.missed
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let trials = flag(&args, "--trials", 25);
    let eta = flag(&args, "--eta", 5);
    let threads = flag(&args, "--threads", 0) as usize;
    match command {
        "fig3" => run_fig3(),
        "fig6" => run_fig6(),
        "table1" => run_table1(),
        "fig7" => run_fig7(trials, threads),
        "fig8" => run_fig8(eta),
        "sched" => run_sched(),
        "predictability" => run_predictability(),
        "all" => {
            run_fig3();
            run_fig6();
            run_table1();
            run_fig8(eta);
            run_sched();
            run_predictability();
            run_fig7(trials, threads);
        }
        "help" | "--help" | "-h" => {
            println!(
                "usage: ioguard-repro <fig3|fig6|table1|fig7|fig8|sched|predictability|all> \
                 [--trials N] [--threads N] [--eta N]"
            );
        }
        other => {
            eprintln!("unknown command {other:?}; try `ioguard-repro help`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
