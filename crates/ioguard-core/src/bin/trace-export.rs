//! `trace-export` — emit the canonical observability snapshot.
//!
//! Runs the two canonical observed scenarios (healthy end-to-end and a
//! device-stall chaos trial, see `ioguard_core::observe`), composes the
//! hand-formatted JSON summary, writes it to `OBS_snapshot.json` and echoes
//! it to stdout. Deterministic byte-for-byte in the seed: CI runs this
//! twice and diffs the outputs.
//!
//! Usage: `trace-export [seed] [output-path]`
//! (defaults: seed `3405691582`, path `OBS_snapshot.json`)

use ioguard_core::observe::snapshot_json;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0xCAFE_BABE);
    let path = args
        .next()
        .unwrap_or_else(|| "OBS_snapshot.json".to_string());
    let json = snapshot_json(seed);
    std::fs::write(&path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {path}");
}
