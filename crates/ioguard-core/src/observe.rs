//! Canonical observed runs and the `OBS_snapshot.json` composer.
//!
//! Two fixed scenarios anchor the observability layer's regression story:
//!
//! * [`end_to_end_observed`] — a healthy two-VM run (P-channel task,
//!   periodic critical + best-effort streams, one mid-run flood, a NoC
//!   response leg). Exercises the admit → grant → dispatch → complete
//!   path plus throttling.
//! * [`chaos_observed`] — a shrunk device-stall chaos trial
//!   ([`ChaosScenario::run_observed`]). Exercises faults, retries, mode
//!   changes, recovery and the degraded admission edges.
//! * [`reconfig_observed`] — a canonical stage → verify → commit → drain
//!   mode change: a two-VM system verified and flipped to a three-VM
//!   successor at a hyperperiod boundary, with jobs carried across the
//!   switch. Exercises the `Reconfig*` event kinds and the epoch-tagged
//!   per-epoch traces.
//!
//! Both are pure functions of their seed: the rendered traces
//! ([`render_trace`]) are byte-identical across runs and thread counts,
//! which is exactly what the golden-trace tests and the `trace-export`
//! determinism check in CI pin down. [`snapshot_json`] composes the
//! summaries into the hand-formatted `OBS_snapshot.json` document (the
//! workspace's no-op `serde` stub means no JSON serializer exists; fixed
//! key order and indentation are by construction).

use ioguard_faults::{ChaosScenario, FaultPlan, ObservedChaos};
use ioguard_hypervisor::hypervisor::AdmissionGuard;
use ioguard_hypervisor::metrics::HvMetrics;
use ioguard_hypervisor::pchannel::PredefinedTask;
use ioguard_hypervisor::{HvObs, Hypervisor, HypervisorParams, RtJob};
use ioguard_noc::network::{NetworkConfig, NocFabric};
use ioguard_noc::obs::ObservedFabric;
use ioguard_noc::packet::Packet;
use ioguard_noc::topology::NodeId;
use ioguard_noc::Network;
use ioguard_obs::export::{counters_json, fnv1a, hist_json, kind_counts_json};
use ioguard_obs::{Histogram, TraceSink};
use ioguard_reconfig::{ReconfigController, ReconfigTotals, StagedConfig};
use ioguard_sched::task::{PeriodicServer, SporadicTask};

/// Slots simulated by [`end_to_end_observed`].
pub const END_TO_END_HORIZON: u64 = 256;

/// Slots simulated by [`chaos_observed`] (a shrunk chaos trial).
pub const CHAOS_HORIZON: u64 = 300;

/// An observed end-to-end run: final metrics plus everything the
/// observability layer recorded.
#[derive(Debug)]
pub struct ObservedRun {
    /// Final hypervisor metrics.
    pub metrics: HvMetrics,
    /// Hypervisor-side observability state (events + latency histograms).
    pub hv_obs: Box<HvObs>,
    /// NoC-side event stream.
    pub noc_sink: TraceSink,
    /// NoC per-packet latency histogram, in cycles.
    pub noc_latency: Histogram,
}

/// Deterministic per-slot jitter: a pure hash of `(seed, t)`.
fn jitter(seed: u64, t: u64) -> u64 {
    let mut x = seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// Runs the canonical healthy scenario with the observability layer on.
///
/// Two VMs on a global-EDF hypervisor with one pre-defined P-channel task:
/// VM 0 submits a critical job every 6 slots (WCET 1–2, seed-jittered),
/// VM 1 a best-effort job every 9 slots, and at slot 100 VM 1 floods past
/// the admission guard to exercise throttling. Completions push response
/// packets across an observed 3×3 mesh. Pure in `seed`: same seed, same
/// trace bytes.
pub fn end_to_end_observed(seed: u64) -> ObservedRun {
    let predefined = PredefinedTask {
        task_id: 900,
        vm: 0,
        task: SporadicTask::implicit(8, 1).expect("static P-channel geometry"),
        response_bytes: 32,
        start_offset: 0,
    };
    let params = HypervisorParams::new(2)
        .with_predefined(vec![predefined])
        .with_admission_guard(AdmissionGuard {
            window: 16,
            max_submissions: 8,
            throttle_slots: 32,
        });
    let mut hv = Hypervisor::new(params).expect("static scenario geometry");
    hv.attach_obs(1 << 14);

    let net = Network::new(NetworkConfig::mesh(3, 3)).expect("static mesh geometry");
    let mut net = ObservedFabric::new(net, 1 << 12);

    let mut next_id: u64 = 1;
    let mut completed_before: u64 = 0;
    let mut scratch = Vec::new();
    for t in 0..END_TO_END_HORIZON {
        if t % 6 == 0 {
            let wcet = 1 + jitter(seed, t) % 2;
            let _ = hv.submit(RtJob::new(0, next_id, t, wcet, t + 6));
            next_id += 1;
        }
        if t % 9 == 0 {
            let _ = hv.submit(RtJob::new(1, next_id, t, 2, t + 9).best_effort());
            next_id += 1;
        }
        if t == 100 {
            // A short flood from VM 1: trips the admission guard, so the
            // trace carries throttle events on the healthy path too.
            for _ in 0..12 {
                let _ = hv.submit(RtJob::new(1, next_id, t, 1, t + 16).best_effort());
                next_id += 1;
            }
        }
        hv.step();
        let completed_now = hv.metrics().completed;
        for c in completed_before..completed_now {
            let id = 1 + c;
            let src = NodeId::new((id % 3) as u16, ((id / 3) % 3) as u16);
            let dst = NodeId::new(2, 2);
            if let Ok(packet) = Packet::request(id, src, dst, 2) {
                let _ = net.inject(packet);
            }
        }
        completed_before = completed_now;
        scratch.clear();
        net.step_into(&mut scratch);
    }
    scratch.clear();
    net.run_until_idle_into(10_000, &mut scratch);

    let metrics = hv.metrics().clone();
    let hv_obs = hv.take_obs().unwrap_or_else(|| Box::new(HvObs::new(0, 2)));
    let (_, noc_sink, noc_latency) = net.into_parts();
    ObservedRun {
        metrics,
        hv_obs,
        noc_sink,
        noc_latency,
    }
}

/// Runs the canonical chaos scenario (device stalls, shrunk horizon) with
/// the observability layer on. Pure in `seed`.
pub fn chaos_observed(seed: u64) -> ObservedChaos {
    let mut scenario = ChaosScenario::new(FaultPlan::new(seed).with_device_stalls(0.5, 48));
    scenario.horizon = CHAOS_HORIZON;
    scenario
        .run_observed()
        .expect("static chaos scenario geometry")
}

/// Slots simulated by [`reconfig_observed`].
pub const RECONFIG_HORIZON: u64 = 48;

/// An observed online-reconfiguration run: the controller's own event
/// stream plus the per-epoch hypervisor traces.
#[derive(Debug)]
pub struct ObservedReconfig {
    /// Work-conservation totals across every epoch.
    pub totals: ReconfigTotals,
    /// The controller's Stage/Verify/Commit/Abort/Drain stream.
    pub reconfig_sink: TraceSink,
    /// Hypervisor event streams, one per epoch (retired epochs in order,
    /// then the live epoch) — the epoch tag of every dispatch is which
    /// stream it appears in.
    pub epoch_sinks: Vec<TraceSink>,
    /// Observed drain latency of every completed switch, in slots.
    pub drain_latencies: Vec<u64>,
    /// Final epoch number.
    pub epochs: u64,
}

/// Runs the canonical mode change with the observability layer on.
///
/// A two-VM system (σ\* heartbeat of period 8, critical jobs every 6
/// slots on VM 0, best-effort every 9 on VM 1, WCETs seed-jittered)
/// stages a verified three-VM successor at slot 5 and commits; the switch
/// runs at the slot-8 hyperperiod boundary with a 3-slot traced drain,
/// carrying in-flight work into epoch 1. Pure in `seed`: same seed, same
/// trace bytes.
pub fn reconfig_observed(seed: u64) -> ObservedReconfig {
    let beat = |vm: usize, id: u64| PredefinedTask {
        task_id: id,
        vm,
        task: SporadicTask::implicit(8, 1).expect("static P-channel geometry"),
        response_bytes: 32,
        start_offset: 0,
    };
    let mk = |servers: Vec<(u64, u64)>, tasks: Vec<(u64, u64, u64)>| {
        let servers = servers
            .iter()
            .map(|&(p, t)| PeriodicServer::new(p, t).expect("static server geometry"))
            .collect();
        let sets = tasks
            .iter()
            .map(|&(t, c, d)| {
                vec![SporadicTask::new(t, c, d).expect("static task geometry")].into()
            })
            .collect();
        StagedConfig::new(servers, sets)
    };
    let mut old = mk(vec![(5, 2), (10, 3)], vec![(20, 2, 10), (40, 4, 30)]);
    old.predefined = vec![beat(0, 900)];
    let mut new = mk(
        vec![(5, 1), (10, 2), (8, 2)],
        vec![(20, 1, 10), (40, 2, 30), (32, 2, 16)],
    );
    new.predefined = vec![beat(1, 901)];

    let mut rc = ReconfigController::new(old, 16, 1 << 10).expect("static reconfig geometry");
    rc.attach_obs(1 << 12);
    let mut next_id: u64 = 1;
    for t in 0..RECONFIG_HORIZON {
        if t == 5 {
            rc.stage(new.clone()).expect("canonical successor verifies");
            rc.commit().expect("slot-8 boundary fits the drain budget");
        }
        if t % 6 == 0 {
            let wcet = 1 + jitter(seed, t) % 2;
            let _ = rc.submit(0, next_id, wcet, 12, true);
            next_id += 1;
        }
        if t % 9 == 0 {
            let _ = rc.submit(1, next_id, 2, 18, false);
            next_id += 1;
        }
        rc.step();
    }
    let mut epoch_sinks: Vec<TraceSink> = Vec::new();
    for r in rc.retired() {
        if let Some(obs) = &r.obs {
            epoch_sinks.push(obs.sink.clone());
        }
    }
    if let Some(obs) = rc.hv().obs() {
        epoch_sinks.push(obs.sink.clone());
    }
    ObservedReconfig {
        totals: rc.totals(),
        reconfig_sink: rc.sink().clone(),
        epoch_sinks,
        drain_latencies: rc.drain_latencies().to_vec(),
        epochs: rc.epoch(),
    }
}

/// Canonical text rendering of an observed reconfiguration — the
/// golden-trace payload: the controller's event stream followed by one
/// hypervisor section per epoch.
pub fn render_reconfig_trace(run: &ObservedReconfig) -> String {
    let mut out = String::from("# reconfig events\n");
    out.push_str(&run.reconfig_sink.render());
    for (i, sink) in run.epoch_sinks.iter().enumerate() {
        out.push_str(&format!("# epoch {i} hypervisor events\n"));
        out.push_str(&sink.render());
    }
    out
}

/// Canonical text rendering of one observed run's event streams — the
/// golden-trace payload: a hypervisor section and a NoC section, each one
/// line per event.
pub fn render_trace(hv_sink: &TraceSink, noc_sink: &TraceSink) -> String {
    format!(
        "# hypervisor events\n{}# noc events\n{}",
        hv_sink.render(),
        noc_sink.render()
    )
}

/// Composes the full `OBS_snapshot.json` document for `seed`: summaries of
/// the end-to-end and chaos scenarios with histogram statistics, per-VM
/// counters, per-kind event counts, and an FNV-1a checksum of each
/// rendered trace. Deterministic byte-for-byte: CI runs it twice and
/// diffs.
pub fn snapshot_json(seed: u64) -> String {
    let run = end_to_end_observed(seed);
    let chaos = chaos_observed(seed);
    let chaos_registry = chaos.outcome.metrics.registry();
    let recovery = chaos
        .outcome
        .recovery_slots
        .map_or_else(|| "null".to_string(), |r| r.to_string());
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"ioguard-obs-snapshot-v1\",\n",
            "  \"seed\": {seed},\n",
            "  \"end_to_end\": {{\n",
            "    \"horizon_slots\": {e2e_horizon},\n",
            "    \"completed\": {e2e_completed},\n",
            "    \"missed\": {e2e_missed},\n",
            "    \"trace_events\": {e2e_events},\n",
            "    \"trace_checksum\": {e2e_checksum},\n",
            "    \"submit_to_dispatch\": {e2e_s2d},\n",
            "    \"dispatch_to_response\": {e2e_d2r},\n",
            "    \"e2e_critical\": {e2e_crit},\n",
            "    \"e2e_best_effort\": {e2e_be},\n",
            "    \"noc_latency\": {e2e_noc},\n",
            "    \"counters\": {e2e_counters},\n",
            "    \"events_by_kind\": {e2e_kinds}\n",
            "  }},\n",
            "  \"chaos\": {{\n",
            "    \"horizon_slots\": {chaos_horizon},\n",
            "    \"mode_changes\": {chaos_modes},\n",
            "    \"recovery_slots\": {chaos_recovery},\n",
            "    \"trace_events\": {chaos_events},\n",
            "    \"trace_checksum\": {chaos_checksum},\n",
            "    \"noc_latency\": {chaos_noc},\n",
            "    \"counters\": {chaos_counters},\n",
            "    \"events_by_kind\": {chaos_kinds}\n",
            "  }}\n",
            "}}\n"
        ),
        seed = seed,
        e2e_horizon = END_TO_END_HORIZON,
        e2e_completed = run.metrics.completed,
        e2e_missed = run.metrics.missed,
        e2e_events = run.hv_obs.sink.recorded(),
        e2e_checksum = fnv1a(&render_trace(&run.hv_obs.sink, &run.noc_sink)),
        e2e_s2d = hist_json(&run.hv_obs.submit_to_dispatch, 4),
        e2e_d2r = hist_json(&run.hv_obs.dispatch_to_response, 4),
        e2e_crit = hist_json(&run.hv_obs.e2e_critical, 4),
        e2e_be = hist_json(&run.hv_obs.e2e_best_effort, 4),
        e2e_noc = hist_json(&run.noc_latency, 4),
        e2e_counters = counters_json(&run.metrics.registry(), 4),
        e2e_kinds = kind_counts_json(run.hv_obs.sink.iter(), 4),
        chaos_horizon = CHAOS_HORIZON,
        chaos_modes = chaos.outcome.mode_changes,
        chaos_recovery = recovery,
        chaos_events = chaos.hv_obs.sink.recorded(),
        chaos_checksum = fnv1a(&render_trace(&chaos.hv_obs.sink, &chaos.noc_sink)),
        chaos_noc = hist_json(&chaos.noc_latency, 4),
        chaos_counters = counters_json(&chaos_registry, 4),
        chaos_kinds = kind_counts_json(chaos.hv_obs.sink.iter(), 4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioguard_obs::{CounterRegistry, ObsKind};

    #[test]
    fn end_to_end_run_is_deterministic_and_lossless() {
        let a = end_to_end_observed(11);
        let b = end_to_end_observed(11);
        assert_eq!(
            render_trace(&a.hv_obs.sink, &a.noc_sink),
            render_trace(&b.hv_obs.sink, &b.noc_sink)
        );
        assert_eq!(a.hv_obs.sink.dropped(), 0);
        assert_eq!(a.noc_sink.dropped(), 0);
        assert!(a.metrics.completed > 0);
        assert!(
            a.hv_obs.sink.of_kind(ObsKind::Throttle).count() >= 1,
            "the slot-100 flood must trip the admission guard"
        );
        assert!(a.hv_obs.e2e_critical.count() > 0);
        assert!(a.noc_latency.count() > 0);
    }

    #[test]
    fn end_to_end_fold_matches_live_registry() {
        let run = end_to_end_observed(3);
        let folded = CounterRegistry::from_events(2, run.hv_obs.sink.iter());
        assert_eq!(folded, run.metrics.registry());
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let a = snapshot_json(5);
        assert_eq!(a, snapshot_json(5));
        assert!(a.contains("\"schema\": \"ioguard-obs-snapshot-v1\""));
        assert!(a.contains("\"trace_checksum\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn reconfig_run_is_deterministic_and_lossless() {
        let a = reconfig_observed(7);
        let b = reconfig_observed(7);
        assert_eq!(render_reconfig_trace(&a), render_reconfig_trace(&b));
        assert_eq!(a.reconfig_sink.dropped(), 0);
        for sink in &a.epoch_sinks {
            assert_eq!(sink.dropped(), 0);
        }
        assert!(a.totals.conserved(), "{:?}", a.totals);
    }

    #[test]
    fn reconfig_run_switches_once_at_the_slot_8_boundary() {
        let run = reconfig_observed(7);
        assert_eq!(run.epochs, 1);
        assert_eq!(run.epoch_sinks.len(), 2);
        assert_eq!(run.drain_latencies, vec![3]);
        assert_eq!(run.reconfig_sink.of_kind(ObsKind::ReconfigDrain).count(), 1);
        assert_eq!(run.reconfig_sink.of_kind(ObsKind::ReconfigAbort).count(), 0);
        let trace = render_reconfig_trace(&run);
        assert!(trace.contains("# reconfig events\n"));
        assert!(trace.contains("# epoch 0 hypervisor events\n"));
        assert!(trace.contains("# epoch 1 hypervisor events\n"));
    }
}
