//! End-to-end checks of the acceptance criteria: the workspace and the
//! Fig. 7 configurations lint clean, and every seeded-bad fixture is
//! rejected with the expected rule.

use std::path::{Path, PathBuf};

use ioguard_lint::faultplan::fault_rule;
use ioguard_lint::model::model_rule;
use ioguard_lint::rules::{render_json, rule};
use ioguard_lint::{check_fig7, check_paths, check_workspace, check_workspace_threaded};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn workspace_lints_clean() {
    let (violations, scanned) = check_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "workspace must lint clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // All nine pre-existing crates plus ioguard-lint itself.
    assert!(scanned >= 40, "expected a full scan, got {scanned} files");
}

#[test]
fn fig7_configs_verify_clean() {
    let violations = check_fig7().expect("fig7 models construct");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn seeded_unwrap_fixture_is_rejected() {
    let path = fixture("bad_unwrap.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    for expected in [
        rule::PANIC_SITE,
        rule::INDEXING,
        rule::UNCHECKED_ARITH,
        rule::CAST_NARROWING,
        rule::NONDETERMINISM,
        rule::MISSING_JUSTIFICATION,
    ] {
        assert!(rules.contains(&expected), "missing {expected}: {rules:?}");
    }
}

#[test]
fn seeded_handoff_fixture_is_rejected() {
    let path = fixture("bad_handoff.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .filter(|v| v.rule == rule::NONDETERMINISM && v.message.contains("hand-off"))
            .count()
            >= 3,
        "all three unordered drains flagged: {violations:?}"
    );
}

#[test]
fn seeded_spillover_fixture_is_rejected() {
    let path = fixture("bad_spillover.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert_eq!(
        violations
            .iter()
            .filter(|v| v.rule == rule::UNBOUNDED_SPILLOVER)
            .count(),
        3,
        "the three unguarded grows flagged, the guarded one exempt: {violations:?}"
    );
}

#[test]
fn seeded_backpressure_fixture_is_rejected() {
    let path = fixture("bad_backpressure.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert_eq!(
        violations
            .iter()
            .filter(|v| v.rule == rule::UNBOUNDED_SPILLOVER)
            .count(),
        2,
        "both unguarded backlog grows flagged, the bounded one exempt: {violations:?}"
    );
}

#[test]
fn seeded_hotpath_fixture_is_rejected() {
    let path = fixture("bad_hotpath.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .filter(|v| v.rule == rule::HOT_PATH_LOOKUP)
            .count()
            >= 2,
        "both loop lookups flagged: {violations:?}"
    );
}

#[test]
fn seeded_liveconfig_fixture_is_rejected() {
    let path = fixture("bad_liveconfig.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert_eq!(
        violations
            .iter()
            .filter(|v| v.rule == rule::LIVE_CONFIG_MUTATION)
            .count(),
        3,
        "all three in-place config patches flagged: {violations:?}"
    );
    // The builder method and the read-only accessor must stay clean — the
    // fixture seeds exactly one rule.
    assert!(
        violations
            .iter()
            .all(|v| v.rule == rule::LIVE_CONFIG_MUTATION),
        "{violations:?}"
    );
}

#[test]
fn seeded_lockorder_fixture_is_rejected() {
    let path = fixture("bad_lockorder.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == rule::LOCK_ORDER && v.message.contains("alpha")),
        "{violations:?}"
    );
}

#[test]
fn seeded_barrier_fixture_is_rejected() {
    let path = fixture("bad_barrier.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == rule::LOCK_ACROSS_BARRIER),
        "{violations:?}"
    );
}

#[test]
fn seeded_relaxed_fixture_is_rejected() {
    let path = fixture("bad_relaxed.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .filter(|v| v.rule == rule::RELAXED_ORDERING)
            .count()
            >= 2,
        "both the relaxed store and the unpaired acquire flagged: {violations:?}"
    );
}

#[test]
fn seeded_blocking_fixture_is_rejected() {
    let path = fixture("bad_blocking.rs");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == rule::BLOCKING_IN_HOT_PATH && v.message.contains("step_cycle")),
        "{violations:?}"
    );
}

#[test]
fn thread_count_does_not_change_the_verdict() {
    let root = workspace_root();
    let (seq, seq_scanned) = check_workspace_threaded(&root, 1).expect("sequential scan");
    let (par, par_scanned) = check_workspace_threaded(&root, 8).expect("parallel scan");
    assert_eq!(seq_scanned, par_scanned);
    assert_eq!(
        seq.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
        par.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
        "violations must come back in the same order at any thread count"
    );
    assert_eq!(render_json(&seq), render_json(&par));
}

#[test]
fn json_rendering_is_byte_identical_across_runs() {
    let paths = [
        fixture("bad_lockorder.rs"),
        fixture("bad_relaxed.rs"),
        fixture("bad_blocking.rs"),
    ];
    let refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
    let a = render_json(&check_paths(&refs).expect("fixtures readable"));
    let b = render_json(&check_paths(&refs).expect("fixtures readable"));
    assert!(!a.is_empty());
    assert_eq!(a.as_bytes(), b.as_bytes());
    for line in a.lines() {
        let keys: Vec<usize> = ["\"path\":", "\"line\":", "\"rule\":", "\"message\":"]
            .iter()
            .map(|k| line.find(k).expect("stable field present"))
            .collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "fields in fixed order: {line}"
        );
    }
}

#[test]
fn seeded_overlap_model_is_rejected() {
    let path = fixture("bad_overlap.model");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == model_rule::TABLE_OVERLAP),
        "{violations:?}"
    );
}

#[test]
fn seeded_cyclic_route_model_is_rejected() {
    let path = fixture("bad_cycle.model");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(
        violations
            .iter()
            .any(|v| v.rule == model_rule::NOC_DEADLOCK),
        "{violations:?}"
    );
}

#[test]
fn good_model_fixture_passes() {
    let path = fixture("good.model");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn good_fault_plan_fixture_passes() {
    let path = fixture("good.fault");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn seeded_bad_fault_plan_is_rejected() {
    let path = fixture("bad_plan.fault");
    let violations = check_paths(&[path.as_path()]).expect("fixture readable");
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    for expected in [
        fault_rule::RATE,
        fault_rule::RETRY,
        fault_rule::POSITIVE,
        fault_rule::PARSE,
    ] {
        assert!(rules.contains(&expected), "missing {expected}: {rules:?}");
    }
}

#[test]
fn unknown_extension_is_a_usage_error() {
    let path = fixture("nope.txt");
    assert!(check_paths(&[path.as_path()]).is_err());
}
