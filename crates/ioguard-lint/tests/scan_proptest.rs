//! Property tests for the stripped-line scanner.
//!
//! Two invariants hold for *any* input, not just well-formed Rust:
//!
//! * **Totality** — `SourceFile::parse` never panics and yields
//!   well-formed line records (1-based, consecutive numbering), whatever
//!   bytes it is fed. The linter walks every `.rs` file in the workspace;
//!   a malformed file must produce violations, never a crash.
//! * **Idempotence** — stripping a file's own stripped output changes
//!   nothing. Comments are gone after one pass and literal contents are
//!   blanked, so a second pass must be the identity; any divergence means
//!   the state machine mis-tracked a literal or comment boundary (exactly
//!   the class of bug the `br"…"`/multi-hash fixes addressed).

use std::path::Path;

use proptest::prelude::*;

use ioguard_lint::scan::SourceFile;

/// The stripped code column, with trailing empty lines dropped (`strip`
/// emits a final partial line only when it is non-empty, so a rejoin
/// cannot preserve trailing blanks).
fn code_lines(file: &SourceFile) -> Vec<String> {
    let mut lines: Vec<String> = file.lines.iter().map(|l| l.code.clone()).collect();
    while lines.last().is_some_and(String::is_empty) {
        lines.pop();
    }
    lines
}

/// Fragments chosen to land on every scanner state and transition:
/// string/char openers and closers, raw and byte-raw prefixes at several
/// hash depths, both comment kinds, escapes, directives and plain tokens.
const FRAGMENTS: &[&str] = &[
    "\"",
    "\\\"",
    "\\",
    "r\"",
    "r#\"",
    "r##\"",
    "\"#",
    "\"##",
    "b\"",
    "br\"",
    "br##\"",
    "'",
    "'a",
    "//",
    "/*",
    "*/",
    "/* lint: allow(panic-site) — soup */",
    "fn f()",
    ".unwrap()",
    "{",
    "}",
    ";",
    "\n",
    "x",
    "é",
    "\t",
    " ",
];

/// Adversarial token soup: concatenations of scanner-relevant fragments.
fn token_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..48).prop_map(|picks| {
        picks
            .iter()
            .map(|&b| FRAGMENTS[b as usize % FRAGMENTS.len()])
            .collect()
    })
}

/// Arbitrary bytes, lossily decoded: exercises non-ASCII and replacement
/// characters the token soup cannot reach.
fn byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parse_is_total_on_byte_soup(text in byte_soup()) {
        let file = SourceFile::parse(Path::new("soup.rs"), &text);
        for (i, line) in file.lines.iter().enumerate() {
            prop_assert_eq!(line.number, i + 1);
        }
        prop_assert!(file.lines.len() <= text.lines().count() + 1);
    }

    #[test]
    fn parse_is_total_on_token_soup(text in token_soup()) {
        let file = SourceFile::parse(Path::new("soup.rs"), &text);
        for (i, line) in file.lines.iter().enumerate() {
            prop_assert_eq!(line.number, i + 1);
        }
    }

    #[test]
    fn stripping_is_idempotent_on_byte_soup(text in byte_soup()) {
        let once = SourceFile::parse(Path::new("soup.rs"), &text);
        let rejoined = code_lines(&once).join("\n");
        let twice = SourceFile::parse(Path::new("soup.rs"), &rejoined);
        prop_assert_eq!(code_lines(&once), code_lines(&twice));
    }

    #[test]
    fn stripping_is_idempotent_on_token_soup(text in token_soup()) {
        let once = SourceFile::parse(Path::new("soup.rs"), &text);
        let rejoined = code_lines(&once).join("\n");
        let twice = SourceFile::parse(Path::new("soup.rs"), &rejoined);
        prop_assert_eq!(code_lines(&once), code_lines(&twice));
    }
}
