//! Seeded lint fixture: MUST trip `blocking-in-hot-path`.
//!
//! The per-cycle stepper reaches a `thread::park` through a helper call —
//! blocking inside the hot loop stalls the whole region for the cycle.
#![forbid(unsafe_code)]

/// Per-cycle stepper.
// lint: hot-path — per-cycle stepper
pub fn step_cycle(backlog: &mut Vec<u64>) {
    drain_backlog(backlog);
}

/// Helper that parks the thread between items.
fn drain_backlog(backlog: &mut Vec<u64>) {
    while backlog.pop().is_some() {
        std::thread::park();
    }
}
