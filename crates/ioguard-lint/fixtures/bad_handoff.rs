//! Seeded-bad fixture for the hand-off drain extension of the
//! nondeterminism rule: cross-thread hand-off queues (inbox/outbox/
//! mailbox vocabulary) consumed in arrival order with no cycle-keyed
//! fence and no justification. CI runs `ioguard-lint -- check` over this
//! file and asserts a non-zero exit.

use std::collections::VecDeque;

pub struct Boundary {
    inbox: VecDeque<u64>,
    outbox: VecDeque<u64>,
    handoff_queue: Vec<u64>,
}

impl Boundary {
    /// Arrival-order pop: whichever producer thread won the race to push
    /// first is consumed first — scheduler-dependent.
    pub fn take_next(&mut self) -> Option<u64> {
        self.inbox.pop_front()
    }

    /// Same defect from the producer side.
    pub fn undo_send(&mut self) -> Option<u64> {
        self.outbox.pop_back()
    }

    /// Bulk drain without a merge key.
    pub fn flush(&mut self) -> Vec<u64> {
        self.handoff_queue.drain(..).collect()
    }
}
