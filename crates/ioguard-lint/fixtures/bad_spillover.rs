//! Seeded-bad fixture for the unbounded-spillover rule: spillover/retry
//! buffers (the holding pens for work the admission control rejected)
//! grown with no adjacent capacity guard and no justification. CI runs
//! `ioguard-lint -- check` over this file and asserts a non-zero exit.

use std::collections::VecDeque;

pub struct Spill {
    spillover: VecDeque<u64>,
    retry_queue: Vec<u64>,
    backlog: std::collections::BTreeMap<u64, u64>,
}

impl Spill {
    /// Every rejected arrival lands here forever: nothing ever compares
    /// the buffer against a capacity before growing it.
    pub fn defer(&mut self, vm: u64) {
        self.spillover.push_back(vm);
    }

    /// Same defect on a plain Vec.
    pub fn requeue(&mut self, vm: u64) {
        self.retry_queue.push(vm);
    }

    /// And on a keyed container.
    pub fn remember(&mut self, vm: u64, shard: u64) {
        self.backlog.insert(vm, shard);
    }

    /// The one legal shape, for contrast: the bound is on the guard line.
    pub fn defer_bounded(&mut self, vm: u64, spill_capacity: usize) {
        if self.spillover.len() < spill_capacity {
            self.spillover.push_back(vm);
        }
    }
}
