//! Seeded lint fixture: MUST trip `lock-across-barrier`.
//!
//! The boundary-queue guard is still live when the worker arrives at the
//! epoch barrier: a peer region blocking on the mutex then deadlocks
//! against the barrier. The PDES protocol requires every guard released
//! before `EpochSync::arrive`.
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Barrier, Mutex};

/// One region worker sharing a boundary queue and an epoch barrier.
pub struct Worker {
    boundary: Mutex<VecDeque<u64>>,
    sync: Barrier,
}

impl Worker {
    /// Drains the boundary queue, then waits for the epoch — with the
    /// guard still held.
    pub fn run_epoch(&self) -> u64 {
        let mut held = self.boundary.lock().unwrap_or_else(|e| e.into_inner());
        self.sync.wait();
        held.pop_front().unwrap_or(0)
    }
}
