//! Seeded-bad fixture for the serving front-end back-pressure invariant
//! (ISSUE 10): per-client request backlogs grown with no adjacent
//! capacity guard would let a babbling client spill unbounded work into
//! the server, defeating the typed `Throttled`/`Shed` back-pressure.
//! CI runs `ioguard-lint -- check` over this file and asserts a
//! non-zero exit with `unbounded-spillover` findings.

use std::collections::VecDeque;

pub struct ClientLane {
    backlog: VecDeque<u64>,
    response_spillover: Vec<u64>,
}

impl ClientLane {
    /// The babbling-client hole: every decoded request is parked in the
    /// backlog with nothing comparing its length to a capacity first.
    pub fn park(&mut self, task_id: u64) {
        self.backlog.push_back(task_id);
    }

    /// Same defect on the response side: unacknowledged responses
    /// accumulate forever instead of being shed at a bound.
    pub fn defer_response(&mut self, token: u64) {
        self.response_spillover.push(token);
    }

    /// The legal shape, for contrast: the grow sits under its bound and
    /// the overflow path sheds with a typed verdict upstream.
    pub fn park_bounded(&mut self, task_id: u64, backlog_capacity: usize) -> bool {
        if self.backlog.len() < backlog_capacity {
            self.backlog.push_back(task_id);
            true
        } else {
            false
        }
    }
}
