//! Seeded-bad fixture for the hot-path-lookup rule: a function annotated
//! as a per-cycle hot path performing keyed-container lookups inside its
//! loops. CI runs `ioguard-lint -- check` over this file and asserts a
//! non-zero exit.

use std::collections::BTreeMap;

pub struct Fabric {
    in_flight: BTreeMap<u64, u64>,
}

impl Fabric {
    // lint: hot-path — the per-cycle stepper this fixture seeds violations into
    pub fn step_cycle(&mut self, ejected: &[u64]) {
        for &id in ejected {
            // Keyed lookup per flit — exactly what dense storage replaces.
            if let Some(entry) = self.in_flight.get_mut(&id) {
                *entry += 1;
            }
            if self.in_flight.contains_key(&id) {
                self.in_flight.remove(&id);
            }
        }
    }
}
