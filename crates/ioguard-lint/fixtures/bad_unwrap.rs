//! Seeded-bad fixture: every Layer 1 rule fires at least once. CI runs
//! `ioguard-lint -- check` over this file and asserts a non-zero exit.

pub fn lookup(values: &[u64], slot: usize) -> u64 {
    // Direct indexing and a bare unwrap in library code.
    let v = values.get(slot).copied();
    values[slot] + v.unwrap()
}

pub fn next_release(release: u64, period: u64) -> u64 {
    // Unchecked `+` on time arithmetic.
    release + period
}

pub fn to_trace_id(task_id: u64) -> u32 {
    // Narrowing cast.
    task_id as u32
}

pub fn order_map() -> std::collections::HashMap<u64, u64> {
    // Hash-ordered container on a deterministic path.
    std::collections::HashMap::new()
}

pub fn silenced(values: &[u64]) -> u64 {
    values.first().copied().unwrap() // lint: allow(panic-site)
}
