//! Seeded lint fixture: MUST trip `lock-order`.
//!
//! `forward` takes alpha then beta; `reverse` takes beta then alpha. Two
//! threads running them concurrently can each hold one mutex while waiting
//! for the other — the classic AB/BA deadlock the workspace rule exists to
//! prevent.
#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Two counters guarded by independent mutexes.
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    /// Sums in alpha→beta order.
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        a.wrapping_add(*b)
    }

    /// Sums in beta→alpha order — inconsistent with `forward`.
    pub fn reverse(&self) -> u64 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        b.wrapping_add(*a)
    }
}
