//! Seeded lint fixture: MUST trip `relaxed-ordering`.
//!
//! `epoch` is written by one region thread and read by the others, but the
//! store is `Relaxed`: the reader's `Acquire` pairs with nothing, so a
//! cross-region observer can see a stale epoch — exactly the silent
//! bit-identical-merge breakage the rule exists to catch.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared epoch counter.
pub struct EpochCell {
    epoch: AtomicU64,
}

impl EpochCell {
    /// Publishes a completed epoch (incorrectly: no release).
    pub fn publish(&self, value: u64) {
        self.epoch.store(value, Ordering::Relaxed);
    }

    /// Observes the epoch from a peer thread.
    pub fn observe(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}
