//! Seeded-bad fixture for the live-config-mutation rule: a running
//! system's configuration fields patched in place — no staging, no
//! offline verification, no hyperperiod-aligned switch. Every mutation
//! below is exactly the shape `ioguard-reconfig` exists to replace. CI
//! runs `ioguard-lint -- check` over this file and asserts a non-zero
//! exit.

pub struct LiveSystem {
    pub predefined: Vec<u64>,
    pub watchdog: Option<u64>,
    pub admission_guard: Option<u64>,
    pub degradation: u64,
}

/// Hot-patches the live system: three in-place config mutations, each a
/// `live-config-mutation` finding.
pub fn patch_running_system(live: &mut LiveSystem, beat: u64) {
    live.predefined = vec![beat];
    live.watchdog = None;
    live.admission_guard = Some(beat);
}

impl LiveSystem {
    /// The legal shape for comparison: a consuming builder, applied before
    /// the system goes live — exempt from the rule.
    pub fn with_degradation(mut self, policy: u64) -> Self {
        self.degradation = policy;
        self
    }

    /// Reading config is fine; only assignment trips the rule.
    pub fn is_guarded(&self) -> bool {
        self.admission_guard.is_some()
    }
}
