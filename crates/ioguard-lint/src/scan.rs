//! Source preprocessing for the token/line-level lint rules.
//!
//! The analyzer deliberately avoids a full Rust parser (the workspace builds
//! offline against vendored stubs, so `syn` is not available). Instead each
//! file is preprocessed into per-line *stripped code*:
//!
//! * line comments, block comments (nested) and doc comments are removed —
//!   doc examples therefore never trigger rules;
//! * string, raw-string, byte-string and char literal *contents* are blanked
//!   so operator and keyword scans cannot match inside text;
//! * `#[cfg(test)]` items and `#[test]` functions are tracked by brace depth
//!   and marked as test code, which most rules skip.
//!
//! Comments are not discarded entirely: they are scanned for allowlist
//! directives of the form
//!
//! ```text
//! // lint: allow(rule-name) — justification text
//! // lint: allow(rule-name, file) — justification text
//! ```
//!
//! A same-line directive applies to that line; a directive on its own line
//! applies to the next code line; the `file` form applies to the whole file.
//! The justification text is mandatory (see [`Allow::justified`]).

use std::fmt;
use std::path::{Path, PathBuf};

/// Minimum length of a non-empty allowlist justification. Shorter texts are
/// treated as missing: the policy requires a real explanation, not "ok".
pub const MIN_JUSTIFICATION: usize = 10;

/// Minimum number of alphanumeric characters a justification must contain.
/// Length alone is not enough: `----------` pads past [`MIN_JUSTIFICATION`]
/// without saying anything.
pub const MIN_JUSTIFICATION_ALNUM: usize = 8;

/// One allowlist directive extracted from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being allowed (e.g. `panic-site`).
    pub rule: String,
    /// Free-text justification following the directive.
    pub justification: String,
    /// True for `allow(rule, file)` — applies to the entire file.
    pub file_wide: bool,
    /// 1-based line the directive appeared on.
    pub line: usize,
}

impl Allow {
    /// True when the justification satisfies the policy: long enough AND
    /// composed of actual words, not punctuation/whitespace padding.
    pub fn justified(&self) -> bool {
        let t = self.justification.trim();
        t.len() >= MIN_JUSTIFICATION
            && t.chars().filter(|c| c.is_alphanumeric()).count() >= MIN_JUSTIFICATION_ALNUM
    }
}

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// 1-based line number.
    pub number: usize,
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// True when the line sits inside a `#[cfg(test)]` item or `#[test]`
    /// function.
    pub in_test: bool,
    /// True when the line sits inside a function marked as a per-cycle hot
    /// path — via a `// lint: hot-path` comment directly above it, or a
    /// name containing `hot_path`.
    pub in_hot_path: bool,
    /// True when the line sits inside (or on the header of) a `for`/
    /// `while`/`loop` body.
    pub in_loop: bool,
    /// True when the line sits inside a consuming-builder method — a
    /// function taking `mut self` by value (`fn with_x(mut self, ..)`).
    /// Builders are the one legitimate place to assign configuration
    /// fields; the live-config-mutation rule exempts them.
    pub in_builder: bool,
    /// Rules allowed on this line (same-line or preceding-line directives).
    pub allows: Vec<Allow>,
}

/// A fully preprocessed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path the file was read from.
    pub path: PathBuf,
    /// Preprocessed lines, in order.
    pub lines: Vec<LineInfo>,
    /// File-wide allow directives.
    pub file_allows: Vec<Allow>,
}

impl SourceFile {
    /// Reads and preprocesses a file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when the file cannot be read.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(Self::parse(path, &text))
    }

    /// Preprocesses source text (exposed for tests and fixtures).
    pub fn parse(path: &Path, text: &str) -> Self {
        let stripped = strip(text);
        let mut lines = Vec::with_capacity(stripped.len());
        let mut file_allows = Vec::new();
        let mut pending: Vec<Allow> = Vec::new();

        // Test-region tracking over the stripped code.
        let mut depth: usize = 0;
        let mut test_stack: Vec<usize> = Vec::new();
        let mut test_attr_armed = false;
        // Hot-path-region tracking: armed by a `lint: hot-path` comment (or
        // a `hot_path` fn name), the region opens at the next `{` — the fn
        // body — exactly like the test-attribute pattern above.
        let mut hot_stack: Vec<usize> = Vec::new();
        let mut hot_armed = false;
        // Loop tracking: `for`/`while`/`loop` arms a region opening at the
        // next `{`. Loops nest, so the stack may hold several depths.
        let mut loop_stack: Vec<usize> = Vec::new();
        let mut loop_armed = false;
        let mut fn_armed = false;
        // Builder tracking: a `(mut self` parameter list arms a region
        // opening at the next `{` — the consuming builder's body.
        let mut builder_stack: Vec<usize> = Vec::new();
        let mut builder_armed = false;

        for (idx, (code, comment)) in stripped.into_iter().enumerate() {
            let number = idx + 1;
            let mut allows: Vec<Allow> = Vec::new();
            for mut allow in parse_directives(&comment, number) {
                if allow.file_wide {
                    file_allows.push(allow);
                } else if code.trim().is_empty() {
                    // Comment-only line: applies to the next code line.
                    pending.push(allow);
                } else {
                    allow.file_wide = false;
                    allows.push(allow);
                }
            }
            let comment_only = code.trim().is_empty();
            if !comment_only {
                allows.append(&mut pending);
            }

            let in_test_before = !test_stack.is_empty();
            let in_hot_before = !hot_stack.is_empty();
            let in_loop_before = !loop_stack.is_empty();
            let in_builder_before = !builder_stack.is_empty();
            let mut saw_hot = false;
            let mut saw_loop = false;
            let mut saw_builder = false;
            if code.contains("#[cfg(test)]") || code.contains("#[test]") {
                test_attr_armed = true;
            }
            if comment.contains("lint: hot-path") {
                hot_armed = true;
            }
            if code.contains("(mut self") {
                builder_armed = true;
            }
            let bytes = code.as_bytes();
            let mut j = 0;
            while j < bytes.len() {
                let ch = bytes[j] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    // Read the maximal identifier/keyword word.
                    let start = j;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    match &code[start..j] {
                        "for" | "while" | "loop" => loop_armed = true,
                        "fn" => fn_armed = true,
                        word => {
                            if fn_armed {
                                fn_armed = false;
                                if word.contains("hot_path") {
                                    hot_armed = true;
                                }
                            }
                        }
                    }
                    continue;
                }
                match ch {
                    '{' => {
                        if test_attr_armed {
                            test_stack.push(depth);
                            test_attr_armed = false;
                        }
                        if hot_armed {
                            hot_stack.push(depth);
                            hot_armed = false;
                            saw_hot = true;
                        }
                        if loop_armed {
                            loop_stack.push(depth);
                            saw_loop = true;
                        }
                        if builder_armed {
                            builder_stack.push(depth);
                            builder_armed = false;
                            saw_builder = true;
                        }
                        loop_armed = false;
                        fn_armed = false;
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if test_stack.last().is_some_and(|&d| d >= depth) {
                            test_stack.pop();
                        }
                        if hot_stack.last().is_some_and(|&d| d >= depth) {
                            hot_stack.pop();
                        }
                        if builder_stack.last().is_some_and(|&d| d >= depth) {
                            builder_stack.pop();
                        }
                        while loop_stack.last().is_some_and(|&d| d >= depth) {
                            loop_stack.pop();
                        }
                    }
                    // `#[cfg(test)] use foo;` — attribute consumed
                    // without opening a body. Same for a stray hot-path
                    // directive over a non-fn item.
                    ';' if depth == 0 => {
                        test_attr_armed = false;
                        hot_armed = false;
                        fn_armed = false;
                        builder_armed = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            let in_test = in_test_before || !test_stack.is_empty() || test_attr_armed;
            let in_hot_path = in_hot_before || !hot_stack.is_empty() || saw_hot;
            let in_loop = in_loop_before || !loop_stack.is_empty() || saw_loop || loop_armed;
            let in_builder =
                in_builder_before || !builder_stack.is_empty() || saw_builder || builder_armed;

            lines.push(LineInfo {
                number,
                code,
                in_test,
                in_hot_path,
                in_loop,
                in_builder,
                allows,
            });
        }

        Self {
            path: path.to_path_buf(),
            lines,
            file_allows,
        }
    }

    /// The file-wide or per-line allow covering `rule` at `line`, if any.
    pub fn allow_for<'a>(&'a self, rule: &str, line: &'a LineInfo) -> Option<&'a Allow> {
        line.allows
            .iter()
            .chain(self.file_allows.iter())
            .find(|a| a.rule == rule)
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} lines)", self.path.display(), self.lines.len())
    }
}

/// Splits source text into per-line `(stripped code, comment text)` pairs.
fn strip(text: &str) -> Vec<(String, String)> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out: Vec<(String, String)> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match state {
            State::Normal => match (c, next) {
                ('/', Some('/')) => {
                    state = State::LineComment;
                    i += 2;
                }
                ('/', Some('*')) => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                ('"', _) => {
                    // Keep the quotes so tokens cannot merge across them.
                    code.push('"');
                    state = State::Str;
                    i += 1;
                }
                ('r', Some('"' | '#')) if is_raw_string_start(&chars, i) => {
                    let hashes = count_hashes(&chars, i + 1);
                    code.push('"');
                    state = State::RawStr(hashes);
                    i += 2 + hashes; // r, hashes, opening quote
                }
                // Byte raw strings `br"..."` / `br#"..."#` have NO escape
                // processing — they must take the RawStr path, not Str, or a
                // trailing `\` in the content swallows the closing quote.
                ('b', Some('r')) if !prev_is_ident(&chars, i) && raw_quote_after(&chars, i + 1) => {
                    let hashes = count_hashes(&chars, i + 2);
                    code.push('"');
                    state = State::RawStr(hashes);
                    i += 3 + hashes; // b, r, hashes, opening quote
                }
                ('\'', _) => {
                    // Distinguish lifetimes from char literals: a lifetime is
                    // `'ident` NOT followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && chars.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        // Consume the whole lifetime name: its identifier
                        // chars must not re-enter the normal state, where a
                        // leading `r`/`br` would read as a raw-string prefix
                        // (`'r"…"` is a lifetime then a plain string).
                        code.push('\'');
                        i += 1;
                        while chars
                            .get(i)
                            .copied()
                            .is_some_and(|ch| ch.is_alphanumeric() || ch == '_')
                        {
                            code.push(chars[i]);
                            i += 1;
                        }
                    } else {
                        code.push('\'');
                        state = State::Char;
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(d) => match (c, next) {
                ('*', Some('/')) => {
                    state = if d == 1 {
                        // One space marks the removed comment, so the code
                        // on either side cannot splice into a new token
                        // (`un/*…*/safe`, or a lifetime meeting a quote) —
                        // which also makes stripping idempotent.
                        code.push(' ');
                        State::Normal
                    } else {
                        State::BlockComment(d - 1)
                    };
                    i += 2;
                }
                ('/', Some('*')) => {
                    state = State::BlockComment(d + 1);
                    i += 2;
                }
                _ => {
                    comment.push(c);
                    i += 1;
                }
            },
            State::Str => match (c, next) {
                ('\\', Some(_)) => i += 2,
                ('"', _) => {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code.push('"');
                    state = State::Normal;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::Char => match (c, next) {
                ('\\', Some(_)) => i += 2,
                ('\'', _) => {
                    code.push('\'');
                    state = State::Normal;
                    i += 1;
                }
                _ => i += 1,
            },
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.push((code, comment));
    }
    out
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"..."` or `r#..#"..."#..#` — but NOT an identifier like `raw`.
    !prev_is_ident(chars, i) && raw_quote_after(chars, i)
}

/// True when the character before `i` continues an identifier, i.e. the
/// `r`/`b` at `i` is the tail of a name like `raw` rather than a prefix.
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && {
        let prev = chars[i - 1];
        prev.is_alphanumeric() || prev == '_'
    }
}

/// True when position `i` is followed by zero or more `#` and then `"` —
/// the hash-run/opening-quote shape shared by `r`- and `br`-prefixed raws.
fn raw_quote_after(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

fn count_hashes(chars: &[char], mut i: usize) -> usize {
    let mut n = 0;
    while chars.get(i).copied() == Some('#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Extracts `lint: allow(...)` directives from a line's comment text.
fn parse_directives(comment: &str, line: usize) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let after = &rest[pos + "lint: allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let inner = &after[..close];
        let tail = &after[close + 1..];
        let mut parts = inner.splitn(2, ',');
        let rule = parts.next().unwrap_or("").trim().to_string();
        let file_wide = parts
            .next()
            .is_some_and(|scope| scope.trim().eq_ignore_ascii_case("file"));
        let justification = tail
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['—', '-', ':', '–'])
            .trim()
            .to_string();
        if !rule.is_empty() {
            out.push(Allow {
                rule,
                justification,
                file_wide,
                line,
            });
        }
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(Path::new("mem.rs"), text)
    }

    #[test]
    fn strips_line_and_block_comments() {
        let f = parse("let a = 1; // unwrap()\nlet b = /* panic! */ 2;\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains("panic"));
        assert!(f.lines[1].code.contains("let b ="));
    }

    #[test]
    fn strips_nested_block_comments() {
        let f = parse("a /* x /* y */ z */ b\n");
        assert_eq!(
            f.lines[0].code.split_whitespace().collect::<Vec<_>>(),
            ["a", "b"]
        );
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let f = parse("let s = \"call .unwrap() now\";\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("\"\""));
    }

    #[test]
    fn blanks_raw_strings_and_chars() {
        let f = parse("let s = r#\"panic!\"#; let c = '['; let l: &'static str = \"\";\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("panic"));
        assert!(!code.contains('['));
        assert!(code.contains("'static"));
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let f = parse("let s = \"a\\\"b.unwrap()\"; x\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.ends_with(" x"));
    }

    #[test]
    fn blanks_multi_hash_raw_strings() {
        // `"#` inside an `r##` raw must not terminate it early.
        let f = parse("let s = r##\"has \"# inside .unwrap()\"##; tail();\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("unwrap"), "content leaked: {code}");
        assert!(code.contains("tail()"), "code after literal lost: {code}");
        let g = parse("let s = r###\"x\"## .unwrap() \"###; tail();\n");
        assert!(!g.lines[0].code.contains("unwrap"));
        assert!(g.lines[0].code.contains("tail()"));
    }

    #[test]
    fn blanks_byte_strings() {
        let f = parse("let s = b\"call .unwrap()\"; tail();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("tail()"));
    }

    #[test]
    fn blanks_byte_raw_strings() {
        // br-raws have no escapes: a trailing backslash is literal content
        // and must not swallow the closing quote (and the rest of the line).
        let f = parse("let t = br\"x\\\"; z.unwrap();\n");
        assert!(!f.lines[0].code.contains('x'), "content leaked");
        assert!(
            f.lines[0].code.contains("z.unwrap()"),
            "code after literal lost: {}",
            f.lines[0].code
        );
        let g = parse("let s = br#\"say \\\" .unwrap()\"#; tail();\n");
        assert!(!g.lines[0].code.contains("unwrap"));
        assert!(g.lines[0].code.contains("tail()"));
        // An identifier ending in `br` followed by generics is untouched.
        let h = parse("let v = abr\"s\"; keep();\n");
        assert!(h.lines[0].code.contains("abr"));
        assert!(h.lines[0].code.contains("keep()"));
    }

    #[test]
    fn marks_cfg_test_regions() {
        let text = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = parse(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test); // the attribute line itself
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_poison_rest_of_file() {
        let text = "#[cfg(test)]\nuse foo::bar;\nfn prod() { x.unwrap(); }\n";
        let f = parse(text);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn same_line_allow_applies_to_line() {
        let f = parse("x.unwrap(); // lint: allow(panic-site) — contract documented upstream\n");
        assert_eq!(f.lines[0].allows.len(), 1);
        let a = &f.lines[0].allows[0];
        assert_eq!(a.rule, "panic-site");
        assert!(a.justified());
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let f = parse("// lint: allow(indexing) — bounded by construction above\nlet y = v[0];\n");
        assert!(f.lines[0].allows.is_empty());
        assert_eq!(f.lines[1].allows.len(), 1);
        assert_eq!(f.lines[1].allows[0].rule, "indexing");
    }

    #[test]
    fn file_wide_allow_collected_separately() {
        let f = parse(
            "// lint: allow(indexing, file) — dense arrays sized at construction\nfn a() {}\n",
        );
        assert_eq!(f.file_allows.len(), 1);
        assert!(f.file_allows[0].file_wide);
        assert!(f.allow_for("indexing", &f.lines[1]).is_some());
    }

    #[test]
    fn hot_path_directive_marks_fn_body() {
        let text = "// lint: hot-path — per-cycle stepper\nfn step_cycle(&mut self) {\n    let x = 1;\n}\nfn cold() { let y = 2; }\n";
        let f = parse(text);
        assert!(f.lines[1].in_hot_path, "fn header line");
        assert!(f.lines[2].in_hot_path, "body line");
        assert!(f.lines[3].in_hot_path, "closing brace line");
        assert!(!f.lines[4].in_hot_path, "next fn is cold");
    }

    #[test]
    fn hot_path_fn_name_marks_body() {
        let f = parse("fn route_hot_path(&self) {\n    let x = 1;\n}\n");
        assert!(f.lines[1].in_hot_path);
    }

    #[test]
    fn loops_are_tracked_with_nesting() {
        let text = "fn f() {\n    let a = 0;\n    for i in 0..4 {\n        inner();\n        while go() {\n            deep();\n        }\n    }\n    let b = 1;\n}\n";
        let f = parse(text);
        assert!(!f.lines[1].in_loop, "before the loop");
        assert!(f.lines[2].in_loop, "for header");
        assert!(f.lines[3].in_loop, "loop body");
        assert!(f.lines[5].in_loop, "nested while body");
        assert!(f.lines[7].in_loop, "still inside for");
        assert!(!f.lines[8].in_loop, "after the loop");
    }

    #[test]
    fn for_each_and_identifiers_do_not_arm_loops() {
        let f = parse("fn f() {\n    items.for_each(|x| use_it(x));\n    let looping = 3;\n}\n");
        assert!(!f.lines[1].in_loop);
        assert!(!f.lines[2].in_loop);
    }

    #[test]
    fn builder_methods_mark_their_bodies() {
        let text = "impl P {\n    pub fn with_policy(mut self, p: u64) -> Self {\n        self.policy = p;\n        self\n    }\n    pub fn apply(&mut self, p: u64) {\n        self.policy = p;\n    }\n}\n";
        let f = parse(text);
        assert!(f.lines[1].in_builder, "builder header line");
        assert!(f.lines[2].in_builder, "builder body line");
        assert!(f.lines[4].in_builder, "builder closing brace");
        assert!(!f.lines[5].in_builder, "&mut self method is not a builder");
        assert!(!f.lines[6].in_builder, "&mut self body is not a builder");
    }

    #[test]
    fn unjustified_allow_detected() {
        let f = parse("x.unwrap(); // lint: allow(panic-site)\n");
        assert!(!f.lines[0].allows[0].justified());
        let g = parse("x.unwrap(); // lint: allow(panic-site) — ok\n");
        assert!(!g.lines[0].allows[0].justified());
    }

    #[test]
    fn padding_justification_rejected() {
        // Long enough, but pure punctuation — not an explanation.
        let f = parse("x.unwrap(); // lint: allow(panic-site) — -------------\n");
        assert!(!f.lines[0].allows[0].justified());
        let g = parse("x.unwrap(); // lint: allow(panic-site) — . . . . . . . .\n");
        assert!(!g.lines[0].allows[0].justified());
        let h = parse("x.unwrap(); // lint: allow(panic-site) — checked above\n");
        assert!(h.lines[0].allows[0].justified());
    }
}
