//! Workspace static analysis for the I/O-GUARD reproduction.
//!
//! Two layers, both deterministic and dependency-free (the workspace builds
//! offline against vendored stubs, so there is no `syn` here):
//!
//! * **Layer 1 — source lints** ([`scan`], [`rules`]): a token/line-level
//!   analyzer enforcing the invariants PR 1 made load-bearing — panic-free
//!   hypervisor/sched/NoC library code, checked/saturating `u64` time
//!   arithmetic, no hash-ordered containers or wall clocks on the
//!   deterministic-simulation path, and `#![forbid(unsafe_code)]` in every
//!   crate root. Exceptions go through `// lint: allow(<rule>)` directives
//!   with mandatory justification text.
//! * **Layer 2 — model verifier** ([`model`], [`fig7`]): a static
//!   [`model::ConfigVerifier`] certifying full system configurations before
//!   simulation — σ\* well-formedness against Eqs. 1–2, periodic-server
//!   sanity, I/O-pool capacity bounds, NoC deadlock-freedom via
//!   channel-dependency-graph cycle detection, and (opt-in) the Theorem 1/3
//!   admission tests.
//!
//! The `ioguard-lint` binary wires both into `cargo run -p ioguard-lint --
//! check`, which CI runs on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faultplan;
pub mod fig7;
pub mod model;
pub mod rules;
pub mod scan;

use std::path::Path;

use model::{ConfigVerifier, SystemModel};
use rules::{RuleSet, Violation};
use scan::SourceFile;

/// File extension of model files.
pub const MODEL_EXT: &str = "model";

/// File extension of chaos fault-plan fixtures.
pub const FAULT_EXT: &str = "fault";

/// Lints every workspace crate under `root/crates` with its crate-scoped
/// rule set, including the `#![forbid(unsafe_code)]` crate-root check.
/// Returns the violations and the number of files scanned.
pub fn check_workspace(root: &Path) -> Result<(Vec<Violation>, usize), String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    if crate_dirs.is_empty() {
        return Err(format!("no crates under {}", crates_dir.display()));
    }
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        scanned += rules::lint_tree(&src, RuleSet::for_crate(&name), &mut violations)?;
        let lib = src.join("lib.rs");
        if lib.is_file() {
            rules::check_forbid_unsafe(&SourceFile::load(&lib)?, &mut violations);
        }
    }
    Ok((violations, scanned))
}

/// Verifies the Fig. 7 experiment configurations (constructed in-process
/// from the same generator and P-channel layout the case study uses).
pub fn check_fig7() -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for model in fig7::fig7_models()? {
        violations.extend(ConfigVerifier::verify(&model));
    }
    Ok(violations)
}

/// Checks explicit paths (fixture mode): `.rs` files get every source rule
/// regardless of crate scope, `.model` files are parsed and verified, and
/// `.fault` chaos fixtures go through the fault-plan verifier.
pub fn check_paths(paths: &[&Path]) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for path in paths {
        match path.extension().and_then(|e| e.to_str()) {
            Some("rs") => {
                let file = SourceFile::load(path)?;
                rules::lint_file(&file, RuleSet::all(), &mut violations);
            }
            Some(ext) if ext == MODEL_EXT => match SystemModel::load(path) {
                Ok(model) => violations.extend(ConfigVerifier::verify(&model)),
                Err(v) => violations.push(v),
            },
            Some(ext) if ext == FAULT_EXT => {
                faultplan::check_fault_file(path, &mut violations)?;
            }
            _ => {
                return Err(format!(
                    "{}: expected a .rs, .{MODEL_EXT} or .{FAULT_EXT} file",
                    path.display()
                ))
            }
        }
    }
    Ok(violations)
}
