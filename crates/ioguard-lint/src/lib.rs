//! Workspace static analysis for the I/O-GUARD reproduction.
//!
//! Two layers, both deterministic and dependency-free (the workspace builds
//! offline against vendored stubs, so there is no `syn` here):
//!
//! * **Layer 1 — source lints** ([`scan`], [`rules`]): a token/line-level
//!   analyzer enforcing the invariants PR 1 made load-bearing — panic-free
//!   hypervisor/sched/NoC library code, checked/saturating `u64` time
//!   arithmetic, no hash-ordered containers or wall clocks on the
//!   deterministic-simulation path, and `#![forbid(unsafe_code)]` in every
//!   crate root. Exceptions go through `// lint: allow(<rule>)` directives
//!   with mandatory justification text.
//! * **Layer 2 — model verifier** ([`model`], [`fig7`]): a static
//!   [`model::ConfigVerifier`] certifying full system configurations before
//!   simulation — σ\* well-formedness against Eqs. 1–2, periodic-server
//!   sanity, I/O-pool capacity bounds, NoC deadlock-freedom via
//!   channel-dependency-graph cycle detection, and (opt-in) the Theorem 1/3
//!   admission tests.
//!
//! The `ioguard-lint` binary wires both into `cargo run -p ioguard-lint --
//! check`, which CI runs on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faultplan;
pub mod fig7;
pub mod graph;
pub mod model;
pub mod rules;
pub mod scan;

use std::path::Path;

use model::{ConfigVerifier, SystemModel};
use rules::{RuleSet, Violation};
use scan::SourceFile;

/// File extension of model files.
pub const MODEL_EXT: &str = "model";

/// File extension of chaos fault-plan fixtures.
pub const FAULT_EXT: &str = "fault";

/// Lints every workspace crate under `root/crates` with its crate-scoped
/// rule set, including the `#![forbid(unsafe_code)]` crate-root check and
/// the workspace-wide concurrency pass ([`graph::check_concurrency`]).
/// Returns the violations and the number of files scanned.
pub fn check_workspace(root: &Path) -> Result<(Vec<Violation>, usize), String> {
    check_workspace_threaded(root, 1)
}

/// [`check_workspace`] with per-file scanning spread over the
/// work-stealing engine. Per-file results are scattered back in the sorted
/// (crate, path) work-list order and the concurrency pass runs once over
/// the merged model, so the violation list is identical at any thread
/// count.
pub fn check_workspace_threaded(
    root: &Path,
    threads: usize,
) -> Result<(Vec<Violation>, usize), String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    if crate_dirs.is_empty() {
        return Err(format!("no crates under {}", crates_dir.display()));
    }
    // Work list: (rules, path, is-crate-root) per file, in deterministic
    // (crate, path) order.
    let mut jobs: Vec<(RuleSet, std::path::PathBuf, bool)> = Vec::new();
    for dir in &crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let rules = RuleSet::for_crate(&name);
        for path in rules::collect_rs_files(&src)? {
            let is_root = path == src.join("lib.rs");
            jobs.push((rules, path, is_root));
        }
    }
    let (results, _) = ioguard_core::engine::run_indexed(threads, &jobs, |_, job| {
        let (rules, path, is_root) = job;
        SourceFile::load(path).map(|file| {
            let mut v = Vec::new();
            rules::lint_file(&file, *rules, &mut v);
            if *is_root {
                rules::check_forbid_unsafe(&file, &mut v);
            }
            (file, v)
        })
    });
    let mut violations = Vec::new();
    let mut files = Vec::with_capacity(results.len());
    for r in results {
        let (file, v) = r?;
        violations.extend(v);
        files.push(file);
    }
    let scanned = files.len();
    violations.extend(graph::check_concurrency(&files));
    Ok((violations, scanned))
}

/// Verifies the Fig. 7 experiment configurations (constructed in-process
/// from the same generator and P-channel layout the case study uses).
pub fn check_fig7() -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for model in fig7::fig7_models()? {
        violations.extend(ConfigVerifier::verify(&model));
    }
    Ok(violations)
}

/// Checks explicit paths (fixture mode): `.rs` files get every source rule
/// regardless of crate scope plus the concurrency pass (one model over all
/// listed `.rs` files), `.model` files are parsed and verified, and
/// `.fault` chaos fixtures go through the fault-plan verifier.
pub fn check_paths(paths: &[&Path]) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let mut sources: Vec<SourceFile> = Vec::new();
    for path in paths {
        match path.extension().and_then(|e| e.to_str()) {
            Some("rs") => {
                let file = SourceFile::load(path)?;
                rules::lint_file(&file, RuleSet::all(), &mut violations);
                sources.push(file);
            }
            Some(ext) if ext == MODEL_EXT => match SystemModel::load(path) {
                Ok(model) => violations.extend(ConfigVerifier::verify(&model)),
                Err(v) => violations.push(v),
            },
            Some(ext) if ext == FAULT_EXT => {
                faultplan::check_fault_file(path, &mut violations)?;
            }
            _ => {
                return Err(format!(
                    "{}: expected a .rs, .{MODEL_EXT} or .{FAULT_EXT} file",
                    path.display()
                ))
            }
        }
    }
    violations.extend(graph::check_concurrency(&sources));
    Ok(violations)
}
