//! Layer 2b: the `.fault` fixture verifier.
//!
//! Chaos fixtures (`*.fault`, consumed by `ioguard-faults::FaultPlan`) are
//! flat `key = value` files. This module re-implements their parsing and
//! static constraints *standalone* — `ioguard-lint` deliberately depends on
//! nothing in the workspace, so the format is mirrored here rather than
//! imported; `ioguard-faults` carries a round-trip test pinning the two
//! views of the format together.
//!
//! Constraints certified before a plan is allowed near CI:
//!
//! * every `*_rate` lies in `[0, 1]` and is finite — a NaN or out-of-range
//!   rate silently skews a chance comparison instead of erroring at run
//!   time;
//! * `retry_budget ≤ 16` — the watchdog's worst-case recovery latency is a
//!   function of the retry budget, so an unbounded budget voids the bounded-
//!   recovery guarantee;
//! * `burst_packets` and `device_stall_slots` are positive — a zero-length
//!   burst or stall is a fixture typo, not a quiet plan.

use std::path::Path;

use crate::rules::Violation;

/// Fault-fixture rule identifiers.
pub mod fault_rule {
    /// The fixture could not be parsed (syntax, unknown key, bad value).
    pub const PARSE: &str = "fault-parse";
    /// A probability is outside `[0, 1]` or not finite.
    pub const RATE: &str = "fault-rate";
    /// The retry budget exceeds the bounded-recovery limit.
    pub const RETRY: &str = "fault-retry-budget";
    /// A length field that must be positive is zero.
    pub const POSITIVE: &str = "fault-positive";
}

/// Retry-budget bound; mirrors `ioguard_faults::plan::MAX_RETRY_BUDGET`.
pub const MAX_RETRY_BUDGET: u64 = 16;

/// The probability-valued keys of the format.
const RATE_KEYS: [&str; 6] = [
    "link_down_rate",
    "drop_rate",
    "corrupt_rate",
    "burst_rate",
    "device_stall_rate",
    "malformed_rate",
];

/// The integer-valued keys of the format.
const INT_KEYS: [&str; 7] = [
    "seed",
    "burst_packets",
    "device_stall_slots",
    "retry_budget",
    "adversary",
    "adversary_flood",
    "wcet_overrun",
];

/// Lengths that must be positive, with their defaults when omitted.
const POSITIVE_KEYS: [(&str, u64); 2] = [("burst_packets", 4), ("device_stall_slots", 8)];

/// Parses and verifies one `.fault` fixture, appending every violation
/// found (empty = certified).
pub fn check_fault_plan(path: &Path, text: &str, out: &mut Vec<Violation>) {
    let v = |rule: &'static str, line: usize, message: String| Violation {
        rule,
        path: path.to_path_buf(),
        line,
        message,
    };
    let mut ints: Vec<(&str, u64, usize)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let n = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.push(v(fault_rule::PARSE, n, "expected `key = value`".into()));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if RATE_KEYS.contains(&key) {
            match value.parse::<f64>() {
                Ok(rate) if (0.0..=1.0).contains(&rate) => {}
                Ok(rate) => out.push(v(
                    fault_rule::RATE,
                    n,
                    format!("{key} = {rate} outside [0, 1]"),
                )),
                Err(e) => out.push(v(fault_rule::PARSE, n, format!("{key}: {e}"))),
            }
        } else if INT_KEYS.contains(&key) {
            match value.parse::<u64>() {
                Ok(int) => ints.push((key, int, n)),
                Err(e) => out.push(v(fault_rule::PARSE, n, format!("{key}: {e}"))),
            }
        } else {
            out.push(v(fault_rule::PARSE, n, format!("unknown key `{key}`")));
        }
    }
    for &(key, int, n) in &ints {
        if key == "retry_budget" && int > MAX_RETRY_BUDGET {
            out.push(v(
                fault_rule::RETRY,
                n,
                format!("retry_budget = {int} exceeds bound {MAX_RETRY_BUDGET} — watchdog recovery latency becomes unbounded"),
            ));
        }
    }
    for (key, _default) in POSITIVE_KEYS {
        // A key left at its (positive) default is fine; only an explicit
        // zero is a violation.
        if let Some(&(_, _, n)) = ints.iter().find(|(k, int, _)| *k == key && *int == 0) {
            out.push(v(
                fault_rule::POSITIVE,
                n,
                format!("{key} must be positive"),
            ));
        }
    }
}

/// Loads and verifies a `.fault` fixture from disk.
pub fn check_fault_file(path: &Path, out: &mut Vec<Violation>) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    check_fault_plan(path, &text, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn check(text: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        check_fault_plan(Path::new("mem.fault"), text, &mut out);
        out
    }

    #[test]
    fn clean_plan_passes() {
        let v = check(
            "# battery plan\nseed = 42\ndrop_rate = 0.1\nadversary = 1\n\
             adversary_flood = 6\nretry_budget = 3\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn out_of_range_rate_flagged_with_line() {
        let v = check("seed = 1\ndrop_rate = 1.5\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, fault_rule::RATE);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn nan_rate_is_rejected() {
        let v = check("corrupt_rate = NaN\n");
        assert!(v.iter().any(|v| v.rule == fault_rule::RATE), "{v:?}");
    }

    #[test]
    fn unbounded_retry_budget_flagged() {
        let v = check("retry_budget = 99\n");
        assert!(v.iter().any(|v| v.rule == fault_rule::RETRY), "{v:?}");
    }

    #[test]
    fn zero_lengths_flagged() {
        let v = check("burst_packets = 0\ndevice_stall_slots = 0\n");
        assert_eq!(
            v.iter().filter(|v| v.rule == fault_rule::POSITIVE).count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn unknown_keys_and_syntax_errors_flagged() {
        let v = check("bogus = 1\nno equals sign\nseed = banana\n");
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == fault_rule::PARSE));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let v = check("drop_rate = 2.0\nburst_rate = -0.1\nretry_budget = 17\n");
        assert_eq!(v.len(), 3, "{v:?}");
    }
}
