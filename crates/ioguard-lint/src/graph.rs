//! Layer 1.5 — the interprocedural concurrency model.
//!
//! PR 6 introduced real shared-memory concurrency (`ParallelNetwork`:
//! mutex-guarded hand-off channels, a sense-reversing `EpochSync` barrier,
//! atomics), which per-line token scans cannot reason about: a lock-order
//! inversion involves two functions, and a guard held across a barrier wait
//! is a *liveness* property of a span of code, not a single line.
//!
//! This module builds a lightweight item model on top of the stripped-line
//! scanner ([`crate::scan`]) — no `syn`, the workspace builds offline:
//!
//! * **function spans** found by `fn name` headers and brace depth; bodies
//!   under `#[cfg(test)]` are skipped entirely;
//! * a **call graph** by callee-name matching (`foo(...)`, `x.foo(...)`,
//!   `T::foo(...)` all resolve to every workspace `fn foo`); an
//!   over-approximation, kept honest by the allow escape hatch;
//! * per-function **summaries**: lock acquisitions (`.lock()` with the
//!   receiver's field name), the guard's live range (a `let`-bound guard
//!   lives until its block closes or an explicit `drop(guard)`; an unbound
//!   temporary dies with its statement), barrier waits (`.arrive(` /
//!   `.wait(` and functions named like barriers), hand-off-queue drains,
//!   `Ordering::*` atomic accesses, and blocking operations.
//!
//! Four rules run over the model (see [`check_concurrency`]):
//!
//! * [`rule::LOCK_ORDER`] — the workspace lock-acquisition graph, closed
//!   over calls, must be acyclic (a cycle means two threads can take the
//!   same mutexes in opposite orders and deadlock);
//! * [`rule::LOCK_ACROSS_BARRIER`] — no guard may be live at a barrier
//!   wait, directly or through a call whose summary reaches one (the peer
//!   region would block on the mutex while this thread blocks on the
//!   barrier: the PDES protocol requires all guards released before
//!   `EpochSync::arrive`);
//! * [`rule::RELAXED_ORDERING`] — on atomic fields that are both read and
//!   written (the cross-thread ones), `Ordering::Relaxed` and unpaired
//!   `Acquire`/`Release` need a justified allow;
//! * [`rule::BLOCKING_IN_HOT_PATH`] — lock/park/sleep/join reachable from
//!   a `// lint: hot-path` function.
//!
//! Known under-approximations, documented so nobody mistakes this for a
//! type-system guarantee: guards *returned* from a function (e.g.
//! `Channel::lock`) are not tracked into the caller; atomics only count
//! when the accessor and its `Ordering::` sit on one line (rustfmt keeps
//! the workspace that way); call resolution is by simple name.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::rules::{contains_token, find_handoff_drain, is_ident_char, rule, Violation};
use crate::scan::SourceFile;

/// How an atomic access touches its field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// `.load(..)`.
    Load,
    /// `.store(..)`.
    Store,
    /// `fetch_*` / `swap` / `compare_exchange*` — reads *and* writes.
    Rmw,
}

/// A reportable source position plus the rules allowed there, resolved at
/// extraction time so the checks never need the [`SourceFile`] back.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based line number.
    pub line: usize,
    /// Rule names allowed at this line (per-line or file-wide directives).
    pub allows: Vec<String>,
}

impl Site {
    fn allows(&self, rule_name: &str) -> bool {
        self.allows.iter().any(|r| r == rule_name)
    }
}

/// One `.lock()` acquisition.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Field name of the mutex (last path segment of the receiver).
    pub lock: String,
    /// Where.
    pub site: Site,
}

/// One atomic access with an explicit ordering.
#[derive(Debug, Clone)]
pub struct AtomicAccess {
    /// Field name of the atomic.
    pub field: String,
    /// Read / write / read-modify-write.
    pub kind: AtomicKind,
    /// The `Ordering::` variant name (`Relaxed`, `Acquire`, ...).
    pub ordering: String,
    /// Where.
    pub site: Site,
}

/// One call site, with the locks whose guards were live when it ran.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee simple name.
    pub callee: String,
    /// Where.
    pub site: Site,
    /// Lock names held (live `let`-bound guards) at the call.
    pub held: Vec<String>,
}

/// One blocking operation (also feeds the hot-path rule).
#[derive(Debug, Clone)]
pub struct BlockingOp {
    /// The matched token, e.g. `.lock()` or `thread::sleep`.
    pub token: &'static str,
    /// Where.
    pub site: Site,
}

/// Summary of one function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Simple name from the `fn` header.
    pub name: String,
    /// File it lives in.
    pub path: PathBuf,
    /// 1-based line of the body-opening `{`.
    pub line: usize,
    /// Marked as a per-cycle hot path (`// lint: hot-path` or name).
    pub hot: bool,
    /// Direct lock acquisitions.
    pub locks: Vec<LockAcq>,
    /// (held, acquired) pairs observed directly in this body.
    pub lock_pairs: Vec<(String, String, Site)>,
    /// Direct barrier waits, with the locks held at each.
    pub barriers: Vec<(Site, Vec<String>)>,
    /// Call sites.
    pub calls: Vec<CallSite>,
    /// Atomic accesses with explicit orderings.
    pub atomics: Vec<AtomicAccess>,
    /// Blocking operations.
    pub blocking: Vec<BlockingOp>,
    /// Hand-off-queue drains (`inbox.pop_front()` and friends).
    pub drains: Vec<Site>,
}

/// The workspace model: every function summary plus a name index.
#[derive(Debug, Default)]
pub struct CodeGraph {
    /// All extracted functions, in (file, line) order.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Blocking tokens for [`rule::BLOCKING_IN_HOT_PATH`]. `.join()` must be
/// argless so `Path::join(..)` / `str::join(..)` never match.
const BLOCKING_TOKENS: &[&str] = &[
    ".lock()",
    "thread::sleep",
    "thread::park",
    "::park(",
    ".join()",
    ".recv()",
];

/// Atomic accessor tokens and their access kinds.
const ATOMIC_TOKENS: &[(&str, AtomicKind)] = &[
    (".load(", AtomicKind::Load),
    (".store(", AtomicKind::Store),
    (".swap(", AtomicKind::Rmw),
    (".fetch_add(", AtomicKind::Rmw),
    (".fetch_sub(", AtomicKind::Rmw),
    (".fetch_and(", AtomicKind::Rmw),
    (".fetch_or(", AtomicKind::Rmw),
    (".fetch_xor(", AtomicKind::Rmw),
    (".fetch_max(", AtomicKind::Rmw),
    (".fetch_min(", AtomicKind::Rmw),
    (".compare_exchange(", AtomicKind::Rmw),
    (".compare_exchange_weak(", AtomicKind::Rmw),
];

/// Words that look like calls but are not.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "mut", "ref", "move",
    "else", "fn", "impl", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "where", "unsafe", "dyn", "box", "self", "super", "crate",
];

/// A `let`-bound guard live inside an open function.
#[derive(Debug)]
struct Guard {
    lock: String,
    /// Brace depth at the end of the declaring line; released when the
    /// walker's depth drops below it.
    decl_depth: usize,
    binding: Option<String>,
}

/// An open function on the walker's stack.
#[derive(Debug)]
struct OpenFn {
    idx: usize,
    /// Depth *before* the body `{` — the fn closes when depth returns here.
    body_depth: usize,
    guards: Vec<Guard>,
}

impl CodeGraph {
    /// Extracts function summaries from preprocessed files and indexes them
    /// by simple name.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut graph = CodeGraph::default();
        for file in files {
            extract_file(file, &mut graph.fns);
        }
        for (idx, f) in graph.fns.iter().enumerate() {
            graph.by_name.entry(f.name.clone()).or_default().push(idx);
        }
        graph
    }

    /// All function indices a callee name resolves to.
    fn resolve(&self, callee: &str) -> &[usize] {
        self.by_name.get(callee).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Walks one file, appending extracted functions to `fns`.
fn extract_file(file: &SourceFile, fns: &mut Vec<FnInfo>) {
    let mut depth: usize = 0;
    let mut stack: Vec<OpenFn> = Vec::new();
    let mut pending_fn: Option<String> = None;

    for line in &file.lines {
        let code = line.code.as_str();
        let fn_at_start = stack.last().map(|o| o.idx);
        let mut opened_this_line: Option<usize> = None;

        // Pass 1: braces, fn headers, guard-scope closure. Runs on every
        // line (test regions included) to keep the depth tracker honest.
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        let mut expect_name = false;
        while i < chars.len() {
            let c = chars[i];
            if is_ident_char(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "fn" {
                    expect_name = true;
                } else if expect_name {
                    expect_name = false;
                    if !line.in_test {
                        pending_fn = Some(word);
                    }
                }
                continue;
            }
            match c {
                '{' => {
                    if let Some(name) = pending_fn.take() {
                        let idx = fns.len();
                        fns.push(FnInfo {
                            name,
                            path: file.path.clone(),
                            line: line.number,
                            hot: line.in_hot_path,
                            locks: Vec::new(),
                            lock_pairs: Vec::new(),
                            barriers: Vec::new(),
                            calls: Vec::new(),
                            atomics: Vec::new(),
                            blocking: Vec::new(),
                            drains: Vec::new(),
                        });
                        stack.push(OpenFn {
                            idx,
                            body_depth: depth,
                            guards: Vec::new(),
                        });
                        opened_this_line = Some(idx);
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while stack.last().is_some_and(|o| o.body_depth >= depth) {
                        stack.pop();
                    }
                    if let Some(open) = stack.last_mut() {
                        open.guards.retain(|g| g.decl_depth <= depth);
                    }
                }
                // A trait method signature (`fn f(..);`) has no body.
                ';' => {
                    pending_fn = None;
                    expect_name = false;
                }
                _ => {}
            }
            i += 1;
        }

        if line.in_test {
            continue;
        }
        // Pass 2: events, attributed to the innermost function live on this
        // line — the one opened here if any, else the one open at its start.
        let target = opened_this_line.or(fn_at_start);
        let Some(idx) = target else { continue };
        let site = Site {
            line: line.number,
            allows: line
                .allows
                .iter()
                .chain(file.file_allows.iter())
                .map(|a| a.rule.clone())
                .collect(),
        };
        let held: Vec<String> = stack
            .iter()
            .rev()
            .find(|o| o.idx == idx)
            .map(|o| o.guards.iter().map(|g| g.lock.clone()).collect())
            .unwrap_or_default();
        let info = &mut fns[idx];

        // Lock acquisitions + held-pair edges.
        let lock_names = accessor_fields(code, ".lock()");
        for (lock, _) in &lock_names {
            info.locks.push(LockAcq {
                lock: lock.clone(),
                site: site.clone(),
            });
            for h in &held {
                info.lock_pairs
                    .push((h.clone(), lock.clone(), site.clone()));
            }
        }

        // Barrier waits.
        if contains_token(code, ".arrive(") || contains_token(code, ".wait(") {
            info.barriers.push((site.clone(), held.clone()));
        }

        // Calls.
        for callee in call_names(code) {
            info.calls.push(CallSite {
                callee,
                site: site.clone(),
                held: held.clone(),
            });
        }

        // Atomic accesses: accessor and `Ordering::` must share the line.
        if code.contains("Ordering::") {
            for (token, kind) in ATOMIC_TOKENS {
                for (field, at) in accessor_fields(code, token) {
                    for ordering in orderings_after(code, at, token.len()) {
                        info.atomics.push(AtomicAccess {
                            field: field.clone(),
                            kind: *kind,
                            ordering,
                            site: site.clone(),
                        });
                    }
                }
            }
        }

        // Blocking operations.
        for token in BLOCKING_TOKENS {
            if contains_token(code, token) {
                info.blocking.push(BlockingOp {
                    token,
                    site: site.clone(),
                });
            }
        }

        // Hand-off drains.
        if find_handoff_drain(code).is_some() {
            info.drains.push(site.clone());
        }

        // Register this line's guards *after* events: the held set above is
        // the state before the statement executes.
        if !lock_names.is_empty() {
            if let Some(binding) = let_binding(code) {
                if let Some(open) = stack.iter_mut().rev().find(|o| o.idx == idx) {
                    let single = lock_names.len() == 1;
                    for (lock, _) in &lock_names {
                        open.guards.push(Guard {
                            lock: lock.clone(),
                            decl_depth: depth,
                            binding: single.then(|| binding.clone()),
                        });
                    }
                }
            }
        }
        // Explicit `drop(guard)` releases by binding name.
        for dropped in drop_args(code) {
            if let Some(open) = stack.iter_mut().rev().find(|o| o.idx == idx) {
                open.guards
                    .retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
            }
        }
    }
}

/// Every occurrence of `token` in `code`, with the receiver's field name
/// (last path segment) and the byte offset of the match.
fn accessor_fields(code: &str, token: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let name = receiver_field(code, at);
        if !name.is_empty() {
            out.push((name, at));
        }
        start = at + token.len();
    }
    out
}

/// The field name of the receiver ending at byte offset `at`: the leading
/// identifier of the last depth-0 `.`-segment, with index/call groups
/// skipped — `channels[*chan as usize]` → `channels`, `self.queue` →
/// `queue`.
fn receiver_field(code: &str, at: usize) -> String {
    let mut rev: Vec<char> = Vec::new();
    let mut depth = 0usize;
    for c in code[..at].chars().rev() {
        if depth > 0 {
            if c == '[' || c == '(' {
                depth -= 1;
            } else if c == ']' || c == ')' {
                depth += 1;
            }
            rev.push(c);
        } else if is_ident_char(c) || c == '.' || c == ':' {
            rev.push(c);
        } else if c == ']' || c == ')' {
            depth += 1;
            rev.push(c);
        } else {
            break;
        }
    }
    let receiver: String = rev.into_iter().rev().collect();
    // Last depth-0 segment, then its leading identifier.
    let mut seg_start = 0usize;
    let mut d = 0usize;
    for (i, c) in receiver.char_indices() {
        match c {
            '[' | '(' => d += 1,
            ']' | ')' => d = d.saturating_sub(1),
            '.' if d == 0 => seg_start = i + c.len_utf8(),
            _ => {}
        }
    }
    receiver[seg_start..]
        .chars()
        .take_while(|&c| is_ident_char(c))
        .collect()
}

/// Callee names on a line: lowercase-initial identifiers directly followed
/// by `(`, excluding keywords, macros (`name!(`) and the name in a `fn`
/// header. Uppercase-initial names are type/variant constructors.
fn call_names(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut prev_word = String::new();
    let mut i = 0;
    while i < chars.len() {
        if is_ident_char(chars[i]) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            if next == Some('(')
                && prev_word != "fn"
                && !CALL_KEYWORDS.contains(&word.as_str())
                && word.chars().next().is_some_and(|c| c.is_lowercase())
                && !word.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                out.push(word.clone());
            }
            prev_word = word;
            continue;
        }
        if !chars[i].is_whitespace() && chars[i] != '(' {
            prev_word.clear();
        }
        i += 1;
    }
    out
}

/// `Ordering::X` variant names between the accessor at `at` and the next
/// accessor occurrence (or end of line).
fn orderings_after(code: &str, at: usize, token_len: usize) -> Vec<String> {
    let from = at + token_len;
    let tail = &code[from..];
    // Stop at the next atomic accessor, so a line with two accesses does
    // not attribute the second access's ordering to the first.
    let stop = ATOMIC_TOKENS
        .iter()
        .filter_map(|(t, _)| tail.find(t))
        .min()
        .unwrap_or(tail.len());
    let slice = &tail[..stop];
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = slice[start..].find("Ordering::") {
        let begin = start + pos + "Ordering::".len();
        let name: String = slice[begin..]
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if !name.is_empty() {
            out.push(name);
        }
        start = begin;
    }
    out
}

/// The binding name of a `let` statement (`let mut x = ...` → `x`); `None`
/// for `if let` / `while let` and non-let lines.
fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// Identifier arguments of `drop(...)` calls on the line.
fn drop_args(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find("drop(") {
        let at = start + pos;
        let boundary_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
        if boundary_ok {
            let arg: String = code[at + "drop(".len()..]
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if !arg.is_empty() {
                out.push(arg);
            }
        }
        start = at + "drop(".len();
    }
    out
}

/// Runs the four concurrency rules over the model built from `files`.
pub fn check_concurrency(files: &[SourceFile]) -> Vec<Violation> {
    let graph = CodeGraph::build(files);
    let mut out = Vec::new();
    check_lock_order(&graph, &mut out);
    check_lock_across_barrier(&graph, &mut out);
    check_relaxed_ordering(&graph, &mut out);
    check_blocking_in_hot_path(&graph, &mut out);
    out
}

/// Transitive lock-acquisition sets per function (names, closed over the
/// call graph by fixpoint iteration).
fn transitive_acquisitions(graph: &CodeGraph) -> Vec<BTreeSet<String>> {
    let mut acq: Vec<BTreeSet<String>> = graph
        .fns
        .iter()
        .map(|f| f.locks.iter().map(|l| l.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for call in &graph.fns[i].calls {
                for &j in graph.resolve(&call.callee) {
                    for lock in &acq[j] {
                        if !acq[i].contains(lock) {
                            add.insert(lock.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                acq[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            return acq;
        }
    }
}

/// True per function when it (or anything it calls) waits on a barrier.
/// Functions *named* like barrier operations (`arrive`, `wait`, `*barrier*`)
/// count as direct waiters — `EpochSync::arrive`'s body is a spin on the
/// generation counter, not an `.arrive(` token.
fn transitive_barriers(graph: &CodeGraph) -> Vec<bool> {
    let mut has: Vec<bool> = graph
        .fns
        .iter()
        .map(|f| {
            !f.barriers.is_empty()
                || f.name == "arrive"
                || f.name == "wait"
                || f.name.contains("barrier")
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            if has[i] {
                continue;
            }
            let hit = graph.fns[i]
                .calls
                .iter()
                .any(|c| graph.resolve(&c.callee).iter().any(|&j| has[j]));
            if hit {
                has[i] = true;
                changed = true;
            }
        }
        if !changed {
            return has;
        }
    }
}

/// `lock-order`: build the held→acquired edge set (direct pairs plus call
/// sites closed over transitive acquisitions) and report every cycle.
fn check_lock_order(graph: &CodeGraph, out: &mut Vec<Violation>) {
    let acq = transitive_acquisitions(graph);
    // (from, to) → first site, in deterministic order.
    let mut edges: BTreeMap<(String, String), (PathBuf, Site)> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, path: &PathBuf, site: &Site| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| (path.clone(), site.clone()));
    };
    for f in &graph.fns {
        for (held, acquired, site) in &f.lock_pairs {
            add_edge(held, acquired, &f.path, site);
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for &j in graph.resolve(&call.callee) {
                for acquired in &acq[j] {
                    for held in &call.held {
                        add_edge(held, acquired, &f.path, &call.site);
                    }
                }
            }
        }
    }
    // Cycle detection: iterative coloring DFS over the (sorted) node set.
    let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        succ.entry(from).or_default().push(to);
        succ.entry(to).or_default();
    }
    let mut color: BTreeMap<&str, u8> = succ.keys().map(|&n| (n, 0u8)).collect();
    let nodes: Vec<&str> = succ.keys().copied().collect();
    for &root in &nodes {
        if color[root] != 0 {
            continue;
        }
        // Stack of (node, next successor index); path mirrors the stack.
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        color.insert(root, 1);
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            let next = top.1;
            top.1 = next + 1;
            let succs = &succ[node];
            if next >= succs.len() {
                color.insert(node, 2);
                stack.pop();
                continue;
            }
            let child = succs[next];
            match color[child] {
                0 => {
                    color.insert(child, 1);
                    stack.push((child, 0));
                }
                1 => {
                    // Back edge node→child: the cycle is child ... node.
                    let from = stack
                        .iter()
                        .position(|&(n, _)| n == child)
                        .unwrap_or(stack.len() - 1);
                    let mut cycle: Vec<&str> = stack[from..].iter().map(|&(n, _)| n).collect();
                    cycle.push(child);
                    let (path, site) = &edges[&(node.to_string(), child.to_string())];
                    if !site.allows(rule::LOCK_ORDER) {
                        out.push(Violation {
                            rule: rule::LOCK_ORDER,
                            path: path.clone(),
                            line: site.line,
                            message: format!(
                                "lock-acquisition cycle {} — two threads taking these \
                                 mutexes in opposite orders can deadlock; impose a \
                                 global order, or justify with lint: allow(lock-order)",
                                cycle.join(" -> ")
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

/// `lock-across-barrier`: a live guard at a direct barrier wait, or at a
/// call whose transitive summary reaches one.
fn check_lock_across_barrier(graph: &CodeGraph, out: &mut Vec<Violation>) {
    let barrier = transitive_barriers(graph);
    for f in &graph.fns {
        for (site, held) in &f.barriers {
            report_barrier_hold(f, site, held, "a barrier wait", out);
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            if graph.resolve(&call.callee).iter().any(|&j| barrier[j]) {
                let what = format!("`{}` (which reaches a barrier wait)", call.callee);
                report_barrier_hold(f, &call.site, &call.held, &what, out);
            }
        }
    }
}

fn report_barrier_hold(
    f: &FnInfo,
    site: &Site,
    held: &[String],
    what: &str,
    out: &mut Vec<Violation>,
) {
    if held.is_empty() || site.allows(rule::LOCK_ACROSS_BARRIER) {
        return;
    }
    out.push(Violation {
        rule: rule::LOCK_ACROSS_BARRIER,
        path: f.path.clone(),
        line: site.line,
        message: format!(
            "guard for `{}` still live across {} in `{}` — a peer region \
             blocking on the mutex deadlocks against the barrier; drop the \
             guard first, or justify with lint: allow(lock-across-barrier)",
            held.join("`, `"),
            what,
            f.name
        ),
    });
}

/// `relaxed-ordering`: on fields with both reads and writes (the shared
/// ones), flag `Relaxed` anywhere, `Acquire` loads with no Release-class
/// store, and `Release` stores with no Acquire-class load.
fn check_relaxed_ordering(graph: &CodeGraph, out: &mut Vec<Violation>) {
    let mut by_field: BTreeMap<&str, Vec<(&FnInfo, &AtomicAccess)>> = BTreeMap::new();
    for f in &graph.fns {
        for a in &f.atomics {
            by_field.entry(a.field.as_str()).or_default().push((f, a));
        }
    }
    for (field, accesses) in by_field {
        let reads = accesses
            .iter()
            .any(|(_, a)| matches!(a.kind, AtomicKind::Load | AtomicKind::Rmw));
        let writes = accesses
            .iter()
            .any(|(_, a)| matches!(a.kind, AtomicKind::Store | AtomicKind::Rmw));
        if !(reads && writes) {
            continue; // init-only or observe-only: not cross-thread state.
        }
        let has_release_write = accesses.iter().any(|(_, a)| {
            matches!(a.kind, AtomicKind::Store | AtomicKind::Rmw)
                && matches!(a.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
        });
        let has_acquire_read = accesses.iter().any(|(_, a)| {
            matches!(a.kind, AtomicKind::Load | AtomicKind::Rmw)
                && matches!(a.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst")
        });
        for (f, a) in &accesses {
            if a.site.allows(rule::RELAXED_ORDERING) {
                continue;
            }
            let problem = if a.ordering == "Relaxed" {
                Some(format!(
                    "Ordering::Relaxed on shared atomic `{field}` — cross-region \
                     reads may observe stale values"
                ))
            } else if a.kind == AtomicKind::Load && a.ordering == "Acquire" && !has_release_write {
                Some(format!(
                    "Acquire load of `{field}` with no Release-class store — the \
                     acquire pairs with nothing and orders nothing"
                ))
            } else if a.kind == AtomicKind::Store && a.ordering == "Release" && !has_acquire_read {
                Some(format!(
                    "Release store of `{field}` with no Acquire-class load — the \
                     release pairs with nothing and orders nothing"
                ))
            } else {
                None
            };
            if let Some(msg) = problem {
                out.push(Violation {
                    rule: rule::RELAXED_ORDERING,
                    path: f.path.clone(),
                    line: a.site.line,
                    message: format!(
                        "{msg}; strengthen the ordering, or justify with \
                         lint: allow(relaxed-ordering)"
                    ),
                });
            }
        }
    }
}

/// `blocking-in-hot-path`: BFS the call graph from every hot-path function
/// and flag blocking operations in anything reached.
fn check_blocking_in_hot_path(graph: &CodeGraph, out: &mut Vec<Violation>) {
    let mut seen: BTreeSet<(PathBuf, usize)> = BTreeSet::new();
    let hot: Vec<usize> = (0..graph.fns.len()).filter(|&i| graph.fns[i].hot).collect();
    for &h in &hot {
        let mut reach: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = vec![h];
        while let Some(i) = queue.pop() {
            if !reach.insert(i) {
                continue;
            }
            for call in &graph.fns[i].calls {
                for &j in graph.resolve(&call.callee) {
                    if !reach.contains(&j) {
                        queue.push(j);
                    }
                }
            }
        }
        for &i in &reach {
            let f = &graph.fns[i];
            for b in &f.blocking {
                if b.site.allows(rule::BLOCKING_IN_HOT_PATH) {
                    continue;
                }
                if !seen.insert((f.path.clone(), b.site.line)) {
                    continue;
                }
                let via = if i == h {
                    String::new()
                } else {
                    format!(" (in `{}`)", f.name)
                };
                out.push(Violation {
                    rule: rule::BLOCKING_IN_HOT_PATH,
                    path: f.path.clone(),
                    line: b.site.line,
                    message: format!(
                        "`{}` reachable from hot-path fn `{}`{via} — blocking \
                         inside the per-cycle loop stalls the whole region; hoist \
                         it out, or justify with lint: allow(blocking-in-hot-path)",
                        b.token.trim_matches(|c| c == '.' || c == '('),
                        graph.fns[h].name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn conc(text: &str) -> Vec<Violation> {
        let file = SourceFile::parse(Path::new("mem.rs"), text);
        check_concurrency(&[file])
    }

    fn rules_hit(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn extracts_fn_spans_and_locks() {
        let file = SourceFile::parse(
            Path::new("mem.rs"),
            "fn a(&self) {\n    let g = self.alpha.lock();\n    touch(g);\n}\n\
             fn b(&self) {\n    self.beta.lock();\n}\n",
        );
        let graph = CodeGraph::build(&[file]);
        assert_eq!(graph.fns.len(), 2);
        assert_eq!(graph.fns[0].name, "a");
        assert_eq!(graph.fns[0].locks[0].lock, "alpha");
        assert_eq!(graph.fns[1].locks[0].lock, "beta");
        // `touch(g)` is a call; `.lock()` registers a call to `lock` too.
        assert!(graph.fns[0].calls.iter().any(|c| c.callee == "touch"));
    }

    #[test]
    fn receiver_field_handles_indexing() {
        assert_eq!(receiver_field("channels[*chan as usize]", 24), "channels");
        assert_eq!(receiver_field("self.queue", 10), "queue");
        assert_eq!(receiver_field("deques[victim]", 14), "deques");
    }

    #[test]
    fn lock_order_cycle_reported() {
        let v = conc(
            "fn fwd(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn rev(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        );
        assert!(rules_hit(&v).contains(&rule::LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn lock_order_cycle_through_call() {
        let v = conc(
            "fn outer(&self) {\n    let a = self.alpha.lock();\n    self.inner();\n}\n\
             fn inner(&self) {\n    let b = self.beta.lock();\n}\n\
             fn other(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        );
        assert!(rules_hit(&v).contains(&rule::LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn consistent_lock_order_clean() {
        let v = conc(
            "fn one(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n\
             fn two(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n",
        );
        assert!(!rules_hit(&v).contains(&rule::LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn guard_scope_ends_with_block() {
        // The alpha guard dies with its block, so beta is not nested.
        let v = conc(
            "fn fwd(&self) {\n    {\n        let a = self.alpha.lock();\n    }\n    let b = self.beta.lock();\n}\n\
             fn rev(&self) {\n    {\n        let b = self.beta.lock();\n    }\n    let a = self.alpha.lock();\n}\n",
        );
        assert!(!rules_hit(&v).contains(&rule::LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let v = conc(
            "fn fwd(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n}\n\
             fn rev(&self) {\n    let b = self.beta.lock();\n    drop(b);\n    let a = self.alpha.lock();\n}\n",
        );
        assert!(!rules_hit(&v).contains(&rule::LOCK_ORDER), "{v:?}");
    }

    #[test]
    fn lock_across_barrier_direct() {
        let v = conc(
            "fn worker(&self) {\n    let g = self.queue.lock();\n    self.sync.arrive(true);\n}\n",
        );
        assert!(rules_hit(&v).contains(&rule::LOCK_ACROSS_BARRIER), "{v:?}");
    }

    #[test]
    fn lock_across_barrier_through_call() {
        let v = conc(
            "fn worker(&self) {\n    let g = self.queue.lock();\n    self.finish_epoch();\n}\n\
             fn finish_epoch(&self) {\n    self.sync.arrive(true);\n}\n",
        );
        assert!(rules_hit(&v).contains(&rule::LOCK_ACROSS_BARRIER), "{v:?}");
    }

    #[test]
    fn guard_dropped_before_barrier_clean() {
        let v = conc(
            "fn worker(&self) {\n    {\n        let g = self.queue.lock();\n    }\n    self.sync.arrive(true);\n}\n",
        );
        assert!(!rules_hit(&v).contains(&rule::LOCK_ACROSS_BARRIER), "{v:?}");
    }

    #[test]
    fn relaxed_on_shared_field_flagged() {
        let v = conc(
            "fn w(&self) {\n    self.seq.store(1, Ordering::Relaxed);\n}\n\
             fn r(&self) -> u64 {\n    self.seq.load(Ordering::Acquire)\n}\n",
        );
        let hits = rules_hit(&v);
        assert!(hits.contains(&rule::RELAXED_ORDERING), "{v:?}");
    }

    #[test]
    fn acquire_release_pairing_clean() {
        let v = conc(
            "fn w(&self) {\n    self.seq.store(1, Ordering::Release);\n}\n\
             fn r(&self) -> u64 {\n    self.seq.load(Ordering::Acquire)\n}\n",
        );
        assert!(!rules_hit(&v).contains(&rule::RELAXED_ORDERING), "{v:?}");
    }

    #[test]
    fn unpaired_acquire_flagged() {
        let v = conc(
            "fn w(&self) {\n    self.seq.store(1, Ordering::Relaxed);\n}\n\
             fn r(&self) -> u64 {\n    self.seq.load(Ordering::Acquire)\n}\n",
        );
        let msgs: Vec<&str> = v.iter().map(|x| x.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("no Release-class store")),
            "{msgs:?}"
        );
    }

    #[test]
    fn observe_only_counter_ignored() {
        // Loads with no writes (or vice versa) are init-time or test-side.
        let v = conc("fn r(&self) -> u64 {\n    self.seq.load(Ordering::Relaxed)\n}\n");
        assert!(!rules_hit(&v).contains(&rule::RELAXED_ORDERING), "{v:?}");
    }

    #[test]
    fn relaxed_allow_respected() {
        let v = conc(
            "fn w(&self) {\n    self.hits.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed-ordering) — monotonic stats counter, no ordering needed\n}\n\
             fn r(&self) -> u64 {\n    self.hits.load(Ordering::Relaxed) // lint: allow(relaxed-ordering) — monotonic stats counter, no ordering needed\n}\n",
        );
        assert!(!rules_hit(&v).contains(&rule::RELAXED_ORDERING), "{v:?}");
    }

    #[test]
    fn blocking_in_hot_path_direct_and_nested() {
        let v = conc(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(&self) {\n    self.drain();\n}\n\
             fn drain(&self) {\n    let g = self.queue.lock();\n}\n",
        );
        let hits = rules_hit(&v);
        assert!(hits.contains(&rule::BLOCKING_IN_HOT_PATH), "{v:?}");
    }

    #[test]
    fn blocking_outside_hot_path_clean() {
        let v = conc("fn cold(&self) {\n    let g = self.queue.lock();\n}\n");
        assert!(
            !rules_hit(&v).contains(&rule::BLOCKING_IN_HOT_PATH),
            "{v:?}"
        );
    }

    #[test]
    fn blocking_allow_respected() {
        let v = conc(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(&self) {\n    let g = self.queue.lock(); // lint: allow(blocking-in-hot-path) — uncontended SPSC mutex, one bounded acquisition per cycle\n}\n",
        );
        assert!(
            !rules_hit(&v).contains(&rule::BLOCKING_IN_HOT_PATH),
            "{v:?}"
        );
    }

    #[test]
    fn test_functions_excluded_from_model() {
        let file = SourceFile::parse(
            Path::new("mem.rs"),
            "#[cfg(test)]\nmod tests {\n    fn helper(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n}\n",
        );
        let graph = CodeGraph::build(&[file]);
        assert!(graph.fns.is_empty());
    }

    #[test]
    fn join_with_args_not_blocking() {
        let v = conc(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(&self) {\n    let p = base.join(name);\n    let s = parts.join(sep);\n}\n",
        );
        assert!(
            !rules_hit(&v).contains(&rule::BLOCKING_IN_HOT_PATH),
            "{v:?}"
        );
    }
}
