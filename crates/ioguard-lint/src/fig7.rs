//! The Fig. 7 experiment configurations as verifiable [`SystemModel`]s.
//!
//! Each model is built exactly the way `ioguard-core::casestudy` builds the
//! platform for a trial: generate the automotive workload, split off the
//! P-channel pre-load, lay it out with [`PChannel::build`] (the same EDF
//! greedy layout the hypervisor uses at initialization), and describe the
//! resulting σ\*, pools and per-VM run-time task sets as a static model.
//! `ioguard-lint -- check` then certifies every configuration the case
//! study will actually run.

use std::path::Path;

use ioguard_hypervisor::hypervisor::DEFAULT_POOL_CAPACITY;
use ioguard_hypervisor::pchannel::{PChannel, PredefinedTask};
use ioguard_workload::generator::{TrialConfig, TrialWorkload};

use crate::model::{NocModel, RouteSpec, SystemModel, VmModel};

/// Base seed of the case study (`CaseStudyConfig::paper_shape`).
const FIG7_SEED: u64 = 2021;

/// Utilization at which the static models are generated. The sweep goes to
/// 1.00 where trials are *expected* to fail — the static layer certifies
/// the configuration shape, not the overload points.
const FIG7_UTILIZATION: f64 = 0.40;

/// Maximum σ\* hyper-period, as in `HypervisorParams::new`.
const MAX_TABLE_LEN: u64 = 1 << 22;

/// Builds the Fig. 7 static models: I/O-GUARD-40 and I/O-GUARD-70 at the 4-
/// and 8-VM group sizes, one server-isolated ablation, and a small
/// admission demo that exercises the Theorem 1/3 checks end to end.
///
/// Returns `Err` with a description if a configuration cannot even be
/// constructed (infeasible pre-load) — the CLI treats that as a failure.
pub fn fig7_models() -> Result<Vec<SystemModel>, String> {
    let mut models = Vec::new();
    for &(vms, preload_pct) in &[(4usize, 40u8), (4, 70), (8, 40), (8, 70)] {
        models.push(ioguard_model(vms, preload_pct, false)?);
    }
    models.push(ioguard_model(4, 40, true)?);
    models.push(admission_demo());
    Ok(models)
}

/// One I/O-GUARD configuration as a static model.
fn ioguard_model(
    vms: usize,
    preload_pct: u8,
    server_isolated: bool,
) -> Result<SystemModel, String> {
    let workload = TrialWorkload::generate(&TrialConfig::new(vms, FIG7_UTILIZATION, FIG7_SEED));
    let (pre, rest) = workload.split_preload(preload_pct as f64 / 100.0);

    // P-channel layout, exactly as `casestudy::build_ioguard` constructs it.
    let predefined: Vec<PredefinedTask> = workload
        .tasks()
        .iter()
        .enumerate()
        .filter(|(_, t)| pre.iter().any(|p| p.name == t.name))
        .map(|(idx, t)| PredefinedTask {
            task_id: idx as u64 + 1,
            vm: t.vm,
            task: t.task,
            response_bytes: t.response_bytes,
            start_offset: (idx as u64).wrapping_mul(0x9E37_79B9) % t.task.period(),
        })
        .collect();
    let pchannel = PChannel::build(predefined, MAX_TABLE_LEN)
        .map_err(|e| format!("fig7 {vms}-VM preload {preload_pct}%: {e}"))?;
    let table = pchannel.table();

    // σ* as maximal occupied runs, so the model carries the raw
    // reservations the overlap check operates on.
    let mut reservations = Vec::new();
    let mut run_start: Option<u64> = None;
    for (slot, free) in table.iter().enumerate() {
        match (free, run_start) {
            (false, None) => run_start = Some(slot as u64),
            (true, Some(start)) => {
                reservations.push((start, slot as u64 - start));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        reservations.push((start, table.len() - start));
    }

    // Equal-share servers for the server-isolated ablation, mirroring
    // `casestudy::run_trial`.
    let server = server_isolated.then(|| {
        let preload_util: f64 = pre.iter().map(|t| t.task.utilization()).sum();
        let free = (1.0 - preload_util).max(0.05);
        let budget = ((free * 100.0 / vms as f64).floor() as u64).clamp(1, 100);
        (100u64, budget)
    });

    let vm_models = (0..vms)
        .map(|vm| VmModel {
            name: format!("vm{vm}"),
            server,
            pool_capacity: DEFAULT_POOL_CAPACITY as u64,
            tasks: rest
                .iter()
                .filter(|t| t.vm == vm)
                .map(|t| (t.task.period(), t.task.wcet(), t.task.deadline()))
                .collect(),
        })
        .collect();

    let label = if server_isolated {
        format!("fig7/ioguard-{preload_pct}-srv/{vms}vm")
    } else {
        format!("fig7/ioguard-{preload_pct}/{vms}vm")
    };
    Ok(SystemModel {
        name: label.clone(),
        source: Path::new(&label).to_path_buf(),
        table_len: table.len(),
        reservations,
        vms: vm_models,
        noc: Some(bluetiles_noc()),
        admission: false,
    })
}

/// The paper's 5×5 BlueShell mesh with XY request/response routes between
/// every tile and the I/O controller at (4,4). XY routing keeps the channel
/// dependency graph acyclic; the verifier re-proves it per model.
fn bluetiles_noc() -> NocModel {
    let io = (4u16, 4u16);
    let mut routes = Vec::new();
    for x in 0..5u16 {
        for y in 0..5u16 {
            if (x, y) == io {
                continue;
            }
            routes.push(RouteSpec::Xy((x, y), io));
            routes.push(RouteSpec::Xy(io, (x, y)));
        }
    }
    NocModel {
        width: 5,
        height: 5,
        routes,
    }
}

/// A small fully-admitted configuration that exercises the Theorem 1 and
/// Theorem 3 admission paths (the Fig. 7 models skip admission because the
/// sweep deliberately runs into overload).
fn admission_demo() -> SystemModel {
    SystemModel {
        name: "fig7/admission-demo".into(),
        source: Path::new("fig7/admission-demo").to_path_buf(),
        table_len: 20,
        reservations: vec![(0, 2), (10, 2)],
        vms: vec![
            VmModel {
                name: "safety".into(),
                server: Some((10, 3)),
                pool_capacity: 8,
                tasks: vec![(40, 2, 20)],
            },
            VmModel {
                name: "function".into(),
                server: Some((20, 4)),
                pool_capacity: 8,
                tasks: vec![(80, 2, 60)],
            },
        ],
        noc: Some(bluetiles_noc()),
        admission: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConfigVerifier;

    #[test]
    fn fig7_models_build() {
        let models = fig7_models().expect("fig7 configs construct");
        assert_eq!(models.len(), 6);
        assert!(models.iter().any(|m| m.name.contains("ioguard-70/8vm")));
        assert!(models.iter().any(|m| m.name.contains("-srv")));
    }

    #[test]
    fn fig7_models_verify_clean() {
        for model in fig7_models().expect("fig7 configs construct") {
            let v = ConfigVerifier::verify(&model);
            assert!(v.is_empty(), "{}: {v:?}", model.name);
        }
    }

    #[test]
    fn reservations_reconstruct_the_pchannel_table() {
        let model = ioguard_model(4, 70, false).expect("builds");
        let occupied: u64 = model.reservations.iter().map(|&(_, len)| len).sum();
        assert!(occupied > 0, "70% preload must occupy slots");
        assert!(occupied < model.table_len, "free slots must remain");
    }

    #[test]
    fn admission_demo_is_admitted() {
        let v = ConfigVerifier::verify(&admission_demo());
        assert!(v.is_empty(), "{v:?}");
    }
}
