//! Layer 2: the model-level configuration verifier.
//!
//! A [`SystemModel`] is a static description of one deployed configuration —
//! the Time Slot Table σ\*, the per-VM periodic servers and task sets, the
//! I/O-pool sizing and the NoC routing — and [`ConfigVerifier`] certifies it
//! *before* anything runs, mirroring how the paper's Theorems 1–4 admit a
//! configuration offline:
//!
//! * σ\* well-formedness — no overlapping reservations, every reservation
//!   inside the table, and the free-slot supply bound function matching an
//!   independent window enumeration of Eqs. 1–2.
//! * hyperperiod divisibility — every server period `Π_i` divides `H`, the
//!   convention the exact tests rely on.
//! * periodic-server sanity — `1 ≤ Θ_i ≤ Π_i` (Eq. 3 preconditions).
//! * per-VM I/O-pool capacity — the pool must hold one in-flight entry per
//!   constrained-deadline task, or requests can be refused under a load the
//!   analysis admitted.
//! * NoC deadlock-freedom — a channel-dependency-graph cycle check over the
//!   declared routes (XY routes are acyclic by construction; explicit
//!   routes may introduce cyclic turn patterns).
//! * optional admission — when the model opts in, Theorem 1 (G-Sched) and
//!   Theorem 3 (L-Sched per VM) must both pass.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use ioguard_noc::topology::{Direction, Mesh, NodeId};
use ioguard_sched::gsched::theorem1_exact;
use ioguard_sched::lsched::theorem3_exact;
use ioguard_sched::table::TimeSlotTable;
use ioguard_sched::task::{PeriodicServer, SporadicTask, TaskSet};

use crate::rules::Violation;

/// Model-level rule identifiers.
pub mod model_rule {
    /// Table length / reservation bounds problems.
    pub const TABLE: &str = "model-table";
    /// Two σ\* reservations overlap.
    pub const TABLE_OVERLAP: &str = "model-table-overlap";
    /// `sbf` mismatch against the independent window enumeration.
    pub const SBF: &str = "model-sbf";
    /// A server period does not divide the table hyperperiod.
    pub const HYPERPERIOD: &str = "model-hyperperiod";
    /// Periodic-server parameters out of range.
    pub const SERVER: &str = "model-server";
    /// I/O pool cannot hold the VM's worst-case in-flight set.
    pub const POOL: &str = "model-pool-capacity";
    /// A sporadic task violates `0 < C ≤ D ≤ T`.
    pub const TASK: &str = "model-task";
    /// Theorem 1 (G-Sched admission) fails.
    pub const THEOREM1: &str = "model-theorem1";
    /// Theorem 3 (L-Sched admission) fails for some VM.
    pub const THEOREM3: &str = "model-theorem3";
    /// A route leaves the mesh or takes a non-unit hop.
    pub const NOC_ROUTE: &str = "model-noc-route";
    /// The channel dependency graph has a cycle.
    pub const NOC_DEADLOCK: &str = "model-noc-deadlock";
    /// The model file itself could not be parsed.
    pub const PARSE: &str = "model-parse";
}

/// Largest hyperperiod for which the full O(H²) window enumeration
/// cross-checks `sbf` slot by slot.
const SBF_EXHAUSTIVE_H: u64 = 256;

/// Largest hyperperiod for which the (lazy, O(H²) once) `sbf` table is
/// built at all for structural checks; beyond this only O(H) invariants run.
const SBF_STRUCTURAL_H: u64 = 4096;

/// Hyperperiod cap handed to the exact admission tests.
const ADMISSION_MAX_HYPER: u64 = 1 << 22;

/// A route through the mesh: explicit hop list or XY-generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteSpec {
    /// Explicit node sequence; consecutive nodes must be mesh neighbours.
    Explicit(Vec<(u16, u16)>),
    /// Dimension-ordered route from source to destination.
    Xy((u16, u16), (u16, u16)),
}

/// NoC portion of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocModel {
    /// Mesh width (columns).
    pub width: u16,
    /// Mesh height (rows).
    pub height: u16,
    /// Declared packet routes.
    pub routes: Vec<RouteSpec>,
}

/// One VM: its server, pool sizing and task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmModel {
    /// Display name.
    pub name: String,
    /// `(Π_i, Θ_i)` when the VM is server-scheduled.
    pub server: Option<(u64, u64)>,
    /// I/O-pool capacity in entries.
    pub pool_capacity: u64,
    /// Sporadic tasks `(T, C, D)`.
    pub tasks: Vec<(u64, u64, u64)>,
}

/// A full static system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemModel {
    /// Display name.
    pub name: String,
    /// Where the model came from (file path or a synthetic label).
    pub source: PathBuf,
    /// Table hyperperiod `H` in slots.
    pub table_len: u64,
    /// P-channel reservations `(start, length)` in slots.
    pub reservations: Vec<(u64, u64)>,
    /// The VMs.
    pub vms: Vec<VmModel>,
    /// Optional NoC description.
    pub noc: Option<NocModel>,
    /// Run the Theorem 1/3 admission tests as part of verification.
    pub admission: bool,
}

impl SystemModel {
    /// An empty model with the given name and source label.
    pub fn new(name: &str, source: &Path) -> Self {
        Self {
            name: name.to_string(),
            source: source.to_path_buf(),
            table_len: 0,
            reservations: Vec::new(),
            vms: Vec::new(),
            noc: None,
            admission: false,
        }
    }

    /// Parses the line-based model format:
    ///
    /// ```text
    /// # comment
    /// model automotive
    /// table 16000
    /// reserve 0 2          # start length
    /// vm safety pool=32 server=100/20
    /// task 100 5 100       # period wcet deadline, attaches to last vm
    /// noc 5 5
    /// route 0,0 1,0 1,1    # explicit hop list
    /// routexy 0,0 4,4      # XY route src dst
    /// admission on
    /// ```
    ///
    /// Parse problems are returned as `model-parse` violations so the CLI
    /// reports them uniformly with verification findings.
    pub fn parse(path: &Path, text: &str) -> Result<Self, Violation> {
        let err = |line: usize, msg: String| Violation {
            rule: model_rule::PARSE,
            path: path.to_path_buf(),
            line,
            message: msg,
        };
        let mut model = SystemModel::new("unnamed", path);
        for (i, raw) in text.lines().enumerate() {
            let n = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let keyword = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            match keyword {
                "model" => {
                    model.name = rest.join(" ");
                }
                "table" => {
                    model.table_len =
                        parse_u64(rest.first(), n, "table <H>").map_err(|m| err(n, m))?;
                }
                "reserve" => {
                    let start = parse_u64(rest.first(), n, "reserve <start> <len>")
                        .map_err(|m| err(n, m))?;
                    let len = parse_u64(rest.get(1), n, "reserve <start> <len>")
                        .map_err(|m| err(n, m))?;
                    model.reservations.push((start, len));
                }
                "vm" => {
                    let name = rest
                        .first()
                        .ok_or_else(|| err(n, "vm <name> [pool=N] [server=P/B]".into()))?;
                    let mut vm = VmModel {
                        name: (*name).to_string(),
                        server: None,
                        pool_capacity: 32,
                        tasks: Vec::new(),
                    };
                    for opt in &rest[1..] {
                        if let Some(v) = opt.strip_prefix("pool=") {
                            vm.pool_capacity = v
                                .parse()
                                .map_err(|_| err(n, format!("bad pool capacity `{v}`")))?;
                        } else if let Some(v) = opt.strip_prefix("server=") {
                            let (p, b) = v
                                .split_once('/')
                                .ok_or_else(|| err(n, format!("server=P/B, got `{v}`")))?;
                            let period = p
                                .parse()
                                .map_err(|_| err(n, format!("bad server period `{p}`")))?;
                            let budget = b
                                .parse()
                                .map_err(|_| err(n, format!("bad server budget `{b}`")))?;
                            vm.server = Some((period, budget));
                        } else {
                            return Err(err(n, format!("unknown vm option `{opt}`")));
                        }
                    }
                    model.vms.push(vm);
                }
                "task" => {
                    let t =
                        parse_u64(rest.first(), n, "task <T> <C> <D>").map_err(|m| err(n, m))?;
                    let c = parse_u64(rest.get(1), n, "task <T> <C> <D>").map_err(|m| err(n, m))?;
                    let d = parse_u64(rest.get(2), n, "task <T> <C> <D>").map_err(|m| err(n, m))?;
                    let vm = model
                        .vms
                        .last_mut()
                        .ok_or_else(|| err(n, "task before any vm".into()))?;
                    vm.tasks.push((t, c, d));
                }
                "noc" => {
                    let w = parse_u64(rest.first(), n, "noc <W> <H>").map_err(|m| err(n, m))?;
                    let h = parse_u64(rest.get(1), n, "noc <W> <H>").map_err(|m| err(n, m))?;
                    let w = u16::try_from(w).map_err(|_| err(n, "mesh width too large".into()))?;
                    let h = u16::try_from(h).map_err(|_| err(n, "mesh height too large".into()))?;
                    model.noc = Some(NocModel {
                        width: w,
                        height: h,
                        routes: Vec::new(),
                    });
                }
                "route" | "routexy" => {
                    let noc = model
                        .noc
                        .as_mut()
                        .ok_or_else(|| err(n, "route before noc".into()))?;
                    let mut nodes = Vec::new();
                    for word in &rest {
                        nodes.push(parse_node(word).map_err(|m| err(n, m))?);
                    }
                    if keyword == "routexy" {
                        if nodes.len() != 2 {
                            return Err(err(n, "routexy <src> <dst>".into()));
                        }
                        noc.routes.push(RouteSpec::Xy(nodes[0], nodes[1]));
                    } else {
                        if nodes.len() < 2 {
                            return Err(err(n, "route needs at least two nodes".into()));
                        }
                        noc.routes.push(RouteSpec::Explicit(nodes));
                    }
                }
                "admission" => {
                    model.admission = matches!(rest.first().copied(), Some("on") | Some("true"));
                }
                other => return Err(err(n, format!("unknown directive `{other}`"))),
            }
        }
        Ok(model)
    }

    /// Loads and parses a model file.
    pub fn load(path: &Path) -> Result<Self, Violation> {
        let text = std::fs::read_to_string(path).map_err(|e| Violation {
            rule: model_rule::PARSE,
            path: path.to_path_buf(),
            line: 0,
            message: format!("cannot read model: {e}"),
        })?;
        Self::parse(path, &text)
    }
}

fn parse_u64(word: Option<&&str>, _line: usize, usage: &str) -> Result<u64, String> {
    let word = word.ok_or_else(|| format!("usage: {usage}"))?;
    word.parse()
        .map_err(|_| format!("`{word}` is not a number (usage: {usage})"))
}

fn parse_node(word: &str) -> Result<(u16, u16), String> {
    let (x, y) = word
        .split_once(',')
        .ok_or_else(|| format!("node `{word}` must be x,y"))?;
    let x = x.parse().map_err(|_| format!("bad node x `{x}`"))?;
    let y = y.parse().map_err(|_| format!("bad node y `{y}`"))?;
    Ok((x, y))
}

/// The static configuration verifier.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConfigVerifier;

impl ConfigVerifier {
    /// Verifies `model`, returning every violation found (empty = certified).
    pub fn verify(model: &SystemModel) -> Vec<Violation> {
        let mut out = Vec::new();
        let v = |rule: &'static str, message: String| Violation {
            rule,
            path: model.source.clone(),
            line: 0,
            message: format!("[{}] {}", model.name, message),
        };
        let table = Self::verify_table(model, &v, &mut out);
        let servers = Self::verify_vms(model, &v, &mut out);
        if model.admission {
            Self::verify_admission(model, table.as_ref(), &servers, &v, &mut out);
        }
        if let Some(noc) = &model.noc {
            Self::verify_noc(noc, &v, &mut out);
        }
        out
    }

    fn verify_table(
        model: &SystemModel,
        v: &impl Fn(&'static str, String) -> Violation,
        out: &mut Vec<Violation>,
    ) -> Option<TimeSlotTable> {
        let h = model.table_len;
        if h == 0 {
            out.push(v(model_rule::TABLE, "table length must be positive".into()));
            return None;
        }
        // Bounds + overlap over the raw reservations: `from_occupied`
        // silently collapses duplicates, so overlap must be caught here.
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut ok = true;
        for &(start, len) in &model.reservations {
            if len == 0 {
                out.push(v(
                    model_rule::TABLE,
                    format!("reservation at slot {start} has zero length"),
                ));
                ok = false;
                continue;
            }
            let end = start.saturating_add(len);
            if start >= h || end > h {
                out.push(v(
                    model_rule::TABLE,
                    format!("reservation [{start}, {end}) exceeds table length {h}"),
                ));
                ok = false;
                continue;
            }
            spans.push((start, end));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            let ((a0, a1), (b0, b1)) = (w[0], w[1]);
            if b0 < a1 {
                out.push(v(
                    model_rule::TABLE_OVERLAP,
                    format!("reservations [{a0}, {a1}) and [{b0}, {b1}) overlap"),
                ));
                ok = false;
            }
        }
        if !ok {
            return None;
        }
        let occupied: Vec<u64> = spans.iter().flat_map(|&(s, e)| s..e).collect();
        let table = match TimeSlotTable::from_occupied(h, &occupied) {
            Ok(t) => t,
            Err(e) => {
                out.push(v(model_rule::TABLE, format!("table construction: {e}")));
                return None;
            }
        };
        Self::verify_sbf(&table, v, out);
        // Hyperperiod divisibility for every server-scheduled VM.
        for vm in &model.vms {
            if let Some((period, _)) = vm.server {
                if period == 0 || !h.is_multiple_of(period) {
                    out.push(v(
                        model_rule::HYPERPERIOD,
                        format!(
                            "vm `{}`: server period {period} does not divide hyperperiod {h}",
                            vm.name
                        ),
                    ));
                }
            }
        }
        Some(table)
    }

    /// Cross-checks `sbf` (Eqs. 1–2) against an independent enumeration.
    ///
    /// For small tables every `(start, length)` window is enumerated and the
    /// true minimum compared slot by slot; for medium tables only the cheap
    /// structural invariants run (`sbf(0) = 0`, monotonicity, and the Eq. 2
    /// periodic extension `sbf(t + H) = sbf(t) + F`). Huge tables are
    /// skipped entirely — the lazy `sbf` table is O(H²) to build.
    fn verify_sbf(
        table: &TimeSlotTable,
        v: &impl Fn(&'static str, String) -> Violation,
        out: &mut Vec<Violation>,
    ) {
        let h = table.len();
        if h > SBF_STRUCTURAL_H {
            return;
        }
        let f = table.free_slots();
        if h <= SBF_EXHAUSTIVE_H {
            let free: Vec<bool> = table.iter().collect();
            for t in 0..=2 * h {
                let expect = (0..h)
                    .map(|s| (0..t).filter(|&off| free[((s + off) % h) as usize]).count() as u64)
                    .min()
                    .unwrap_or(0);
                let got = table.sbf(t);
                if got != expect {
                    out.push(v(
                        model_rule::SBF,
                        format!("sbf({t}) = {got}, window enumeration says {expect}"),
                    ));
                    return;
                }
            }
            return;
        }
        if table.sbf(0) != 0 {
            out.push(v(model_rule::SBF, format!("sbf(0) = {} ≠ 0", table.sbf(0))));
        }
        let mut prev = 0;
        for t in 0..=h {
            let s = table.sbf(t);
            if s < prev {
                out.push(v(
                    model_rule::SBF,
                    format!("sbf not monotone: sbf({t}) = {s} < sbf({}) = {prev}", t - 1),
                ));
                return;
            }
            prev = s;
            let ext = table.sbf(t.saturating_add(h));
            if ext != s.saturating_add(f) {
                out.push(v(
                    model_rule::SBF,
                    format!("Eq. 2 extension broken at t = {t}: sbf(t+H) = {ext} ≠ sbf(t) + F"),
                ));
                return;
            }
        }
    }

    fn verify_vms(
        model: &SystemModel,
        v: &impl Fn(&'static str, String) -> Violation,
        out: &mut Vec<Violation>,
    ) -> Vec<Option<PeriodicServer>> {
        let mut servers = Vec::with_capacity(model.vms.len());
        for vm in &model.vms {
            let server = match vm.server {
                Some((period, budget)) => match PeriodicServer::new(period, budget) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        out.push(v(
                            model_rule::SERVER,
                            format!("vm `{}`: server ({period}, {budget}): {e}", vm.name),
                        ));
                        None
                    }
                },
                None => None,
            };
            servers.push(server);
            if vm.pool_capacity == 0 {
                out.push(v(
                    model_rule::POOL,
                    format!("vm `{}`: pool capacity must be positive", vm.name),
                ));
            } else if (vm.tasks.len() as u64) > vm.pool_capacity {
                // Constrained deadlines (D ≤ T) bound in-flight jobs to one
                // per task; more tasks than entries means admissible load
                // can be refused at the pool.
                out.push(v(
                    model_rule::POOL,
                    format!(
                        "vm `{}`: {} tasks exceed pool capacity {} — worst-case in-flight set overflows",
                        vm.name,
                        vm.tasks.len(),
                        vm.pool_capacity
                    ),
                ));
            }
            for &(t, c, d) in &vm.tasks {
                if let Err(e) = SporadicTask::new(t, c, d) {
                    out.push(v(
                        model_rule::TASK,
                        format!("vm `{}`: task (T={t}, C={c}, D={d}): {e}", vm.name),
                    ));
                }
            }
        }
        servers
    }

    fn verify_admission(
        model: &SystemModel,
        table: Option<&TimeSlotTable>,
        servers: &[Option<PeriodicServer>],
        v: &impl Fn(&'static str, String) -> Violation,
        out: &mut Vec<Violation>,
    ) {
        let Some(table) = table else { return };
        let all: Option<Vec<PeriodicServer>> = servers.iter().copied().collect();
        let Some(all) = all else {
            out.push(v(
                model_rule::THEOREM1,
                "admission requires a valid server on every vm".into(),
            ));
            return;
        };
        match theorem1_exact(table, &all, ADMISSION_MAX_HYPER) {
            Ok(verdict) if verdict.is_schedulable() => {}
            Ok(_) => out.push(v(
                model_rule::THEOREM1,
                "Theorem 1: server set not schedulable on the table's free slots".into(),
            )),
            Err(e) => out.push(v(model_rule::THEOREM1, format!("Theorem 1: {e}"))),
        }
        for (vm, server) in model.vms.iter().zip(&all) {
            let tasks: Result<Vec<SporadicTask>, _> = vm
                .tasks
                .iter()
                .map(|&(t, c, d)| SporadicTask::new(t, c, d))
                .collect();
            let Ok(tasks) = tasks else { continue };
            let set = TaskSet::from(tasks);
            match theorem3_exact(server, &set, ADMISSION_MAX_HYPER) {
                Ok(verdict) if verdict.is_schedulable() => {}
                Ok(_) => out.push(v(
                    model_rule::THEOREM3,
                    format!(
                        "Theorem 3: vm `{}` not schedulable under its server",
                        vm.name
                    ),
                )),
                Err(e) => out.push(v(
                    model_rule::THEOREM3,
                    format!("Theorem 3: vm `{}`: {e}", vm.name),
                )),
            }
        }
    }

    /// NoC checks: route validity, then channel-dependency-graph acyclicity.
    ///
    /// Each directed inter-router link is a CDG node; a route that enters a
    /// router on link `a → b` and leaves on `b → c` adds the edge
    /// `(a→b) → (b→c)`. Wormhole switching holds the full chain of links
    /// while a packet advances, so a cycle in this graph is exactly a
    /// potential routing deadlock (Dally & Seitz); XY routing forbids the
    /// turns that close cycles, which the seeded-cycle fixture demonstrates.
    fn verify_noc(
        noc: &NocModel,
        v: &impl Fn(&'static str, String) -> Violation,
        out: &mut Vec<Violation>,
    ) {
        if noc.width == 0 || noc.height == 0 {
            out.push(v(
                model_rule::NOC_ROUTE,
                format!("mesh {}×{} has a zero dimension", noc.width, noc.height),
            ));
            return;
        }
        let mesh = Mesh::new(noc.width, noc.height);
        // Expand every route to a hop list, validating as we go.
        let mut paths: Vec<Vec<NodeId>> = Vec::new();
        for (ri, route) in noc.routes.iter().enumerate() {
            match route {
                RouteSpec::Xy(src, dst) => {
                    let src = NodeId::new(src.0, src.1);
                    let dst = NodeId::new(dst.0, dst.1);
                    if !mesh.contains(src) || !mesh.contains(dst) {
                        out.push(v(
                            model_rule::NOC_ROUTE,
                            format!(
                                "route {ri}: endpoint outside {}×{} mesh",
                                noc.width, noc.height
                            ),
                        ));
                        continue;
                    }
                    paths.push(mesh.xy_path(src, dst));
                }
                RouteSpec::Explicit(nodes) => {
                    let nodes: Vec<NodeId> =
                        nodes.iter().map(|&(x, y)| NodeId::new(x, y)).collect();
                    let mut ok = true;
                    for node in &nodes {
                        if !mesh.contains(*node) {
                            out.push(v(
                                model_rule::NOC_ROUTE,
                                format!("route {ri}: node {node} outside the mesh"),
                            ));
                            ok = false;
                        }
                    }
                    for w in nodes.windows(2) {
                        if w[0].hops_to(w[1]) != 1 {
                            out.push(v(
                                model_rule::NOC_ROUTE,
                                format!("route {ri}: {} → {} is not a unit hop", w[0], w[1]),
                            ));
                            ok = false;
                        }
                    }
                    if ok {
                        paths.push(nodes);
                    }
                }
            }
        }
        // Build the CDG. Link id = router index × 4 + output-port index
        // (N/S/E/W occupy indices 0–3 of `Direction::ALL`).
        let links = mesh.nodes() * 4;
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for path in &paths {
            let mut prev_link: Option<usize> = None;
            for w in path.windows(2) {
                let dir = step_direction(w[0], w[1]);
                let link = mesh.index_of(w[0]) * 4 + dir.index();
                if let Some(p) = prev_link {
                    edges.insert((p, link));
                }
                prev_link = Some(link);
            }
        }
        let mut adj: Vec<Vec<usize>> = (0..links).map(|_| Vec::new()).collect();
        for &(a, b) in &edges {
            if let Some(list) = adj.get_mut(a) {
                list.push(b);
            }
        }
        if let Some(cycle) = find_cycle(&adj) {
            let pretty: Vec<String> = cycle
                .iter()
                .map(|&link| {
                    let node = mesh.node_at(link / 4);
                    let dir = Direction::ALL
                        .get(link % 4)
                        .copied()
                        .unwrap_or(Direction::Local);
                    format!("{node}→{dir}")
                })
                .collect();
            out.push(v(
                model_rule::NOC_DEADLOCK,
                format!(
                    "channel dependency cycle ({} links): {}",
                    cycle.len(),
                    pretty.join(", ")
                ),
            ));
        }
    }
}

/// Direction of the unit hop `a → b` (caller guarantees adjacency).
fn step_direction(a: NodeId, b: NodeId) -> Direction {
    if b.x > a.x {
        Direction::East
    } else if b.x < a.x {
        Direction::West
    } else if b.y > a.y {
        Direction::South
    } else {
        Direction::North
    }
}

/// Iterative three-colour DFS; returns the node sequence of the first cycle
/// found, or `None` when the graph is acyclic.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; adj.len()];
    let mut parent = vec![usize::MAX; adj.len()];
    for start in 0..adj.len() {
        if color.get(start) != Some(&Color::White) {
            continue;
        }
        // Stack of (node, next child index).
        let mut stack = vec![(start, 0usize)];
        if let Some(c) = color.get_mut(start) {
            *c = Color::Gray;
        }
        while let Some(&(node, next)) = stack.last() {
            let children = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next >= children.len() {
                if let Some(c) = color.get_mut(node) {
                    *c = Color::Black;
                }
                stack.pop();
                continue;
            }
            if let Some(top) = stack.last_mut() {
                top.1 = next + 1;
            }
            let child = children[next]; // lint: allow(indexing) — next < children.len() checked above
            match color.get(child).copied() {
                Some(Color::White) => {
                    if let Some(c) = color.get_mut(child) {
                        *c = Color::Gray;
                    }
                    if let Some(p) = parent.get_mut(child) {
                        *p = node;
                    }
                    stack.push((child, 0));
                }
                Some(Color::Gray) => {
                    // Found a back edge node → child: walk parents back to
                    // child to materialize the cycle.
                    let mut cycle = vec![child];
                    let mut cur = node;
                    while cur != child && cur != usize::MAX {
                        cycle.push(cur);
                        cur = parent.get(cur).copied().unwrap_or(usize::MAX);
                    }
                    cycle.reverse();
                    return Some(cycle);
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(text: &str) -> SystemModel {
        SystemModel::parse(Path::new("mem.model"), text).expect("parses")
    }

    #[test]
    fn parses_full_model() {
        let m = parse(
            "# demo\nmodel demo rig\ntable 20\nreserve 0 2\nreserve 10 2\n\
             vm safety pool=8 server=10/3\ntask 20 2 10\n\
             vm infotainment pool=4\ntask 20 1 20\n\
             noc 3 3\nroutexy 0,0 2,2\nroute 0,0 1,0\nadmission on\n",
        );
        assert_eq!(m.name, "demo rig");
        assert_eq!(m.table_len, 20);
        assert_eq!(m.reservations, vec![(0, 2), (10, 2)]);
        assert_eq!(m.vms.len(), 2);
        assert_eq!(m.vms[0].server, Some((10, 3)));
        assert_eq!(m.vms[0].tasks, vec![(20, 2, 10)]);
        assert_eq!(m.vms[1].server, None);
        assert!(m.admission);
        let noc = m.noc.expect("noc");
        assert_eq!((noc.width, noc.height), (3, 3));
        assert_eq!(noc.routes.len(), 2);
    }

    #[test]
    fn parse_errors_are_violations() {
        let e = SystemModel::parse(Path::new("m"), "bogus 1\n").unwrap_err();
        assert_eq!(e.rule, model_rule::PARSE);
        let e = SystemModel::parse(Path::new("m"), "task 1 1 1\n").unwrap_err();
        assert!(e.message.contains("before any vm"));
    }

    #[test]
    fn good_model_verifies_clean() {
        let m = parse(
            "model ok\ntable 20\nreserve 0 2\nreserve 10 2\n\
             vm a pool=8 server=10/3\ntask 40 2 20\n\
             noc 3 3\nroutexy 0,0 2,2\nroutexy 2,2 0,0\nadmission on\n",
        );
        let v = ConfigVerifier::verify(&m);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn overlapping_reservations_flagged() {
        let m = parse("model bad\ntable 20\nreserve 0 5\nreserve 3 4\n");
        let v = ConfigVerifier::verify(&m);
        assert!(
            v.iter().any(|v| v.rule == model_rule::TABLE_OVERLAP),
            "{v:?}"
        );
    }

    #[test]
    fn out_of_range_reservation_flagged() {
        let m = parse("model bad\ntable 10\nreserve 8 4\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::TABLE), "{v:?}");
    }

    #[test]
    fn hyperperiod_divisibility_enforced() {
        let m = parse("model bad\ntable 20\nvm a server=7/2\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::HYPERPERIOD), "{v:?}");
    }

    #[test]
    fn server_budget_over_period_flagged() {
        let m = parse("model bad\ntable 20\nvm a server=10/11\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::SERVER), "{v:?}");
    }

    #[test]
    fn pool_overflow_flagged() {
        let m = parse("model bad\ntable 20\nvm a pool=1\ntask 20 1 20\ntask 40 1 40\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::POOL), "{v:?}");
    }

    #[test]
    fn bad_task_flagged() {
        let m = parse("model bad\ntable 20\nvm a\ntask 10 5 3\n"); // C > D
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::TASK), "{v:?}");
    }

    #[test]
    fn admission_failure_flagged() {
        // Two servers demanding 100% of a table that is half reserved.
        let m = parse(
            "model bad\ntable 20\nreserve 0 10\n\
             vm a server=10/6\nvm b server=10/6\nadmission on\n",
        );
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::THEOREM1), "{v:?}");
    }

    #[test]
    fn theorem3_failure_flagged() {
        // Server supplies 1/100; task demands 50/100 — locally infeasible.
        let m = parse("model bad\ntable 100\nvm a server=100/1\ntask 100 50 100\nadmission on\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::THEOREM3), "{v:?}");
    }

    #[test]
    fn xy_routes_are_deadlock_free() {
        let mut routes = Vec::new();
        for x in 0..4u16 {
            for y in 0..4u16 {
                routes.push(RouteSpec::Xy((x, y), (3, 3)));
                routes.push(RouteSpec::Xy((3, 3), (x, y)));
            }
        }
        let m = SystemModel {
            noc: Some(NocModel {
                width: 4,
                height: 4,
                routes,
            }),
            table_len: 10,
            ..SystemModel::new("xy", Path::new("mem"))
        };
        let v = ConfigVerifier::verify(&m);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cyclic_turn_pattern_is_flagged() {
        // Four routes circling a 2×2 square: E→S, S→W, W→N, N→E turns close
        // the classic channel-dependency cycle XY routing forbids.
        let m = parse(
            "model cycle\ntable 10\nnoc 2 2\n\
             route 0,0 1,0 1,1\n\
             route 1,0 1,1 0,1\n\
             route 1,1 0,1 0,0\n\
             route 0,1 0,0 1,0\n",
        );
        let v = ConfigVerifier::verify(&m);
        assert!(
            v.iter().any(|v| v.rule == model_rule::NOC_DEADLOCK),
            "{v:?}"
        );
    }

    #[test]
    fn invalid_route_hops_flagged() {
        let m = parse("model bad\ntable 10\nnoc 3 3\nroute 0,0 2,2\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.iter().any(|v| v.rule == model_rule::NOC_ROUTE), "{v:?}");
    }

    #[test]
    fn sbf_cross_check_runs_exhaustively_on_small_tables() {
        // Irregular reservation pattern; the lazy sbf and the O(H²·t)
        // enumeration must agree everywhere up to 2H.
        let m = parse("model sbf\ntable 12\nreserve 0 3\nreserve 5 1\nreserve 8 2\n");
        let v = ConfigVerifier::verify(&m);
        assert!(v.is_empty(), "{v:?}");
    }
}
