//! Layer 1: the source-level lint rules and their engine.
//!
//! Every rule is a deterministic token/line-level check over the stripped
//! code produced by [`crate::scan`]. Rules are scoped per crate (see
//! [`RuleSet::for_crate`]): the hot deterministic-simulation crates get the
//! full set, support crates only the cross-cutting checks. When a file is
//! linted explicitly (fixture mode) every rule applies.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::scan::{LineInfo, SourceFile};

/// Rule identifiers (kebab-case, used in allow directives and reports).
pub mod rule {
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test library code.
    pub const PANIC_SITE: &str = "panic-site";
    /// Direct slice/array indexing `expr[...]` in non-test library code.
    pub const INDEXING: &str = "indexing";
    /// Bare `+` / `*` (or `+=` / `*=`) on time/slot arithmetic that should
    /// use `checked_*` / `saturating_*`.
    pub const UNCHECKED_ARITH: &str = "unchecked-arith";
    /// `as` cast to a type narrower than 64 bits.
    pub const CAST_NARROWING: &str = "cast-narrowing";
    /// `HashMap`/`HashSet`/`std::time` in deterministic-simulation code.
    pub const NONDETERMINISM: &str = "nondeterminism";
    /// Keyed-container lookup inside a loop in a function marked as a
    /// per-cycle hot path (`// lint: hot-path` or a `hot_path` name): the
    /// dense-storage invariant of the event-driven simulation core.
    pub const HOT_PATH_LOOKUP: &str = "hot-path-lookup";
    /// Crate root missing `#![forbid(unsafe_code)]`.
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    /// An allow directive without the mandatory justification text.
    pub const MISSING_JUSTIFICATION: &str = "missing-justification";
    /// A cycle in the workspace lock-acquisition graph (closed over calls):
    /// two threads taking the same mutexes in opposite orders can deadlock.
    pub const LOCK_ORDER: &str = "lock-order";
    /// A mutex guard still live across an `EpochSync`/barrier wait — the
    /// peer region blocks on the mutex while this thread blocks on the
    /// barrier.
    pub const LOCK_ACROSS_BARRIER: &str = "lock-across-barrier";
    /// `Ordering::Relaxed` (or an unpaired `Acquire`/`Release`) on an atomic
    /// field that other region threads also write.
    pub const RELAXED_ORDERING: &str = "relaxed-ordering";
    /// A lock/park/sleep/join reachable from a `// lint: hot-path` function.
    pub const BLOCKING_IN_HOT_PATH: &str = "blocking-in-hot-path";
    /// A plain assignment to a live configuration field (σ\* layout,
    /// scheduling policy, servers, watchdog/admission/degradation policies)
    /// outside a consuming `(mut self)` builder: configuration changes on a
    /// running system must go through the staged, verified, hyperperiod-
    /// aligned reconfiguration protocol (`ioguard-reconfig`), never an
    /// in-place patch.
    pub const LIVE_CONFIG_MUTATION: &str = "live-config-mutation";
    /// A grow accessor on a spillover/retry/backlog queue with no adjacent
    /// capacity guard: rejected-admission buffers must stay bounded, or the
    /// fleet trades a hard admission verdict for an unbounded memory debt.
    pub const UNBOUNDED_SPILLOVER: &str = "unbounded-spillover";
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of [`rule`]'s constants or a model rule).
    pub rule: &'static str,
    /// File (or model) the violation was found in.
    pub path: PathBuf,
    /// 1-based line, zero for whole-file/model findings.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}",
                self.path.display(),
                self.rule,
                self.message
            )
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path.display(),
                self.line,
                self.rule,
                self.message
            )
        }
    }
}

/// Which rules run on a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// Deny panic sites.
    pub panic_site: bool,
    /// Deny direct indexing.
    pub indexing: bool,
    /// Deny unchecked time/slot arithmetic.
    pub unchecked_arith: bool,
    /// Deny narrowing casts.
    pub cast_narrowing: bool,
    /// Deny nondeterministic containers/clocks.
    pub nondeterminism: bool,
    /// Deny keyed-container lookups in loops of annotated hot paths.
    pub hot_path: bool,
    /// Deny in-place assignments to live configuration fields outside
    /// consuming builders.
    pub live_config: bool,
    /// Deny unguarded growth of spillover/retry/backlog queues.
    pub spillover: bool,
}

/// Crates whose library code must be panic-free (hypervisor hot paths and
/// everything feeding the deterministic simulator).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "ioguard-hypervisor",
    "ioguard-sched",
    "ioguard-noc",
    "ioguard-obs",
    "ioguard-reconfig",
    "ioguard-fleet",
    "ioguard-serve",
];

/// Crates whose `u64` time/slot arithmetic must be checked/saturating.
pub const CHECKED_ARITH_CRATES: &[&str] = &[
    "ioguard-sched",
    "ioguard-hypervisor",
    "ioguard-reconfig",
    "ioguard-fleet",
    "ioguard-serve",
];

/// Crates where configuration is immutable once live: every change goes
/// through the staged reconfiguration protocol, so plain assignments to
/// config fields outside consuming builders are forbidden.
pub const LIVE_CONFIG_CRATES: &[&str] = &["ioguard-hypervisor", "ioguard-reconfig"];

/// Crates on the deterministic-simulation path: no hash-ordered containers,
/// no wall clocks.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "ioguard-noc",
    "ioguard-sched",
    "ioguard-hypervisor",
    "ioguard-sim",
    "ioguard-workload",
    "ioguard-baselines",
    "ioguard-obs",
    "ioguard-reconfig",
    "ioguard-fleet",
    "ioguard-serve",
];

/// Crates holding rejected-admission spillover/retry buffers: every grow
/// site must sit next to an explicit capacity guard (see
/// [`rule::UNBOUNDED_SPILLOVER`]).
pub const BOUNDED_SPILLOVER_CRATES: &[&str] = &["ioguard-fleet", "ioguard-serve"];

impl RuleSet {
    /// Every rule enabled (fixture mode / explicit paths).
    pub fn all() -> Self {
        Self {
            panic_site: true,
            indexing: true,
            unchecked_arith: true,
            cast_narrowing: true,
            nondeterminism: true,
            hot_path: true,
            live_config: true,
            spillover: true,
        }
    }

    /// The rule set for a workspace crate, by package name.
    pub fn for_crate(name: &str) -> Self {
        Self {
            panic_site: PANIC_FREE_CRATES.contains(&name),
            indexing: PANIC_FREE_CRATES.contains(&name),
            unchecked_arith: CHECKED_ARITH_CRATES.contains(&name),
            cast_narrowing: CHECKED_ARITH_CRATES.contains(&name),
            nondeterminism: DETERMINISTIC_CRATES.contains(&name),
            hot_path: DETERMINISTIC_CRATES.contains(&name),
            live_config: LIVE_CONFIG_CRATES.contains(&name),
            spillover: BOUNDED_SPILLOVER_CRATES.contains(&name),
        }
    }

    /// True when no rule is enabled.
    pub fn is_empty(&self) -> bool {
        !(self.panic_site
            || self.indexing
            || self.unchecked_arith
            || self.cast_narrowing
            || self.nondeterminism
            || self.hot_path
            || self.live_config
            || self.spillover)
    }
}

/// Identifier components that mark a line as time/slot arithmetic. An
/// identifier participates when any of its `_`-separated components is in
/// this set (so `horizon_slots`, `free_count` and `enqueued_at` all match).
const TIME_VOCAB: &[&str] = &[
    "slot",
    "slots",
    "deadline",
    "deadlines",
    "period",
    "periods",
    "wcet",
    "release",
    "releases",
    "hyper",
    "budget",
    "horizon",
    "now",
    "supply",
    "demand",
    "free",
    "enqueued",
    "cycles",
    "reserved",
];

/// Panic-site tokens. `.unwrap_or*` / `.expect_err` deliberately do not
/// match (`(` and `)` anchor the exact method).
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Nondeterminism tokens: hash-ordered containers and wall clocks.
const NONDET_TOKENS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "std::time",
    "Instant::now",
    "SystemTime",
];

/// Identifier components that mark a receiver as a cross-thread hand-off
/// queue (the PDES engine's boundary channels, and anything named like
/// them). A component matches after `_`-splitting, so `noc_inbox`,
/// `handoff_queue` and `self.outbox` all qualify.
const HANDOFF_VOCAB: &[&str] = &[
    "inbox",
    "inboxes",
    "outbox",
    "outboxes",
    "mailbox",
    "mailboxes",
    "handoff",
    "handoffs",
];

/// Accessors that consume a queue in *arrival* order. On a queue fed by
/// another thread, arrival order is scheduler-dependent: draining one this
/// way is only deterministic when every message carries an explicit merge
/// key (e.g. the PDES engine's `(cycle, link)` tags) that the consumer
/// filters on.
const HANDOFF_DRAIN_TOKENS: &[&str] = &[
    ".pop_front(",
    ".pop_back(",
    ".pop(",
    ".drain(",
    ".recv(",
    ".try_recv(",
];

/// Identifier components that mark a receiver as a spillover/retry buffer:
/// the holding pen for work the admission control rejected. A component
/// matches after `_`-splitting, so `self.spillover`, `retry_queue` and
/// `arrival_backlog` all qualify.
const SPILLOVER_VOCAB: &[&str] = &[
    "spillover",
    "spill",
    "spills",
    "spilled",
    "retry",
    "retries",
    "backlog",
    "backlogs",
];

/// Accessors that grow a collection. On a spillover buffer each of these
/// must sit next to an explicit capacity guard, or rejected work accretes
/// without bound.
const SPILLOVER_GROW_TOKENS: &[&str] = &[
    ".push(",
    ".push_back(",
    ".push_front(",
    ".insert(",
    ".extend(",
];

/// Identifier components that mark a line as a capacity guard. A growth
/// site is exempt when this vocabulary appears on the growth line itself or
/// on one of the two preceding code lines — the bound must be *locally*
/// evident, not established in some distant invariant.
const CAPACITY_VOCAB: &[&str] = &["cap", "capacity", "bound", "bounded", "limit", "limits"];

/// Keyed-container signatures that have no place inside a per-cycle hot
/// loop: container type names plus the `&`-keyed accessor shapes maps use
/// (slice `get` takes a plain index, so `.get(&` / `.remove(&` single out
/// keyed lookups). O(log n) or hashing per flit is exactly what the dense
/// event-driven core exists to avoid.
const HOT_LOOKUP_TOKENS: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    ".contains_key(",
    ".entry(",
    ".get(&",
    ".get_mut(&",
    ".remove(&",
];

/// Configuration fields that are immutable once a system is live. A plain
/// `receiver.<field> = …` assignment outside a consuming `(mut self)`
/// builder (and outside tests) is an in-place config patch — the exact
/// shape the staged reconfiguration protocol replaces. Matched as whole
/// field names, not `_`-components, so runtime state like `watchdog_state`
/// never trips the rule.
const LIVE_CONFIG_FIELDS: &[&str] = &[
    "pchannel",
    "policy",
    "servers",
    "task_sets",
    "predefined",
    "owners",
    "sigma",
    "reclaim",
    "watchdog",
    "degradation",
    "admission_guard",
    "pool_capacity",
    "max_table_len",
];

/// Narrowing cast targets: anything below 64 bits loses range on the `u64`
/// slot/time domain. `as usize`/`as u64`/`as i64`/`as f64` stay legal (the
/// simulator asserts a 64-bit platform at compile time).
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Lints one preprocessed file with the given rule set, appending findings
/// to `out`. Allow directives suppress findings per rule; an allow without a
/// justification is itself a violation.
pub fn lint_file(file: &SourceFile, rules: RuleSet, out: &mut Vec<Violation>) {
    // Unjustified allows are violations wherever they appear.
    for allow in file
        .file_allows
        .iter()
        .chain(file.lines.iter().flat_map(|l| l.allows.iter()))
    {
        if !allow.justified() {
            out.push(Violation {
                rule: rule::MISSING_JUSTIFICATION,
                path: file.path.clone(),
                line: allow.line,
                message: format!(
                    "allow({}) requires a justification of at least {} characters",
                    allow.rule,
                    crate::scan::MIN_JUSTIFICATION
                ),
            });
        }
    }
    if rules.is_empty() {
        return;
    }
    for (index, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if rules.panic_site {
            check_tokens(file, line, rule::PANIC_SITE, PANIC_TOKENS, out);
        }
        if rules.nondeterminism {
            check_tokens(file, line, rule::NONDETERMINISM, NONDET_TOKENS, out);
            check_handoff_drain(file, line, out);
        }
        if rules.indexing {
            check_indexing(file, line, out);
        }
        if rules.cast_narrowing {
            check_casts(file, line, out);
        }
        if rules.unchecked_arith {
            check_arith(file, line, out);
        }
        if rules.hot_path && line.in_hot_path && line.in_loop {
            check_hot_lookup(file, line, out);
        }
        if rules.live_config && !line.in_builder {
            check_live_config(file, line, out);
        }
        if rules.spillover {
            check_spillover_growth(file, index, line, out);
        }
    }
}

/// In-place assignments to live configuration fields outside consuming
/// builders: `receiver.<config-field> = …` where the `=` is a plain
/// assignment (not `==`, `=>`, or a compound operator). Builders taking
/// `mut self` by value are exempt via [`crate::scan::LineInfo::in_builder`];
/// struct literals (`field: value`) never match the assignment shape.
fn check_live_config(file: &SourceFile, line: &LineInfo, out: &mut Vec<Violation>) {
    let Some(field) = find_live_config_assignment(&line.code) else {
        return;
    };
    if file.allow_for(rule::LIVE_CONFIG_MUTATION, line).is_some() {
        return;
    }
    out.push(Violation {
        rule: rule::LIVE_CONFIG_MUTATION,
        path: file.path.clone(),
        line: line.number,
        message: format!(
            "in-place assignment to live config field `{field}` — stage a new \
             config through the reconfiguration protocol (or a consuming \
             `with_*` builder before activation)"
        ),
    });
}

/// The first live-config field assigned on the line, if any: a
/// `.<field>` access with a real receiver, followed (after whitespace) by a
/// single `=` that is not part of `==`, `=>` or a compound operator.
fn find_live_config_assignment(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    for field in LIVE_CONFIG_FIELDS {
        let dotted = format!(".{field}");
        let mut start = 0;
        while let Some(pos) = code[start..].find(&dotted) {
            let at = start + pos;
            start = at + 1;
            // A real receiver ends just before the dot.
            let has_receiver = at > 0 && {
                let prev = bytes[at - 1] as char;
                is_ident_char(prev) || prev == ')' || prev == ']'
            };
            if !has_receiver {
                continue;
            }
            // Whole-field match: the name must end at an identifier boundary.
            let end = at + dotted.len();
            if bytes.get(end).is_some_and(|&b| is_ident_char(b as char)) {
                continue;
            }
            // A plain `=` follows (skipping whitespace): assignment, not
            // comparison (`==`), pattern arm (`=>`) or compound op (`+=`).
            let mut j = end;
            while bytes.get(j).is_some_and(|b| (*b as char).is_whitespace()) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'=')
                && bytes.get(j + 1) != Some(&b'=')
                && bytes.get(j + 1) != Some(&b'>')
            {
                return Some(field);
            }
        }
    }
    None
}

/// Keyed lookups in loops of hot-path-annotated functions.
///
/// Lines calling `.record(` are exempt: `TraceSink::record` (and the
/// legacy `TraceBuffer::record`) is a constant-time ring-buffer write,
/// designed for exactly these loops, and its argument expressions are the
/// sink's concern, not a storage-layout violation.
fn check_hot_lookup(file: &SourceFile, line: &LineInfo, out: &mut Vec<Violation>) {
    if contains_token(&line.code, ".record(") {
        return;
    }
    for token in HOT_LOOKUP_TOKENS {
        if !contains_token(&line.code, token) {
            continue;
        }
        if file.allow_for(rule::HOT_PATH_LOOKUP, line).is_some() {
            continue;
        }
        out.push(Violation {
            rule: rule::HOT_PATH_LOOKUP,
            path: file.path.clone(),
            line: line.number,
            message: format!(
                "`{}` inside a per-cycle hot-path loop — use dense indexed storage, \
                 or justify with lint: allow(hot-path-lookup)",
                token.trim_matches('.')
            ),
        });
    }
}

fn check_tokens(
    file: &SourceFile,
    line: &LineInfo,
    rule_name: &'static str,
    tokens: &[&str],
    out: &mut Vec<Violation>,
) {
    for token in tokens {
        if !contains_token(&line.code, token) {
            continue;
        }
        if file.allow_for(rule_name, line).is_some() {
            continue;
        }
        out.push(Violation {
            rule: rule_name,
            path: file.path.clone(),
            line: line.number,
            message: format!("`{}` in non-test library code", token.trim_matches('.')),
        });
    }
}

/// True when any identifier in `text` has a `_`-component in `vocab`.
fn mentions_vocab(text: &str, vocab: &[&str]) -> bool {
    text.split(|c: char| !is_ident_char(c))
        .filter(|w| !w.is_empty())
        .flat_map(|w| w.split('_'))
        .any(|part| {
            let lower = part.to_ascii_lowercase();
            vocab.contains(&lower.as_str())
        })
}

/// True when any identifier in `text` has a `_`-component in the hand-off
/// vocabulary.
fn mentions_handoff_vocab(text: &str) -> bool {
    mentions_vocab(text, HANDOFF_VOCAB)
}

/// Unordered drains of cross-thread hand-off queues: a
/// [`HANDOFF_DRAIN_TOKENS`] accessor whose receiver expression mentions the
/// [`HANDOFF_VOCAB`]. Arrival order on such a queue depends on thread
/// scheduling, so consuming it positionally is nondeterministic unless the
/// drain filters on an explicit merge key — in which case the site
/// documents that with a `lint: allow(nondeterminism)` justification.
fn check_handoff_drain(file: &SourceFile, line: &LineInfo, out: &mut Vec<Violation>) {
    let Some(token) = find_handoff_drain(&line.code) else {
        return;
    };
    if file.allow_for(rule::NONDETERMINISM, line).is_some() {
        return;
    }
    out.push(Violation {
        rule: rule::NONDETERMINISM,
        path: file.path.clone(),
        line: line.number,
        message: format!(
            "`{}` drains a cross-thread hand-off queue in arrival order — \
             filter on an explicit (cycle, link) merge key, or justify with \
             lint: allow(nondeterminism)",
            token.trim_matches(|c| c == '.' || c == '(')
        ),
    });
}

/// The last hand-off-queue drain accessor on the line, if any: a
/// [`HANDOFF_DRAIN_TOKENS`] accessor whose receiver expression mentions the
/// [`HANDOFF_VOCAB`]. Shared with the interprocedural summaries in
/// [`crate::graph`].
pub(crate) fn find_handoff_drain(code: &str) -> Option<&'static str> {
    let mut flagged: Option<&'static str> = None;
    for token in HANDOFF_DRAIN_TOKENS {
        let mut start = 0;
        while let Some(pos) = code[start..].find(token) {
            let at = start + pos;
            // The receiver: the maximal operand run left of the accessor
            // (vocabulary components are order-insensitive, but the words
            // themselves are not — restore reading order after the
            // right-to-left scan).
            let receiver: String = code[..at]
                .chars()
                .rev()
                .take_while(|&c| is_ident_char(c) || matches!(c, '.' | '(' | ')' | '[' | ']' | ':'))
                .collect::<Vec<char>>()
                .into_iter()
                .rev()
                .collect();
            if mentions_handoff_vocab(&receiver) {
                flagged = Some(token);
            }
            start = at + token.len();
        }
    }
    flagged
}

/// Unguarded growth of a spillover/retry buffer: a
/// [`SPILLOVER_GROW_TOKENS`] accessor whose receiver expression mentions
/// the [`SPILLOVER_VOCAB`], with no [`CAPACITY_VOCAB`] in the local window
/// (the growth line itself or the two code lines above it — the usual
/// `if len < capacity { … }` guard shape). A bound proven elsewhere is
/// documented with a `lint: allow(unbounded-spillover)` justification.
fn check_spillover_growth(
    file: &SourceFile,
    index: usize,
    line: &LineInfo,
    out: &mut Vec<Violation>,
) {
    let Some(token) = find_spillover_growth(&line.code) else {
        return;
    };
    let guarded = file.lines[index.saturating_sub(2)..=index]
        .iter()
        .any(|l| mentions_vocab(&l.code, CAPACITY_VOCAB));
    if guarded {
        return;
    }
    if file.allow_for(rule::UNBOUNDED_SPILLOVER, line).is_some() {
        return;
    }
    out.push(Violation {
        rule: rule::UNBOUNDED_SPILLOVER,
        path: file.path.clone(),
        line: line.number,
        message: format!(
            "`{}` grows a spillover/retry buffer with no adjacent capacity \
             guard — compare against an explicit capacity/limit first, or \
             justify with lint: allow(unbounded-spillover)",
            token.trim_matches(|c| c == '.' || c == '(')
        ),
    });
}

/// The last spillover-growth accessor on the line, if any: a
/// [`SPILLOVER_GROW_TOKENS`] accessor whose receiver expression mentions
/// the [`SPILLOVER_VOCAB`].
fn find_spillover_growth(code: &str) -> Option<&'static str> {
    let mut flagged: Option<&'static str> = None;
    for token in SPILLOVER_GROW_TOKENS {
        let mut start = 0;
        while let Some(pos) = code[start..].find(token) {
            let at = start + pos;
            let receiver: String = code[..at]
                .chars()
                .rev()
                .take_while(|&c| is_ident_char(c) || matches!(c, '.' | '(' | ')' | '[' | ']' | ':'))
                .collect::<Vec<char>>()
                .into_iter()
                .rev()
                .collect();
            if mentions_vocab(&receiver, SPILLOVER_VOCAB) {
                flagged = Some(token);
            }
            start = at + token.len();
        }
    }
    flagged
}

/// Token containment with identifier-boundary checks on both sides, so
/// `HashMap` does not match `MyHashMapLike` and `panic!` does not match
/// `dont_panic!`.
pub(crate) fn contains_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        let end = at + token.len();
        let first = token.chars().next().unwrap_or(' ');
        let last = token.chars().last().unwrap_or(' ');
        // Only enforce the trailing boundary for tokens ending in an
        // identifier character (e.g. `HashMap`, `std::time`).
        let after_ok = !is_ident_char(last)
            || end >= code.len()
            || !is_ident_char(code.as_bytes()[end] as char);
        let leading_ok = !is_ident_char(first) || before_ok;
        if leading_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Direct indexing: `[` immediately preceded by an identifier character,
/// `)` or `]`. Attribute syntax (`#[...]`), array literals (`= [...]`),
/// slice types (`&[...]`) and macros (`vec![...]`) never match.
fn check_indexing(file: &SourceFile, line: &LineInfo, out: &mut Vec<Violation>) {
    let bytes = line.code.as_bytes();
    let mut hits = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if is_ident_char(prev) || prev == ')' || prev == ']' {
            hits += 1;
        }
    }
    if hits == 0 || file.allow_for(rule::INDEXING, line).is_some() {
        return;
    }
    out.push(Violation {
        rule: rule::INDEXING,
        path: file.path.clone(),
        line: line.number,
        message: format!(
            "direct indexing ({hits} site{}) — use get()/get_mut() or an allow with bounds justification",
            if hits == 1 { "" } else { "s" }
        ),
    });
}

fn check_casts(file: &SourceFile, line: &LineInfo, out: &mut Vec<Violation>) {
    let code = &line.code;
    let mut start = 0;
    let mut flagged: Option<&str> = None;
    while let Some(pos) = code[start..].find(" as ") {
        let at = start + pos + 4;
        let rest = &code[at..];
        for target in NARROW_CASTS {
            if rest.starts_with(target) {
                let end = at + target.len();
                if end >= code.len() || !is_ident_char(code.as_bytes()[end] as char) {
                    flagged = Some(target);
                }
            }
        }
        start = at;
    }
    let Some(target) = flagged else { return };
    if file.allow_for(rule::CAST_NARROWING, line).is_some() {
        return;
    }
    out.push(Violation {
        rule: rule::CAST_NARROWING,
        path: file.path.clone(),
        line: line.number,
        message: format!("narrowing `as {target}` cast — use try_from or a saturating conversion"),
    });
}

/// True when any identifier in `text` has a `_`-component in the time
/// vocabulary.
fn mentions_time_vocab(text: &str) -> bool {
    text.split(|c: char| !is_ident_char(c))
        .filter(|w| !w.is_empty())
        .flat_map(|w| w.split('_'))
        .any(|part| {
            let lower = part.to_ascii_lowercase();
            TIME_VOCAB.contains(&lower.as_str())
        })
}

/// True when either operand adjacent to the operator at byte `op_at`
/// mentions the time vocabulary. An operand is the maximal run of
/// identifier/`.`/`(`/`)`/`[`/`]`/`:` characters next to the operator
/// (whitespace between operand and operator is skipped).
fn operand_mentions_vocab(code: &str, op_at: usize) -> bool {
    let is_operand_char =
        |c: char| is_ident_char(c) || matches!(c, '.' | '(' | ')' | '[' | ']' | ':');
    let left = code[..op_at]
        .trim_end()
        .chars()
        .rev()
        .take_while(|&c| is_operand_char(c))
        .collect::<String>();
    let right = code
        .get(op_at + 1..)
        .unwrap_or("")
        .trim_start_matches('=')
        .trim_start()
        .chars()
        .take_while(|&c| is_operand_char(c))
        .collect::<String>();
    mentions_time_vocab(&left) || mentions_time_vocab(&right)
}

fn check_arith(file: &SourceFile, line: &LineInfo, out: &mut Vec<Violation>) {
    let code = &line.code;
    // Heuristic exclusions, documented in DESIGN.md: float math cannot
    // overflow into wrong slots; checked/saturating/wrapping lines already
    // comply; assertion lines are diagnostics, not production arithmetic.
    if code.contains("f64")
        || code.contains("f32")
        || code.contains("checked_")
        || code.contains("saturating_")
        || code.contains("wrapping_")
        || code.contains("assert")
    {
        return;
    }
    if !mentions_time_vocab(code) {
        return;
    }
    let bytes = code.as_bytes();
    let mut op: Option<char> = None;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'+' && b != b'*' {
            continue;
        }
        // Binary use: the previous non-space char ends an operand.
        let prev = bytes[..i]
            .iter()
            .rev()
            .map(|&p| p as char)
            .find(|c| !c.is_whitespace());
        let prev_ok = prev.is_some_and(|c| is_ident_char(c) || c == ')' || c == ']');
        // The next non-space char starts an operand (rejects `+ 'a` bounds
        // and `*const`-style tokens).
        let next = bytes[i + 1..]
            .iter()
            .map(|&n| n as char)
            .find(|c| !c.is_whitespace());
        let compound = next == Some('=');
        let next_ok =
            compound || next.is_some_and(|c| is_ident_char(c) || c == '(' || c == '&' || c == '.');
        // The vocabulary word must sit in an adjacent operand, not merely
        // somewhere on the line — `T: Clone + Send` in a fn named `slots`
        // is a trait bound, not slot arithmetic.
        if prev_ok && next_ok && operand_mentions_vocab(code, i) {
            op = Some(b as char);
            break;
        }
    }
    let Some(op) = op else { return };
    if file.allow_for(rule::UNCHECKED_ARITH, line).is_some() {
        return;
    }
    out.push(Violation {
        rule: rule::UNCHECKED_ARITH,
        path: file.path.clone(),
        line: line.number,
        message: format!(
            "unchecked `{op}` on time/slot arithmetic — use checked_/saturating_ operations"
        ),
    });
}

/// Crate-root rule: `lib.rs` must carry `#![forbid(unsafe_code)]`.
pub fn check_forbid_unsafe(file: &SourceFile, out: &mut Vec<Violation>) {
    let has = file
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !has {
        out.push(Violation {
            rule: rule::FORBID_UNSAFE,
            path: file.path.clone(),
            line: 0,
            message: "crate root missing #![forbid(unsafe_code)]".into(),
        });
    }
}

/// Every `.rs` file under `dir` (recursively), sorted by path — the
/// deterministic work-list both the sequential and the engine-parallel
/// scans share.
pub fn collect_rs_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut stack = vec![dir.to_path_buf()];
    let mut files: Vec<PathBuf> = Vec::new();
    while let Some(d) = stack.pop() {
        if d.is_file() {
            if d.extension().is_some_and(|e| e == "rs") {
                files.push(d);
            }
            continue;
        }
        let entries =
            std::fs::read_dir(&d).map_err(|e| format!("cannot list {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", d.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every `.rs` file under `dir` (recursively) with `rules`.
pub fn lint_tree(dir: &Path, rules: RuleSet, out: &mut Vec<Violation>) -> Result<usize, String> {
    lint_tree_threaded(dir, rules, 1, out)
}

/// [`lint_tree`] with file scanning spread over the work-stealing engine.
/// Results are scattered back in work-list (path) order before merging, so
/// the violation list is identical at any thread count.
pub fn lint_tree_threaded(
    dir: &Path,
    rules: RuleSet,
    threads: usize,
    out: &mut Vec<Violation>,
) -> Result<usize, String> {
    let files = collect_rs_files(dir)?;
    let (results, _) = ioguard_core::engine::run_indexed(threads, &files, |_, path| {
        SourceFile::load(path).map(|file| {
            let mut v = Vec::new();
            lint_file(&file, rules, &mut v);
            v
        })
    });
    let scanned = results.len();
    for r in results {
        out.extend(r?);
    }
    Ok(scanned)
}

/// Renders violations as machine-readable JSON lines: one object per
/// violation, fields in a fixed order (`path`, `line`, `rule`, `message`),
/// no trailing spaces — byte-identical across runs and thread counts.
pub fn render_json(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str("{\"path\":");
        json_string(&v.path.display().to_string(), &mut out);
        out.push_str(",\"line\":");
        out.push_str(&v.line.to_string());
        out.push_str(",\"rule\":");
        json_string(v.rule, &mut out);
        out.push_str(",\"message\":");
        json_string(&v.message, &mut out);
        out.push_str("}\n");
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint_src(text: &str, rules: RuleSet) -> Vec<Violation> {
        let file = SourceFile::parse(Path::new("mem.rs"), text);
        let mut out = Vec::new();
        lint_file(&file, rules, &mut out);
        out
    }

    #[test]
    fn flags_unordered_handoff_drains() {
        // Every drain shape on hand-off-vocabulary receivers is caught.
        let v = lint_src(
            "fn f() {\n\
             let a = inbox.pop_front();\n\
             let b = self.outbox.pop();\n\
             for m in handoff_queue.drain(..) { use_it(m); }\n\
             let c = mailboxes[i].try_recv();\n\
             }\n",
            RuleSet::all(),
        );
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == rule::NONDETERMINISM && v.message.contains("hand-off"))
                .count(),
            4,
            "{v:?}"
        );
    }

    #[test]
    fn ordinary_queue_drains_are_not_handoff_violations() {
        // The same accessors on non-hand-off receivers stay legal: the rule
        // keys on the cross-thread vocabulary, not on VecDeque use at large.
        let v = lint_src(
            "fn f() {\n\
             let a = queue.pop_front();\n\
             let b = free_slots.pop();\n\
             for m in merge.drain(..) { use_it(m); }\n\
             }\n",
            RuleSet::all(),
        );
        assert!(!v.iter().any(|v| v.message.contains("hand-off")), "{v:?}");
    }

    #[test]
    fn justified_handoff_drain_is_allowed() {
        let v = lint_src(
            "fn f() {\n\
             // lint: allow(nondeterminism) — drains only messages keyed below the cycle fence\n\
             let a = inbox.pop_front();\n\
             }\n",
            RuleSet::all(),
        );
        assert!(!v.iter().any(|v| v.rule == rule::NONDETERMINISM), "{v:?}");
    }

    #[test]
    fn flags_unguarded_spillover_growth() {
        // Every grow shape on spillover-vocabulary receivers is caught when
        // no capacity guard sits in the local window.
        let v = lint_src(
            "fn f() {\n\
             self.spillover.push_back(entry);\n\
             retry_queue.push(item);\n\
             backlog.insert(key, value);\n\
             spilled[shard].extend(batch);\n\
             }\n",
            RuleSet::all(),
        );
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == rule::UNBOUNDED_SPILLOVER)
                .count(),
            4,
            "{v:?}"
        );
    }

    #[test]
    fn guarded_spillover_growth_is_exempt() {
        // The canonical guard shape — a capacity comparison on the growth
        // line or within the two lines above it — is the documented bound.
        let v = lint_src(
            "fn f() {\n\
             if self.spillover.len() < self.config.spill_capacity {\n\
             self.spillover.push_back(entry);\n\
             }\n\
             if retries.len() < retry_limit { retries.push(item); }\n\
             }\n",
            RuleSet::all(),
        );
        assert!(
            !v.iter().any(|v| v.rule == rule::UNBOUNDED_SPILLOVER),
            "{v:?}"
        );
    }

    #[test]
    fn ordinary_growth_is_not_a_spillover_violation() {
        // The same accessors on non-spillover receivers stay legal: the
        // rule keys on the rejected-work vocabulary, not Vec::push at large.
        let v = lint_src(
            "fn f() {\n\
             decisions.push(d);\n\
             residents.insert(vm, tasks);\n\
             }\n",
            RuleSet::all(),
        );
        assert!(
            !v.iter().any(|v| v.rule == rule::UNBOUNDED_SPILLOVER),
            "{v:?}"
        );
    }

    #[test]
    fn justified_spillover_growth_is_allowed() {
        let v = lint_src(
            "fn f() {\n\
             // lint: allow(unbounded-spillover) — drained every hyperperiod by the reaper\n\
             backlog.push_back(entry);\n\
             }\n",
            RuleSet::all(),
        );
        assert!(
            !v.iter().any(|v| v.rule == rule::UNBOUNDED_SPILLOVER),
            "{v:?}"
        );
    }

    #[test]
    fn flags_unwrap_and_expect_in_library_code() {
        let v = lint_src("fn f() { x.unwrap(); y.expect(\"m\"); }\n", RuleSet::all());
        assert_eq!(
            v.iter().filter(|v| v.rule == rule::PANIC_SITE).count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let v = lint_src(
            "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }\n",
            RuleSet::all(),
        );
        assert!(v.iter().all(|v| v.rule != rule::PANIC_SITE), "{v:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let v = lint_src(
            "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); v[0]; }\n}\n",
            RuleSet::all(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let v = lint_src(
            "fn f() { x.unwrap(); } // lint: allow(panic-site) — invariant: x was checked above\n",
            RuleSet::all(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_without_justification_is_flagged() {
        let v = lint_src(
            "fn f() { x.unwrap(); } // lint: allow(panic-site)\n",
            RuleSet::all(),
        );
        assert!(v.iter().any(|v| v.rule == rule::MISSING_JUSTIFICATION));
        // The panic-site itself stays suppressed — the finding is about the
        // justification, not the site.
        assert!(v.iter().all(|v| v.rule != rule::PANIC_SITE));
    }

    #[test]
    fn flags_indexing_but_not_attributes_or_literals() {
        let v = lint_src(
            "#[derive(Debug)]\nfn f(v: &[u64]) -> u64 { let a = [0u64; 4]; v[0] + a[1] }\n",
            RuleSet {
                indexing: true,
                ..RuleSet::for_crate("other")
            },
        );
        assert_eq!(v.iter().filter(|v| v.rule == rule::INDEXING).count(), 1);
    }

    #[test]
    fn file_wide_indexing_allow() {
        let v = lint_src(
            "// lint: allow(indexing, file) — arrays are sized to mesh.nodes() at construction\nfn f(v: &[u64]) -> u64 { v[0] }\n",
            RuleSet::all(),
        );
        assert!(v.iter().all(|v| v.rule != rule::INDEXING), "{v:?}");
    }

    #[test]
    fn flags_unchecked_time_arithmetic() {
        let v = lint_src(
            "fn f(deadline: u64, period: u64) -> u64 { deadline + period }\n",
            RuleSet::all(),
        );
        assert_eq!(
            v.iter().filter(|v| v.rule == rule::UNCHECKED_ARITH).count(),
            1,
            "{v:?}"
        );
    }

    #[test]
    fn checked_and_float_lines_pass() {
        let v = lint_src(
            "fn f(deadline: u64, period: u64) -> u64 { deadline.checked_add(period).unwrap_or(u64::MAX) }\nfn g(u: f64, period: u64) -> f64 { u * period as f64 }\n",
            RuleSet {
                unchecked_arith: true,
                ..RuleSet::for_crate("other")
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn trait_bounds_and_lifetimes_do_not_trip_arith() {
        let v = lint_src(
            "fn slots<'a, T: Clone + Send>(x: &'a T) -> impl Iterator<Item = bool> + 'a { std::iter::empty() }\n",
            RuleSet {
                unchecked_arith: true,
                ..RuleSet::for_crate("other")
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_vocab_arithmetic_passes() {
        let v = lint_src(
            "fn f(a: u64, b: u64) -> u64 { a + b }\n",
            RuleSet {
                unchecked_arith: true,
                ..RuleSet::for_crate("other")
            },
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_narrowing_casts_only() {
        let v = lint_src(
            "fn f(x: u64) -> u32 { let _k = x as usize; let _m = x as u64; x as u32 }\n",
            RuleSet::all(),
        );
        assert_eq!(
            v.iter().filter(|v| v.rule == rule::CAST_NARROWING).count(),
            1,
            "{v:?}"
        );
    }

    #[test]
    fn flags_hash_containers_and_clocks() {
        let v = lint_src(
            "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n",
            RuleSet::all(),
        );
        assert_eq!(
            v.iter().filter(|v| v.rule == rule::NONDETERMINISM).count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn hot_path_loop_lookup_is_flagged() {
        let v = lint_src(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(m: &std::collections::BTreeMap<u64, u64>) {\n    for i in 0..4 {\n        let _ = m.get(&i);\n    }\n}\n",
            RuleSet {
                hot_path: true,
                ..RuleSet::for_crate("other")
            },
        );
        assert!(v.iter().any(|v| v.rule == rule::HOT_PATH_LOOKUP), "{v:?}");
    }

    #[test]
    fn hot_path_lookup_outside_loop_or_cold_fn_passes() {
        let rules = RuleSet {
            hot_path: true,
            ..RuleSet::for_crate("other")
        };
        // Lookup in a hot fn but outside any loop: setup cost, allowed.
        let v = lint_src(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(m: &M) {\n    let _ = m.ids.get(&7);\n}\n",
            rules,
        );
        assert!(v.iter().all(|v| v.rule != rule::HOT_PATH_LOOKUP), "{v:?}");
        // Loop lookup in an unannotated fn: not a hot path.
        let v = lint_src(
            "fn cold(m: &M) {\n    for i in 0..4 {\n        let _ = m.ids.get(&i);\n    }\n}\n",
            rules,
        );
        assert!(v.iter().all(|v| v.rule != rule::HOT_PATH_LOOKUP), "{v:?}");
        // Slice-style positional get in a hot loop: not a keyed lookup.
        let v = lint_src(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(v: &[u64]) {\n    for i in 0..4 {\n        let _ = v.get(i);\n    }\n}\n",
            rules,
        );
        assert!(v.iter().all(|v| v.rule != rule::HOT_PATH_LOOKUP), "{v:?}");
    }

    #[test]
    fn hot_path_lookup_allow_escape_hatch() {
        let v = lint_src(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(m: &M) {\n    for i in 0..4 {\n        let _ = m.ids.get(&i); // lint: allow(hot-path-lookup) — cold slow path taken once per fault window\n    }\n}\n",
            RuleSet {
                hot_path: true,
                ..RuleSet::for_crate("other")
            },
        );
        assert!(v.iter().all(|v| v.rule != rule::HOT_PATH_LOOKUP), "{v:?}");
    }

    #[test]
    fn crate_scoping_disables_rules() {
        let rules = RuleSet::for_crate("ioguard-hw");
        assert!(rules.is_empty());
        let rules = RuleSet::for_crate("ioguard-noc");
        assert!(rules.panic_site && !rules.unchecked_arith);
        let rules = RuleSet::for_crate("ioguard-sched");
        assert!(rules.panic_site && rules.unchecked_arith && rules.nondeterminism);
        let rules = RuleSet::for_crate("ioguard-obs");
        assert!(rules.panic_site && rules.nondeterminism && !rules.unchecked_arith);
    }

    #[test]
    fn hot_path_record_call_is_exempt() {
        let rules = RuleSet {
            hot_path: true,
            ..RuleSet::for_crate("other")
        };
        // A trace-sink record in a hot loop is an O(1) ring write — legal
        // even when its arguments contain keyed-accessor shapes.
        let v = lint_src(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(m: &M) {\n    for i in 0..4 {\n        sink.record(now, m.kinds.get(&i));\n    }\n}\n",
            rules,
        );
        assert!(v.iter().all(|v| v.rule != rule::HOT_PATH_LOOKUP), "{v:?}");
        // The same lookup without the record call still fires.
        let v = lint_src(
            "// lint: hot-path — per-cycle stepper\nfn step_cycle(m: &M) {\n    for i in 0..4 {\n        let _ = m.kinds.get(&i);\n    }\n}\n",
            rules,
        );
        assert!(v.iter().any(|v| v.rule == rule::HOT_PATH_LOOKUP), "{v:?}");
    }

    #[test]
    fn flags_live_config_mutation_outside_builders() {
        let v = lint_src(
            "fn patch(live: &mut Hv) {\n    live.predefined = Vec::new();\n    live.params.watchdog = None;\n}\n",
            RuleSet::all(),
        );
        assert_eq!(
            v.iter()
                .filter(|v| v.rule == rule::LIVE_CONFIG_MUTATION)
                .count(),
            2,
            "{v:?}"
        );
    }

    #[test]
    fn builder_config_assignment_is_legal() {
        let v = lint_src(
            "impl P {\n    pub fn with_policy(mut self, p: G) -> Self {\n        self.policy = p;\n        self\n    }\n}\n",
            RuleSet::all(),
        );
        assert!(
            v.iter().all(|v| v.rule != rule::LIVE_CONFIG_MUTATION),
            "{v:?}"
        );
    }

    #[test]
    fn comparisons_literals_and_lookalikes_do_not_trip_live_config() {
        let v = lint_src(
            "fn f(p: &P) -> bool {\n\
             let same = p.policy == other.policy;\n\
             let s = Params { policy: g() };\n\
             let n = p.policy_epoch = 3;\n\
             match k { K::A if p.watchdog => {} _ => {} }\n\
             same\n}\n",
            RuleSet::all(),
        );
        assert!(
            v.iter().all(|v| v.rule != rule::LIVE_CONFIG_MUTATION),
            "{v:?}"
        );
    }

    #[test]
    fn justified_live_config_mutation_is_allowed() {
        let v = lint_src(
            "fn f(p: &mut P) {\n    p.degradation = d; // lint: allow(live-config-mutation) — pre-activation setup before the system goes live\n}\n",
            RuleSet::all(),
        );
        assert!(
            v.iter().all(|v| v.rule != rule::LIVE_CONFIG_MUTATION),
            "{v:?}"
        );
    }

    #[test]
    fn live_config_rule_scopes_to_hypervisor_and_reconfig() {
        assert!(RuleSet::for_crate("ioguard-hypervisor").live_config);
        let r = RuleSet::for_crate("ioguard-reconfig");
        assert!(r.live_config && r.panic_site && r.unchecked_arith && r.nondeterminism);
        assert!(!RuleSet::for_crate("ioguard-faults").live_config);
        assert!(!RuleSet::for_crate("ioguard-core").live_config);
    }

    #[test]
    fn forbid_unsafe_rule() {
        let good = SourceFile::parse(Path::new("lib.rs"), "#![forbid(unsafe_code)]\n");
        let bad = SourceFile::parse(Path::new("lib.rs"), "//! docs only\npub fn f() {}\n");
        let mut out = Vec::new();
        check_forbid_unsafe(&good, &mut out);
        assert!(out.is_empty());
        check_forbid_unsafe(&bad, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, rule::FORBID_UNSAFE);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let v = lint_src(
            "// x.unwrap() panic! HashMap\nfn f() { let s = \"deadline + period HashMap .unwrap()\"; }\n",
            RuleSet::all(),
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
