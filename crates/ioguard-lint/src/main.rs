//! The `ioguard-lint` CLI.
//!
//! ```text
//! cargo run -p ioguard-lint -- check                 # workspace + Fig. 7 models
//! cargo run -p ioguard-lint -- check --root <dir>    # explicit workspace root
//! cargo run -p ioguard-lint -- check a.rs b.model    # fixture mode: all rules
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ioguard_lint::rules::Violation;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(violations) if violations.is_empty() => {
            println!("ioguard-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("ioguard-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("ioguard-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Vec<Violation>, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}` (try `check`)")),
        None => return Err("usage: ioguard-lint check [--root DIR] [paths…]".into()),
    }
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(arg) = it.next() {
        if arg == "--root" {
            let dir = it.next().ok_or("--root requires a directory")?;
            root = Some(PathBuf::from(dir));
        } else {
            paths.push(PathBuf::from(arg));
        }
    }

    if !paths.is_empty() {
        let refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
        return ioguard_lint::check_paths(&refs);
    }

    // Workspace mode: source lints over crates/, then the Fig. 7 models.
    let root = root.unwrap_or_else(default_root);
    let (mut violations, scanned) = ioguard_lint::check_workspace(&root)?;
    println!(
        "ioguard-lint: scanned {scanned} source files under {}",
        root.join("crates").display()
    );
    violations.extend(ioguard_lint::check_fig7()?);
    println!("ioguard-lint: verified Fig. 7 experiment configurations");
    Ok(violations)
}

/// The workspace root when run via `cargo run -p ioguard-lint`.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}
