//! The `ioguard-lint` CLI.
//!
//! ```text
//! cargo run -p ioguard-lint -- check                 # workspace + Fig. 7 models
//! cargo run -p ioguard-lint -- check --root <dir>    # explicit workspace root
//! cargo run -p ioguard-lint -- check --json          # one JSON object per line
//! cargo run -p ioguard-lint -- check --threads 8     # engine-parallel scan
//! cargo run -p ioguard-lint -- check a.rs b.model    # fixture mode: all rules
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.
//! `--json` prints violations to stdout with a stable field order
//! (`path`, `line`, `rule`, `message`), one per line, and suppresses the
//! human-readable progress text — byte-identical across runs at any
//! `--threads` value.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ioguard_lint::rules::Violation;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    match run(&args) {
        Ok(violations) if violations.is_empty() => {
            if !json {
                println!("ioguard-lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            if json {
                print!("{}", ioguard_lint::rules::render_json(&violations));
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("ioguard-lint: {} violation(s)", violations.len());
            }
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("ioguard-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Vec<Violation>, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}` (try `check`)")),
        None => {
            return Err(
                "usage: ioguard-lint check [--root DIR] [--json] [--threads N] [paths…]".into(),
            )
        }
    }
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut threads = 1usize;
    while let Some(arg) = it.next() {
        if arg == "--root" {
            let dir = it.next().ok_or("--root requires a directory")?;
            root = Some(PathBuf::from(dir));
        } else if arg == "--json" {
            json = true;
        } else if arg == "--threads" {
            let n = it.next().ok_or("--threads requires a count")?;
            threads = n
                .parse()
                .map_err(|_| format!("--threads: invalid count `{n}`"))?;
        } else {
            paths.push(PathBuf::from(arg));
        }
    }

    if !paths.is_empty() {
        let refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
        return ioguard_lint::check_paths(&refs);
    }

    // Workspace mode: source lints over crates/, then the Fig. 7 models.
    let root = root.unwrap_or_else(default_root);
    let (mut violations, scanned) = ioguard_lint::check_workspace_threaded(&root, threads)?;
    if !json {
        println!(
            "ioguard-lint: scanned {scanned} source files under {}",
            root.join("crates").display()
        );
    }
    violations.extend(ioguard_lint::check_fig7()?);
    if !json {
        println!("ioguard-lint: verified Fig. 7 experiment configurations");
    }
    Ok(violations)
}

/// The workspace root when run via `cargo run -p ioguard-lint`.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}
