//! I/O call paths per system (Fig. 3) and their per-operation cost.

use serde::Serialize;

use ioguard_hw::footprint::SystemKind;

use crate::layers::{
    SoftwareLayer, APPLICATION, BACKEND_DRIVER, BV_SHIM, FRONTEND_DRIVER, IOGUARD_FORWARDER,
    KERNEL_IO_MANAGER, LOW_LEVEL_DRIVER, VMM_SCHEDULER, VMM_TRAP,
};

/// Platform clock of the evaluation (100 MHz).
pub const CLOCK_HZ: u64 = 100_000_000;

/// The ordered software layer chain one I/O request crosses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct IoPath {
    system: SystemKind,
    layers: Vec<SoftwareLayer>,
}

impl IoPath {
    /// The Fig. 3 chain of `system`.
    pub fn for_system(system: SystemKind) -> Self {
        let layers = match system {
            SystemKind::Legacy => vec![APPLICATION, KERNEL_IO_MANAGER, LOW_LEVEL_DRIVER],
            SystemKind::RtXen => vec![
                APPLICATION,
                FRONTEND_DRIVER,
                VMM_TRAP,
                VMM_SCHEDULER,
                BACKEND_DRIVER,
                LOW_LEVEL_DRIVER,
            ],
            SystemKind::BlueVisor => vec![APPLICATION, BV_SHIM],
            SystemKind::IoGuard => vec![APPLICATION, IOGUARD_FORWARDER],
        };
        Self { system, layers }
    }

    /// Which system this path belongs to.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// The chain itself, application first.
    pub fn layers(&self) -> &[SoftwareLayer] {
        &self.layers
    }

    /// Number of software layers crossed (the Fig. 3 depth).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Cycles to push one request of `payload` bytes down the stack.
    pub fn request_cycles(&self, payload: u32) -> u64 {
        self.layers.iter().map(|l| l.cycles(payload)).sum()
    }

    /// Cycles for the response path. Responses retrace the same layers;
    /// the VMM trap is paid again (interrupt delivery re-enters the VMM),
    /// while pure forwarders are interrupt-free (the hypervisor writes the
    /// response buffer directly).
    pub fn response_cycles(&self, payload: u32) -> u64 {
        match self.system {
            SystemKind::IoGuard => APPLICATION.cycles(0) + IOGUARD_FORWARDER.cycles(0),
            _ => self.request_cycles(payload),
        }
    }

    /// Round-trip software cost in cycles for one operation.
    pub fn round_trip_cycles(&self, payload: u32) -> u64 {
        self.request_cycles(payload) + self.response_cycles(payload)
    }

    /// Round-trip software cost in microseconds at the platform clock.
    pub fn round_trip_micros(&self, payload: u32) -> f64 {
        self.round_trip_cycles(payload) as f64 * 1e6 / CLOCK_HZ as f64
    }

    /// Renders the chain as a one-line arrow diagram.
    pub fn render(&self) -> String {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name).collect();
        format!("{} → [hardware]", names.join(" → "))
    }
}

/// Renders the Fig. 3 comparison for all four systems at a payload size.
pub fn render_fig3(payload: u32) -> String {
    let mut out = format!("software i/o paths ({payload}-byte operation)\n");
    for system in SystemKind::ALL {
        let path = IoPath::for_system(system);
        out.push_str(&format!(
            "{:<12} {:>2} layers  {:>6} cycles  {:>6.2} µs   {}\n",
            system.label(),
            path.layer_count(),
            path.round_trip_cycles(payload),
            path.round_trip_micros(payload),
            path.render(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_depths_match_fig3() {
        assert_eq!(IoPath::for_system(SystemKind::Legacy).layer_count(), 3);
        assert_eq!(IoPath::for_system(SystemKind::RtXen).layer_count(), 6);
        assert_eq!(IoPath::for_system(SystemKind::BlueVisor).layer_count(), 2);
        assert_eq!(IoPath::for_system(SystemKind::IoGuard).layer_count(), 2);
    }

    #[test]
    fn cost_ordering_matches_obs1() {
        // RT-Xen ≫ Legacy > BV > I/O-GUARD for any payload.
        for payload in [0u32, 64, 512, 1500] {
            let cost = |s| IoPath::for_system(s).round_trip_cycles(payload);
            assert!(
                cost(SystemKind::RtXen) > cost(SystemKind::Legacy),
                "{payload}"
            );
            assert!(
                cost(SystemKind::Legacy) > cost(SystemKind::BlueVisor),
                "{payload}"
            );
            assert!(
                cost(SystemKind::BlueVisor) > cost(SystemKind::IoGuard),
                "{payload}"
            );
        }
    }

    #[test]
    fn rtxen_trap_cost_justifies_baseline_constant() {
        // The executable RT-Xen baseline charges a mix of service
        // inflation (~25% of jobs +50 µs) and a 0–10 slot VMM scheduling
        // latency: tens of µs per operation in total. The software path
        // model must land in the same regime — order 10¹–10² µs on the
        // 100 MHz core, nowhere near the sub-µs hardware path.
        let path = IoPath::for_system(SystemKind::RtXen);
        let micros = path.round_trip_micros(256);
        assert!(
            (20.0..150.0).contains(&micros),
            "RT-Xen software path {micros:.1} µs per 256 B op"
        );
        assert!(micros > 20.0 * IoPath::for_system(SystemKind::IoGuard).round_trip_micros(256));
    }

    #[test]
    fn ioguard_path_is_payload_independent() {
        let path = IoPath::for_system(SystemKind::IoGuard);
        assert_eq!(path.round_trip_cycles(0), path.round_trip_cycles(4096));
        // And under 3 µs — negligible against a 50 µs slot, which is why
        // the executable I/O-GUARD model charges no software overhead.
        assert!(path.round_trip_micros(1500) < 3.0);
    }

    #[test]
    fn legacy_cost_grows_with_payload() {
        let path = IoPath::for_system(SystemKind::Legacy);
        assert!(path.round_trip_cycles(1500) > path.round_trip_cycles(64));
        // Two copying layers × both directions × payload delta.
        let delta = path.round_trip_cycles(1064) - path.round_trip_cycles(64);
        assert_eq!(delta, 2 * 2 * 1000);
    }

    #[test]
    fn render_shows_all_systems_and_chains() {
        let s = render_fig3(256);
        for sys in SystemKind::ALL {
            assert!(s.contains(sys.label()));
        }
        assert!(s.contains("trap into VMM"));
        assert!(s.contains("forward"));
        assert!(IoPath::for_system(SystemKind::Legacy)
            .render()
            .contains("kernel i/o manager"));
    }

    #[test]
    fn accessors() {
        let p = IoPath::for_system(SystemKind::RtXen);
        assert_eq!(p.system(), SystemKind::RtXen);
        assert_eq!(p.layers().len(), 6);
        assert_eq!(p.layers()[0].name, "application");
    }
}
