//! Software-stack model of the RTOS I/O paths (Fig. 3).
//!
//! The paper's Fig. 3 contrasts the software an I/O request crosses in a
//! legacy FreeRTOS system against I/O-GUARD's para-virtualized stack:
//!
//! * **Legacy**: user application → OS kernel (I/O manager) → low-level
//!   driver → device.
//! * **Conventional virtualization (RT-Xen-like)**: application → front-end
//!   driver → *trap into VMM* → VMM I/O scheduler → back-end driver →
//!   low-level driver → device.
//! * **BlueVisor**: application → thin VMM shim → hardware I/O stack.
//! * **I/O-GUARD**: application → high-level I/O driver (a pure forwarder)
//!   → hardware hypervisor — "without the involvement of OS kernel"
//!   (Sec. II-A).
//!
//! [`path`] builds these chains from calibrated per-layer cycle costs and
//! prices one I/O operation end to end; [`layers`] defines the layer
//! catalogue. The per-operation costs justify the constants used by the
//! executable baseline models in `ioguard-baselines`, and the layer
//! inventory drives the Fig. 6 footprint story.
//!
//! # Example
//!
//! ```
//! use ioguard_rtos::path::IoPath;
//! use ioguard_hw::footprint::SystemKind;
//!
//! let legacy = IoPath::for_system(SystemKind::Legacy);
//! let ioguard = IoPath::for_system(SystemKind::IoGuard);
//! // I/O-GUARD crosses fewer software layers …
//! assert!(ioguard.layer_count() < legacy.layer_count());
//! // … and costs fewer cycles per operation.
//! assert!(ioguard.request_cycles(256) < legacy.request_cycles(256));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layers;
pub mod path;

pub use layers::SoftwareLayer;
pub use path::IoPath;
