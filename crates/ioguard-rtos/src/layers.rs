//! The software layer catalogue.
//!
//! Per-layer cycle costs are calibrated for a 100 MHz MicroBlaze running
//! FreeRTOS v10.4 (the paper's platform): a syscall-ish kernel entry is a
//! few hundred cycles, a Xen-style trap is ~1–2 k cycles, and payload
//! copies cost ~1 cycle per byte through the single-issue core.

use serde::Serialize;

/// One software layer an I/O request traverses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct SoftwareLayer {
    /// Layer name.
    pub name: &'static str,
    /// Fixed entry + exit cost in processor cycles.
    pub fixed_cycles: u64,
    /// True when the layer copies the payload (adds per-byte cost).
    pub copies_payload: bool,
}

impl SoftwareLayer {
    /// Cycles per payload byte for a copy through the core.
    pub const CYCLES_PER_BYTE: u64 = 1;

    /// Total cycles this layer contributes for a `payload` bytes operation.
    pub fn cycles(&self, payload: u32) -> u64 {
        self.fixed_cycles
            + if self.copies_payload {
                Self::CYCLES_PER_BYTE * payload as u64
            } else {
                0
            }
    }
}

/// The user application issuing the request (argument marshalling).
pub const APPLICATION: SoftwareLayer = SoftwareLayer {
    name: "application",
    fixed_cycles: 40,
    copies_payload: false,
};

/// FreeRTOS kernel entry + I/O manager queueing (legacy path).
pub const KERNEL_IO_MANAGER: SoftwareLayer = SoftwareLayer {
    name: "kernel i/o manager",
    fixed_cycles: 650,
    copies_payload: true,
};

/// A full low-level device driver in software (legacy + RT-Xen backend).
pub const LOW_LEVEL_DRIVER: SoftwareLayer = SoftwareLayer {
    name: "low-level driver",
    fixed_cycles: 420,
    copies_payload: true,
};

/// Para-virtual front-end driver (RT-Xen guest side).
pub const FRONTEND_DRIVER: SoftwareLayer = SoftwareLayer {
    name: "front-end driver",
    fixed_cycles: 380,
    copies_payload: true,
};

/// The "trap into VMM" mode switch (hypercall + context save/restore).
pub const VMM_TRAP: SoftwareLayer = SoftwareLayer {
    name: "trap into VMM",
    fixed_cycles: 1400,
    copies_payload: false,
};

/// The VMM's I/O scheduling and routing decision.
pub const VMM_SCHEDULER: SoftwareLayer = SoftwareLayer {
    name: "VMM i/o scheduler",
    fixed_cycles: 900,
    copies_payload: false,
};

/// Back-end driver in the driver domain (RT-Xen).
pub const BACKEND_DRIVER: SoftwareLayer = SoftwareLayer {
    name: "back-end driver",
    fixed_cycles: 520,
    copies_payload: true,
};

/// BlueVisor's thin software shim (most work is in its coprocessor).
pub const BV_SHIM: SoftwareLayer = SoftwareLayer {
    name: "BlueVisor shim",
    fixed_cycles: 260,
    copies_payload: false,
};

/// I/O-GUARD's high-level I/O driver: "the implementation of I/O drivers
/// is straightforward, as they only forward the I/O requests to the
/// hypervisor" (Sec. II-A). No kernel involvement, no payload copy — the
/// hypervisor reads the request buffer directly.
pub const IOGUARD_FORWARDER: SoftwareLayer = SoftwareLayer {
    name: "i/o-guard driver (forward)",
    fixed_cycles: 90,
    copies_payload: false,
};

#[cfg(test)]
mod tests {
    use super::*;

    // The asserted relations are between consts on purpose: the test
    // documents the calibration ordering and fails loudly if it drifts.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn fixed_costs_reflect_layer_weight() {
        // The trap is the single most expensive software step.
        for layer in [
            APPLICATION,
            KERNEL_IO_MANAGER,
            LOW_LEVEL_DRIVER,
            FRONTEND_DRIVER,
            VMM_SCHEDULER,
            BACKEND_DRIVER,
            BV_SHIM,
            IOGUARD_FORWARDER,
        ] {
            assert!(VMM_TRAP.fixed_cycles > layer.fixed_cycles, "{}", layer.name);
        }
        // The forwarder is the cheapest non-application layer.
        assert!(IOGUARD_FORWARDER.fixed_cycles < BV_SHIM.fixed_cycles);
    }

    #[test]
    fn payload_copies_scale_linearly() {
        let base = KERNEL_IO_MANAGER.cycles(0);
        assert_eq!(KERNEL_IO_MANAGER.cycles(256), base + 256);
        assert_eq!(KERNEL_IO_MANAGER.cycles(1024), base + 1024);
        // Non-copying layers are payload-independent.
        assert_eq!(VMM_TRAP.cycles(0), VMM_TRAP.cycles(4096));
        assert_eq!(IOGUARD_FORWARDER.cycles(0), IOGUARD_FORWARDER.cycles(4096));
    }
}
