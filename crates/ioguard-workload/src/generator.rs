//! Trial workload construction.
//!
//! One *trial* of the case study is: the 40-task base suite with
//! measurement-jittered WCETs, plus synthetic filler tasks raising the total
//! demand to a *target utilization*, partitioned across the active VMs.
//! Identical seeds yield identical workloads, which is how the paper
//! "ensured the data input to the examined systems was identical in each
//! execution".

use serde::{Deserialize, Serialize};

use ioguard_sched::task::{SporadicTask, TaskSet};
use ioguard_sim::rng::{SplitMix64, Xoshiro256StarStar};

use crate::suites::{TaskCategory, FUNCTION_TASKS, SAFETY_TASKS};
use crate::uunifast::uunifast;

/// WCET measurement jitter: the hybrid-measurement WCET of a task varies by
/// this relative amount between trials ("the execution time of a task is
/// affected by diverse factors (e.g., cache miss rate)").
const WCET_JITTER: f64 = 0.10;

/// Periods available to synthetic filler tasks, in slots.
const SYNTHETIC_PERIODS: [u64; 6] = [100, 200, 400, 800, 1000, 2000];

/// Largest I/O service demand of a synthetic task, in slots. EEMBC-derived
/// filler performs ordinary benchmark-sized I/O operations, not
/// multi-millisecond bulk transfers.
const SYNTHETIC_MAX_WCET: u64 = 40;

/// Configuration of one trial's workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialConfig {
    /// Number of active VMs (4 or 8 in the paper's groups).
    pub vms: usize,
    /// Target utilization of the shared I/O resource, in `[0, 1]`-ish
    /// (the paper sweeps 0.40–1.00).
    pub target_utilization: f64,
    /// Trial seed (workload is a pure function of the config).
    pub seed: u64,
}

impl TrialConfig {
    /// Creates a trial config.
    ///
    /// # Panics
    ///
    /// Panics if `vms == 0` or the target utilization is not positive and
    /// finite.
    pub fn new(vms: usize, target_utilization: f64, seed: u64) -> Self {
        assert!(vms > 0, "at least one VM");
        assert!(
            target_utilization.is_finite() && target_utilization > 0.0,
            "target utilization must be positive"
        );
        Self {
            vms,
            target_utilization,
            seed,
        }
    }
}

/// One concrete task instance in a generated trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialTask {
    /// Name (catalogue name or `synthetic-N`).
    pub name: String,
    /// Category.
    pub category: TaskCategory,
    /// The timing model handed to schedulers and simulators.
    pub task: SporadicTask,
    /// VM this task runs in.
    pub vm: usize,
    /// Request payload bytes per job.
    pub request_bytes: u32,
    /// Response payload bytes per job.
    pub response_bytes: u32,
}

impl TrialTask {
    /// True for tasks whose deadline misses fail a trial (safety and
    /// function tasks; synthetic filler is best-effort).
    pub fn is_critical(&self) -> bool {
        self.category != TaskCategory::Synthetic
    }
}

/// A fully generated trial workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialWorkload {
    config: TrialConfig,
    tasks: Vec<TrialTask>,
}

impl TrialWorkload {
    /// Generates the workload for `config` (deterministic in the config).
    pub fn generate(config: &TrialConfig) -> Self {
        let root = SplitMix64::new(config.seed);
        let mut rng = Xoshiro256StarStar::new(root.derive(0x57C1));
        let mut tasks = Vec::new();

        // 1. The 40-task base suite with jittered WCETs.
        for (idx, spec) in SAFETY_TASKS.iter().chain(FUNCTION_TASKS.iter()).enumerate() {
            let jitter = 1.0 + rng.range_f64(-WCET_JITTER, WCET_JITTER);
            let wcet =
                ((spec.wcet_slots as f64 * jitter).round() as u64).clamp(1, spec.period_slots);
            let task =
                SporadicTask::implicit(spec.period_slots, wcet).expect("catalogue tasks are valid");
            tasks.push(TrialTask {
                name: spec.name.to_owned(),
                category: spec.category,
                task,
                vm: idx % config.vms,
                request_bytes: spec.request_bytes,
                response_bytes: spec.response_bytes,
            });
        }
        let base_util: f64 = tasks.iter().map(|t| t.task.utilization()).sum();

        // 2. Synthetic filler up to the target utilization, one task per
        //    ~2.5% of added load, split by UUniFast.
        let fill = (config.target_utilization - base_util).max(0.0);
        if fill > 1e-9 {
            let n = ((fill / 0.025).ceil() as usize).max(1);
            let utils = uunifast(&mut rng, n, fill);
            for (i, u) in utils.into_iter().enumerate() {
                // Choose the largest period that keeps the service demand
                // at a realistic per-operation size; heavy utilization
                // shares become *frequent* small operations, not monster
                // transfers.
                let period = SYNTHETIC_PERIODS
                    .iter()
                    .copied()
                    .filter(|&p| u * p as f64 <= SYNTHETIC_MAX_WCET as f64)
                    .max()
                    .unwrap_or(SYNTHETIC_PERIODS[0]);
                let wcet =
                    ((u * period as f64).round() as u64).clamp(1, SYNTHETIC_MAX_WCET.min(period));
                let task = SporadicTask::implicit(period, wcet).expect("clamped to validity");
                let vm = rng.range_u64(0, config.vms as u64) as usize;
                tasks.push(TrialTask {
                    name: format!("synthetic-{i}"),
                    category: TaskCategory::Synthetic,
                    task,
                    vm,
                    request_bytes: 64 + 64 * (i as u32 % 4),
                    response_bytes: 32,
                });
            }
        }

        Self {
            config: *config,
            tasks,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &TrialConfig {
        &self.config
    }

    /// All tasks of the trial.
    pub fn tasks(&self) -> &[TrialTask] {
        &self.tasks
    }

    /// The actual (sampled) total utilization — near the target but not
    /// exactly on it, per the paper's "target utilization" caveat.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(|t| t.task.utilization()).sum()
    }

    /// Per-VM [`TaskSet`]s, indexed by VM id (length = `config.vms`).
    pub fn vm_task_sets(&self) -> Vec<TaskSet> {
        let mut sets = vec![TaskSet::new(); self.config.vms];
        for t in &self.tasks {
            sets[t.vm].push(t.task);
        }
        sets
    }

    /// Tasks of one VM with their metadata.
    pub fn vm_tasks(&self, vm: usize) -> impl Iterator<Item = &TrialTask> {
        self.tasks.iter().filter(move |t| t.vm == vm)
    }

    /// Splits the tasks into (pre-defined, run-time) groups for an
    /// `I/O-GUARD-x` configuration: `preload_fraction` of the tasks go to
    /// the P-channel, the rest to the R-channel.
    ///
    /// The split is deterministic and *utilization-proportional*: tasks are
    /// ordered by utilization and stride-sampled, so the pre-loaded group
    /// carries ≈ `preload_fraction` of the total utilization rather than
    /// the heaviest tail — matching the paper's "x% of I/O tasks were
    /// executed by the P channel".
    pub fn split_preload(&self, preload_fraction: f64) -> (Vec<&TrialTask>, Vec<&TrialTask>) {
        assert!(
            (0.0..=1.0).contains(&preload_fraction),
            "fraction in [0, 1]"
        );
        let mut order: Vec<&TrialTask> = self.tasks.iter().collect();
        order.sort_by(|a, b| {
            b.task
                .utilization()
                .partial_cmp(&a.task.utilization())
                .expect("utilizations are finite")
                .then_with(|| a.name.cmp(&b.name))
        });
        let n = order.len();
        let cut = (n as f64 * preload_fraction).round() as usize;
        let mut pre = Vec::with_capacity(cut);
        let mut run = Vec::with_capacity(n - cut);
        // Stride sampling: task i is pre-loaded when the cumulative quota
        // ⌊(i+1)·cut/n⌋ advances — an even spread across the spectrum.
        let mut taken = 0usize;
        for (i, t) in order.into_iter().enumerate() {
            let quota = ((i + 1) * cut) / n.max(1);
            if quota > taken {
                taken = quota;
                pre.push(t);
            } else {
                run.push(t);
            }
        }
        (pre, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = TrialConfig::new(4, 0.7, 99);
        assert_eq!(TrialWorkload::generate(&c), TrialWorkload::generate(&c));
        let c2 = TrialConfig::new(4, 0.7, 100);
        assert_ne!(TrialWorkload::generate(&c), TrialWorkload::generate(&c2));
    }

    #[test]
    fn base_suite_is_always_present() {
        let w = TrialWorkload::generate(&TrialConfig::new(8, 0.4, 1));
        let safety = w
            .tasks()
            .iter()
            .filter(|t| t.category == TaskCategory::Safety)
            .count();
        let function = w
            .tasks()
            .iter()
            .filter(|t| t.category == TaskCategory::Function)
            .count();
        assert_eq!(safety, 20);
        assert_eq!(function, 20);
    }

    #[test]
    fn utilization_tracks_target() {
        for target in [0.4, 0.5, 0.7, 0.9, 1.0] {
            for seed in 0..5 {
                let w = TrialWorkload::generate(&TrialConfig::new(4, target, seed));
                let u = w.total_utilization();
                assert!(
                    (u - target).abs() < 0.08,
                    "target {target} got {u:.3} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn utilization_varies_between_trials() {
        // The "target utilization" caveat: sampled utilization differs
        // between seeds.
        let us: Vec<f64> = (0..10)
            .map(|s| TrialWorkload::generate(&TrialConfig::new(4, 0.8, s)).total_utilization())
            .collect();
        let first = us[0];
        assert!(us.iter().any(|&u| (u - first).abs() > 1e-6));
    }

    #[test]
    fn every_vm_receives_tasks() {
        for vms in [1, 4, 8] {
            let w = TrialWorkload::generate(&TrialConfig::new(vms, 0.6, 7));
            let sets = w.vm_task_sets();
            assert_eq!(sets.len(), vms);
            assert!(sets.iter().all(|s| !s.is_empty()), "vms = {vms}");
        }
    }

    #[test]
    fn vm_task_sets_partition_all_tasks() {
        let w = TrialWorkload::generate(&TrialConfig::new(4, 0.8, 3));
        let total: usize = w.vm_task_sets().iter().map(|s| s.len()).sum();
        assert_eq!(total, w.tasks().len());
        let via_iter: usize = (0..4).map(|vm| w.vm_tasks(vm).count()).sum();
        assert_eq!(via_iter, w.tasks().len());
    }

    #[test]
    fn split_preload_fractions() {
        let w = TrialWorkload::generate(&TrialConfig::new(4, 0.8, 11));
        let n = w.tasks().len();
        let (pre, run) = w.split_preload(0.7);
        assert_eq!(pre.len() + run.len(), n);
        let expect = (n as f64 * 0.7).round() as usize;
        assert_eq!(pre.len(), expect);
        let (pre0, run0) = w.split_preload(0.0);
        assert!(pre0.is_empty());
        assert_eq!(run0.len(), n);
        let (pre1, run1) = w.split_preload(1.0);
        assert_eq!(pre1.len(), n);
        assert!(run1.is_empty());
    }

    #[test]
    fn split_preload_is_utilization_proportional() {
        let w = TrialWorkload::generate(&TrialConfig::new(4, 0.9, 2));
        for frac in [0.4, 0.7] {
            let (pre, _) = w.split_preload(frac);
            let pre_util: f64 = pre.iter().map(|t| t.task.utilization()).sum();
            let share = pre_util / w.total_utilization();
            assert!(
                (share - frac).abs() < 0.15,
                "preload {frac}: carries {share:.2} of utilization"
            );
        }
    }

    #[test]
    fn wcet_jitter_is_bounded() {
        let w = TrialWorkload::generate(&TrialConfig::new(4, 0.4, 5));
        for (t, spec) in w
            .tasks()
            .iter()
            .zip(SAFETY_TASKS.iter().chain(FUNCTION_TASKS.iter()))
        {
            assert_eq!(t.name, spec.name);
            let lo = (spec.wcet_slots as f64 * (1.0 - WCET_JITTER - 0.01)).floor() as u64;
            let hi = (spec.wcet_slots as f64 * (1.0 + WCET_JITTER + 0.01)).ceil() as u64;
            assert!(
                (lo..=hi).contains(&t.task.wcet()),
                "{}: wcet {} outside [{lo}, {hi}]",
                t.name,
                t.task.wcet()
            );
        }
    }

    #[test]
    fn criticality_flag() {
        let w = TrialWorkload::generate(&TrialConfig::new(2, 0.9, 8));
        assert!(w
            .tasks()
            .iter()
            .filter(|t| t.category == TaskCategory::Synthetic)
            .all(|t| !t.is_critical()));
        assert!(w
            .tasks()
            .iter()
            .filter(|t| t.category != TaskCategory::Synthetic)
            .all(|t| t.is_critical()));
    }

    #[test]
    #[should_panic(expected = "at least one VM")]
    fn zero_vms_rejected() {
        let _ = TrialConfig::new(0, 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_target_rejected() {
        let _ = TrialConfig::new(2, 0.0, 1);
    }
}
