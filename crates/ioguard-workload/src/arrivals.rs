//! Fleet-scale VM arrival/departure streams.
//!
//! The fleet layer (`ioguard-fleet`) consumes a churn stream of VM
//! lifecycle events: each *arrival* carries the VM's periodic server
//! request `Γ = (Π, Θ)` and its I/O task set, each *departure* names a
//! previously-arrived VM. The stream is a pure function of its
//! [`FleetArrivalConfig`] — same config, same bytes — so fleet runs are
//! reproducible at any thread count and golden traces stay stable.
//!
//! Server periods are drawn from a **harmonic menu** of power-of-two
//! divisors of the analysis frame: this is what makes the per-shard
//! [`ioguard_sched::DemandLedger`] exact (every admitted period divides
//! the frame, see its module docs). Budgets and task sets are sized so
//! that most VMs are admissible but a tail of over-greedy requests and
//! tight-deadline task sets exercises the rejection and spillover paths.

use ioguard_sched::{PeriodicServer, SporadicTask, TaskSet};
use ioguard_sim::rng::{SplitMix64, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Domain-separation tag for the arrival stream RNG.
const ARRIVALS_TAG: u64 = 0xF1EE;

/// Configuration for one generated churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetArrivalConfig {
    /// Total number of lifecycle events (arrivals + departures).
    pub events: usize,
    /// Steady-state resident population the departure pressure aims for:
    /// the departure probability ramps linearly with the live population
    /// and crosses 50% (the arrival rate) right at this target.
    pub target_resident: usize,
    /// The fleet analysis frame; all generated periods divide it.
    pub frame: u64,
    /// Root seed; the stream is a pure function of this config.
    pub seed: u64,
}

impl FleetArrivalConfig {
    /// A config with the canonical fleet frame of 4096 slots.
    pub fn new(events: usize, target_resident: usize, seed: u64) -> Self {
        Self {
            events,
            target_resident,
            frame: 4096,
            seed,
        }
    }
}

/// One VM lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A VM requests admission with server `Γ = (Π, Θ)` and `tasks`.
    Arrive {
        /// Fleet-unique VM id (monotone across the stream).
        vm: u64,
        /// The requested periodic server.
        server: PeriodicServer,
        /// The VM's I/O task set (for the per-VM Theorem 3 gate).
        tasks: TaskSet,
    },
    /// A previously-arrived VM leaves the fleet.
    Depart {
        /// The departing VM's id.
        vm: u64,
    },
}

/// A generated churn stream: deterministic in its config.
///
/// # Example
///
/// ```
/// use ioguard_workload::arrivals::{FleetArrivalConfig, FleetArrivals};
///
/// let config = FleetArrivalConfig::new(1000, 50, 42);
/// let a = FleetArrivals::generate(&config);
/// let b = FleetArrivals::generate(&config);
/// assert_eq!(a, b);
/// assert_eq!(a.events().len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetArrivals {
    config: FleetArrivalConfig,
    events: Vec<FleetEvent>,
}

impl FleetArrivals {
    /// Generates the stream for `config`.
    ///
    /// # Panics
    ///
    /// Panics when `config.frame` is not a power of two or is smaller
    /// than 512 (the harmonic period menu needs `frame/8 ≥ 64`).
    pub fn generate(config: &FleetArrivalConfig) -> Self {
        assert!(
            config.frame.is_power_of_two() && config.frame >= 512,
            "fleet frame must be a power of two ≥ 512, got {}",
            config.frame
        );
        let root = SplitMix64::new(config.seed);
        let mut rng = Xoshiro256StarStar::new(root.derive(ARRIVALS_TAG));
        // Harmonic menu: power-of-two divisors of the frame, Π ∈
        // {frame/64 .. frame/8}. Every entry divides the frame exactly.
        let menu = [
            config.frame / 64,
            config.frame / 32,
            config.frame / 16,
            config.frame / 8,
        ];
        let mut events = Vec::with_capacity(config.events);
        let mut live: Vec<u64> = Vec::new();
        let mut next_vm = 0u64;
        let target = config.target_resident.max(1) as f64;
        for _ in 0..config.events {
            // Equilibrium at live ≈ target: departures win above it,
            // arrivals below.
            let depart_p = (live.len() as f64 / (2.0 * target)).min(0.9);
            if !live.is_empty() && rng.chance(depart_p) {
                let at = rng.range_u64(0, live.len() as u64) as usize;
                let vm = live.swap_remove(at);
                events.push(FleetEvent::Depart { vm });
            } else {
                let pi = menu[rng.range_u64(0, menu.len() as u64) as usize];
                // Budget up to Π/16 (≤ 6.25% bandwidth), with a greedy
                // tail (~5% of arrivals ask for up to Π/4) that stresses
                // the admission gate and fills spillover.
                let max_theta = if rng.chance(0.05) { pi / 4 } else { pi / 16 };
                let theta = rng.range_u64(1, max_theta.max(1) + 1);
                let server = PeriodicServer::new(pi, theta).expect("1 ≤ Θ ≤ Π by construction");
                let tasks = Self::task_set(&mut rng, pi, theta);
                let vm = next_vm;
                next_vm += 1;
                live.push(vm);
                events.push(FleetEvent::Arrive { vm, server, tasks });
            }
        }
        Self {
            config: *config,
            events,
        }
    }

    /// 1–3 sporadic tasks sized against the server: `T ∈ {8Π, 16Π}` (well
    /// past the server's worst-case supply blackout `2(Π − Θ)`, which for
    /// low-bandwidth servers approaches `2Π`), task utilization at most
    /// half the server bandwidth, constrained deadlines at or above the
    /// blackout. Most sets pass Theorem 3; a ~10% tight-deadline tail
    /// lands inside the blackout and gets the VM rejected locally.
    fn task_set(rng: &mut Xoshiro256StarStar, pi: u64, theta: u64) -> TaskSet {
        let count = rng.range_u64(1, 4);
        let mut tasks = TaskSet::new();
        for _ in 0..count {
            let period = pi * if rng.chance(0.5) { 8 } else { 16 };
            // Per-task utilization ≤ (Θ/Π)/(2·count): the whole set stays
            // within half the server's bandwidth.
            let max_wcet = ((theta * period) / (pi * 2 * count)).max(1);
            let wcet = rng.range_u64(1, max_wcet + 1);
            // Deadline at or above the blackout-safe floor, with a ~10%
            // tight tail anywhere in [wcet, period].
            let safe_floor = (2 * (pi - theta) + wcet).min(period);
            let deadline = if rng.chance(0.1) {
                rng.range_u64(wcet, period + 1)
            } else {
                rng.range_u64(safe_floor, period + 1)
            };
            tasks.push(SporadicTask::new(period, wcet, deadline).expect("C ≤ D ≤ T"));
        }
        tasks
    }

    /// The config this stream was generated from.
    pub fn config(&self) -> &FleetArrivalConfig {
        &self.config
    }

    /// The event stream in order.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_in_config() {
        let config = FleetArrivalConfig::new(2000, 100, 7);
        assert_eq!(
            FleetArrivals::generate(&config),
            FleetArrivals::generate(&config)
        );
        let other = FleetArrivalConfig::new(2000, 100, 8);
        assert_ne!(
            FleetArrivals::generate(&config),
            FleetArrivals::generate(&other)
        );
    }

    #[test]
    fn departures_only_name_live_vms_and_ids_are_unique() {
        let stream = FleetArrivals::generate(&FleetArrivalConfig::new(5000, 80, 42));
        let mut live = BTreeSet::new();
        let mut seen = BTreeSet::new();
        for event in stream.events() {
            match event {
                FleetEvent::Arrive { vm, .. } => {
                    assert!(seen.insert(*vm), "vm id {vm} reused");
                    live.insert(*vm);
                }
                FleetEvent::Depart { vm } => {
                    assert!(live.remove(vm), "departure of non-live vm {vm}");
                }
            }
        }
    }

    #[test]
    fn periods_are_harmonic_with_the_frame() {
        let config = FleetArrivalConfig::new(3000, 60, 1337);
        let stream = FleetArrivals::generate(&config);
        for event in stream.events() {
            if let FleetEvent::Arrive { server, tasks, .. } = event {
                assert_eq!(config.frame % server.period(), 0);
                assert!(server.budget() >= 1 && server.budget() <= server.period());
                for task in tasks.iter() {
                    assert!(
                        task.period() == 8 * server.period()
                            || task.period() == 16 * server.period()
                    );
                }
            }
        }
    }

    #[test]
    fn population_hovers_near_target() {
        let config = FleetArrivalConfig::new(20_000, 100, 99);
        let stream = FleetArrivals::generate(&config);
        let mut live = 0i64;
        let mut peak = 0i64;
        for event in stream.events() {
            match event {
                FleetEvent::Arrive { .. } => live += 1,
                FleetEvent::Depart { .. } => live -= 1,
            }
            peak = peak.max(live);
        }
        // Departure pressure caps the population well below the event
        // count; exact value is seed-dependent but bounded.
        assert!(peak > 100, "population should reach the target: {peak}");
        assert!(peak < 2000, "population should saturate: {peak}");
    }

    #[test]
    fn most_arrivals_are_locally_schedulable() {
        // The Theorem 3 gate should admit the bulk of generated VMs so the
        // fleet exercises placement, not just rejection.
        let stream = FleetArrivals::generate(&FleetArrivalConfig::new(2000, 50, 5));
        let mut pass = 0u32;
        let mut total = 0u32;
        for event in stream.events() {
            if let FleetEvent::Arrive { server, tasks, .. } = event {
                total += 1;
                if ioguard_sched::lsched::theorem3_exact(server, tasks, 1 << 26)
                    .map(|v| v.is_schedulable())
                    .unwrap_or(false)
                {
                    pass += 1;
                }
            }
        }
        assert!(total > 1000);
        assert!(
            pass as f64 / total as f64 > 0.6,
            "only {pass}/{total} locally schedulable"
        );
    }
}
