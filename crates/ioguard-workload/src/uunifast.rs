//! UUniFast utilization sampling (Bini & Buttazzo 2005).
//!
//! Used to split the synthetic filler utilization across an arbitrary
//! number of tasks with an unbiased uniform distribution over the
//! utilization simplex.

use ioguard_sim::rng::Xoshiro256StarStar;

/// Draws `n` task utilizations summing to `total` with the UUniFast
/// algorithm.
///
/// Returns an empty vector when `n == 0`. Values can be arbitrarily small
/// but never negative; their sum equals `total` up to floating-point error.
///
/// # Panics
///
/// Panics if `total` is negative or not finite.
///
/// # Example
///
/// ```
/// use ioguard_sim::rng::Xoshiro256StarStar;
/// use ioguard_workload::uunifast::uunifast;
///
/// let mut rng = Xoshiro256StarStar::new(7);
/// let utils = uunifast(&mut rng, 5, 0.8);
/// assert_eq!(utils.len(), 5);
/// let sum: f64 = utils.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-9);
/// ```
pub fn uunifast(rng: &mut Xoshiro256StarStar, n: usize, total: f64) -> Vec<f64> {
    assert!(total.is_finite() && total >= 0.0, "total must be ≥ 0");
    if n == 0 {
        return Vec::new();
    }
    let mut utils = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next = remaining * rng.next_f64().powf(exponent);
        utils.push(remaining - next);
        remaining = next;
    }
    utils.push(remaining);
    utils
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_total() {
        let mut rng = Xoshiro256StarStar::new(1);
        for n in [1, 2, 5, 17, 100] {
            for total in [0.1, 0.5, 1.0, 3.0] {
                let u = uunifast(&mut rng, n, total);
                assert_eq!(u.len(), n);
                let sum: f64 = u.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n} total={total} sum={sum}");
                assert!(u.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn zero_tasks_and_zero_total() {
        let mut rng = Xoshiro256StarStar::new(2);
        assert!(uunifast(&mut rng, 0, 0.5).is_empty());
        let u = uunifast(&mut rng, 3, 0.0);
        assert!(u.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_task_gets_everything() {
        let mut rng = Xoshiro256StarStar::new(3);
        assert_eq!(uunifast(&mut rng, 1, 0.75), vec![0.75]);
    }

    #[test]
    fn distribution_is_roughly_symmetric() {
        // Over many draws each of the n positions must receive total/n on
        // average (UUniFast is exchangeable).
        let mut rng = Xoshiro256StarStar::new(4);
        let n = 4;
        let draws = 20_000;
        let mut sums = vec![0.0; n];
        for _ in 0..draws {
            for (i, u) in uunifast(&mut rng, n, 1.0).into_iter().enumerate() {
                sums[i] += u;
            }
        }
        for (i, s) in sums.iter().enumerate() {
            let mean = s / draws as f64;
            assert!(
                (mean - 0.25).abs() < 0.01,
                "position {i}: mean {mean:.4} should be ~0.25"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uunifast(&mut Xoshiro256StarStar::new(9), 6, 0.9);
        let b = uunifast(&mut Xoshiro256StarStar::new(9), 6, 0.9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_total_panics() {
        let mut rng = Xoshiro256StarStar::new(5);
        let _ = uunifast(&mut rng, 2, -1.0);
    }
}
