//! Workload generation for the automotive case study (Sec. V-C).
//!
//! The paper drives all systems with three task groups:
//!
//! 1. **20 automotive safety tasks** from the Renesas automotive use-case
//!    database (CRC, RSA32, …),
//! 2. **20 automotive function tasks** from the EEMBC AutoBench suite
//!    (FFT, speed calculation, …),
//! 3. **synthetic workloads** (also EEMBC-derived) added to steer the
//!    overall *target utilization*.
//!
//! We cannot ship the proprietary suites, so [`suites`] carries a named,
//! calibrated task catalogue with the same statistics (period spread
//! 5–200 ms, I/O-bound WCETs, ≈40% base utilization), and [`generator`]
//! reproduces the paper's trial construction: sample WCETs with
//! measurement-style jitter (the "hybrid measurement approach"), top up
//! with synthetic tasks to the target utilization, and partition the tasks
//! across the active VMs.
//!
//! # Example
//!
//! ```
//! use ioguard_workload::generator::{TrialConfig, TrialWorkload};
//!
//! let config = TrialConfig::new(4, 0.60, 42); // 4 VMs, 60% target util
//! let workload = TrialWorkload::generate(&config);
//! assert_eq!(workload.vm_task_sets().len(), 4);
//! // Actual utilization lands near the target (jitter is bounded).
//! assert!((workload.total_utilization() - 0.60).abs() < 0.08);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod generator;
pub mod suites;
pub mod uunifast;

pub use arrivals::{FleetArrivalConfig, FleetArrivals, FleetEvent};
pub use generator::{TrialConfig, TrialWorkload};
pub use suites::{TaskCategory, TaskSpec};
