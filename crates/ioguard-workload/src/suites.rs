//! The calibrated automotive task catalogue.
//!
//! Stand-in for the Renesas automotive use-case database and the EEMBC
//! AutoBench suite: 20 safety tasks and 20 function tasks with nominal
//! periods, I/O service demands and payload sizes chosen to match the
//! published statistics (base utilization ≈ 40% of the shared I/O resource,
//! periods 5–80 ms, raw data in via 1 Gbps Ethernet, results out via
//! 10 Mbps FlexRay).

use serde::{Deserialize, Serialize};

/// The scheduling time base of the case study: one hypervisor slot is
/// 50 µs, so a 5 ms period is 100 slots and a full 100-second trial is
/// 2 000 000 slots.
pub const SLOT_MICROS: u64 = 50;

/// Classification of a case-study task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskCategory {
    /// Automotive safety task (Renesas use-case database).
    Safety,
    /// Automotive function task (EEMBC AutoBench).
    Function,
    /// Synthetic utilization filler (EEMBC-derived).
    Synthetic,
}

impl TaskCategory {
    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            TaskCategory::Safety => "safety",
            TaskCategory::Function => "function",
            TaskCategory::Synthetic => "synthetic",
        }
    }
}

/// One catalogue entry: a named task with nominal timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task name (kernel it models).
    pub name: &'static str,
    /// Category.
    pub category: TaskCategory,
    /// Nominal period in slots (implicit deadline).
    pub period_slots: u64,
    /// Nominal worst-case I/O service demand in slots.
    pub wcet_slots: u64,
    /// Request payload bytes per job (inbound over Ethernet).
    pub request_bytes: u32,
    /// Response payload bytes per job (outbound over FlexRay).
    pub response_bytes: u32,
}

impl TaskSpec {
    /// Nominal utilization `C/T`.
    pub fn utilization(&self) -> f64 {
        self.wcet_slots as f64 / self.period_slots as f64
    }
}

/// The 20 automotive **safety** tasks.
///
/// Periods in slots of [`SLOT_MICROS`] µs: e.g. 100 slots = 5 ms.
pub const SAFETY_TASKS: [TaskSpec; 20] = [
    spec("crc32-frame-check", TaskCategory::Safety, 100, 1, 256, 64),
    spec("rsa32-auth", TaskCategory::Safety, 400, 5, 512, 128),
    spec(
        "airbag-deploy-monitor",
        TaskCategory::Safety,
        100,
        2,
        128,
        32,
    ),
    spec("abs-wheel-speed", TaskCategory::Safety, 100, 2, 256, 64),
    spec("brake-pedal-sense", TaskCategory::Safety, 200, 2, 128, 64),
    spec(
        "steering-torque-check",
        TaskCategory::Safety,
        200,
        3,
        256,
        64,
    ),
    spec(
        "battery-cell-monitor",
        TaskCategory::Safety,
        400,
        3,
        512,
        64,
    ),
    spec("lane-keep-watchdog", TaskCategory::Safety, 200, 2, 512, 128),
    spec(
        "collision-radar-gate",
        TaskCategory::Safety,
        100,
        2,
        512,
        64,
    ),
    spec("tire-pressure-guard", TaskCategory::Safety, 800, 4, 256, 64),
    spec("ecu-heartbeat", TaskCategory::Safety, 100, 1, 64, 32),
    spec("can-gateway-police", TaskCategory::Safety, 200, 2, 512, 128),
    spec("seatbelt-interlock", TaskCategory::Safety, 400, 2, 128, 32),
    spec("door-lock-verify", TaskCategory::Safety, 800, 3, 128, 64),
    spec(
        "throttle-plausibility",
        TaskCategory::Safety,
        100,
        2,
        256,
        64,
    ),
    spec("yaw-rate-check", TaskCategory::Safety, 200, 2, 256, 64),
    spec("fuel-cutoff-guard", TaskCategory::Safety, 400, 3, 128, 32),
    spec("ecc-memory-scrub", TaskCategory::Safety, 800, 4, 1024, 64),
    spec("watchdog-refresh", TaskCategory::Safety, 100, 1, 64, 32),
    spec(
        "crypto-key-rotate",
        TaskCategory::Safety,
        1600,
        6,
        1024,
        256,
    ),
];

/// The 20 automotive **function** tasks.
pub const FUNCTION_TASKS: [TaskSpec; 20] = [
    spec("fft-vibration", TaskCategory::Function, 400, 4, 1024, 128),
    spec("speed-calculation", TaskCategory::Function, 100, 1, 256, 64),
    spec("angle-to-time", TaskCategory::Function, 100, 1, 128, 64),
    spec("tooth-to-spark", TaskCategory::Function, 100, 1, 256, 64),
    spec("road-speed-filter", TaskCategory::Function, 200, 3, 512, 64),
    spec("matrix-kalman", TaskCategory::Function, 400, 4, 1024, 128),
    spec("table-lookup-map", TaskCategory::Function, 200, 2, 512, 64),
    spec("idct-dashboard", TaskCategory::Function, 400, 4, 1024, 128),
    spec("iir-knock-filter", TaskCategory::Function, 100, 1, 256, 64),
    spec(
        "pointer-chase-diag",
        TaskCategory::Function,
        800,
        4,
        512,
        64,
    ),
    spec("pwm-injector", TaskCategory::Function, 100, 1, 128, 32),
    spec(
        "cache-buster-logger",
        TaskCategory::Function,
        800,
        4,
        2048,
        256,
    ),
    spec(
        "bitmanip-can-pack",
        TaskCategory::Function,
        200,
        2,
        512,
        128,
    ),
    spec("basicfloat-mix", TaskCategory::Function, 400, 3, 512, 64),
    spec("tblook-ignition", TaskCategory::Function, 200, 3, 256, 64),
    spec("a2time-crank", TaskCategory::Function, 100, 1, 256, 64),
    spec("canrdr-reader", TaskCategory::Function, 200, 2, 512, 128),
    spec("puwmod-modulation", TaskCategory::Function, 400, 4, 256, 64),
    spec("rspeed-odometer", TaskCategory::Function, 800, 5, 512, 64),
    spec(
        "aifirf-radio-filter",
        TaskCategory::Function,
        800,
        5,
        2048,
        256,
    ),
];

const fn spec(
    name: &'static str,
    category: TaskCategory,
    period_slots: u64,
    wcet_slots: u64,
    request_bytes: u32,
    response_bytes: u32,
) -> TaskSpec {
    TaskSpec {
        name,
        category,
        period_slots,
        wcet_slots,
        request_bytes,
        response_bytes,
    }
}

/// Total nominal utilization of the 40-task base suite.
pub fn base_suite_utilization() -> f64 {
    SAFETY_TASKS
        .iter()
        .chain(FUNCTION_TASKS.iter())
        .map(TaskSpec::utilization)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_twenty_tasks_each() {
        assert_eq!(SAFETY_TASKS.len(), 20);
        assert_eq!(FUNCTION_TASKS.len(), 20);
        assert!(SAFETY_TASKS
            .iter()
            .all(|t| t.category == TaskCategory::Safety));
        assert!(FUNCTION_TASKS
            .iter()
            .all(|t| t.category == TaskCategory::Function));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SAFETY_TASKS
            .iter()
            .chain(FUNCTION_TASKS.iter())
            .map(|t| t.name)
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate task names");
    }

    #[test]
    fn base_suite_is_about_forty_percent() {
        // "…with overall system utilization approximately 40%."
        let u = base_suite_utilization();
        assert!((0.37..=0.43).contains(&u), "base utilization {u:.3}");
    }

    #[test]
    fn all_tasks_are_feasible_constrained() {
        for t in SAFETY_TASKS.iter().chain(FUNCTION_TASKS.iter()) {
            assert!(t.wcet_slots >= 1, "{}", t.name);
            assert!(t.wcet_slots <= t.period_slots, "{}", t.name);
            assert!(t.request_bytes > 0 && t.response_bytes > 0, "{}", t.name);
        }
    }

    #[test]
    fn periods_span_5ms_to_200ms() {
        let min = SAFETY_TASKS
            .iter()
            .chain(FUNCTION_TASKS.iter())
            .map(|t| t.period_slots)
            .min()
            .unwrap();
        let max = SAFETY_TASKS
            .iter()
            .chain(FUNCTION_TASKS.iter())
            .map(|t| t.period_slots)
            .max()
            .unwrap();
        assert_eq!(min * SLOT_MICROS, 5_000, "fastest period 5 ms");
        assert!(max * SLOT_MICROS >= 80_000, "slowest period ≥ 80 ms");
    }

    #[test]
    fn category_labels() {
        assert_eq!(TaskCategory::Safety.label(), "safety");
        assert_eq!(TaskCategory::Function.label(), "function");
        assert_eq!(TaskCategory::Synthetic.label(), "synthetic");
    }
}
