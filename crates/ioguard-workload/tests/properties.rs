//! Property-based tests for workload generation.

use proptest::prelude::*;

use ioguard_sim::rng::Xoshiro256StarStar;
use ioguard_workload::generator::{TrialConfig, TrialWorkload};
use ioguard_workload::suites::TaskCategory;
use ioguard_workload::uunifast::uunifast;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// UUniFast always returns non-negative utilizations summing to the
    /// requested total.
    #[test]
    fn uunifast_simplex(n in 1usize..40, total in 0.0f64..4.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let utils = uunifast(&mut rng, n, total);
        prop_assert_eq!(utils.len(), n);
        prop_assert!(utils.iter().all(|&u| u >= 0.0));
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
    }

    /// Trial generation invariants: every task is feasible (C ≤ D ≤ T),
    /// every task lands in a valid VM, the 40-task base suite is always
    /// present, and total utilization tracks the target.
    #[test]
    fn trial_invariants(vms in 1usize..=8, target in 0.45f64..1.05, seed in any::<u64>()) {
        let w = TrialWorkload::generate(&TrialConfig::new(vms, target, seed));
        let critical = w
            .tasks()
            .iter()
            .filter(|t| t.category != TaskCategory::Synthetic)
            .count();
        prop_assert_eq!(critical, 40, "base suite always complete");
        for t in w.tasks() {
            prop_assert!(t.vm < vms);
            prop_assert!(t.task.wcet() >= 1);
            prop_assert!(t.task.wcet() <= t.task.deadline());
            prop_assert!(t.task.deadline() <= t.task.period());
            prop_assert!(t.request_bytes > 0);
        }
        let u = w.total_utilization();
        prop_assert!((u - target).abs() < 0.10, "target {} sampled {}", target, u);
    }

    /// Determinism: the workload is a pure function of the config.
    #[test]
    fn trial_determinism(vms in 1usize..=8, seed in any::<u64>()) {
        let c = TrialConfig::new(vms, 0.8, seed);
        prop_assert_eq!(TrialWorkload::generate(&c), TrialWorkload::generate(&c));
    }

    /// split_preload is a partition for any fraction, and the pre-loaded
    /// share of utilization tracks the fraction.
    #[test]
    fn preload_partition(frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let w = TrialWorkload::generate(&TrialConfig::new(4, 0.9, seed));
        let (pre, run) = w.split_preload(frac);
        prop_assert_eq!(pre.len() + run.len(), w.tasks().len());
        // No duplicates across the partition.
        let mut names: Vec<&str> = pre
            .iter()
            .chain(run.iter())
            .map(|t| t.name.as_str())
            .collect();
        names.sort_unstable();
        let total = names.len();
        names.dedup();
        prop_assert_eq!(names.len(), total);
        // Utilization proportionality (loose, stride-sampled).
        if (0.2..=0.9).contains(&frac) {
            let pre_u: f64 = pre.iter().map(|t| t.task.utilization()).sum();
            let share = pre_u / w.total_utilization();
            prop_assert!((share - frac).abs() < 0.2, "frac {} share {}", frac, share);
        }
    }

    /// VM task-set partition matches the flat task list.
    #[test]
    fn vm_partition_consistent(vms in 1usize..=8, seed in any::<u64>()) {
        let w = TrialWorkload::generate(&TrialConfig::new(vms, 0.7, seed));
        let sets = w.vm_task_sets();
        prop_assert_eq!(sets.len(), vms);
        let total: usize = sets.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, w.tasks().len());
        let util_sets: f64 = sets.iter().map(|s| s.utilization()).sum();
        prop_assert!((util_sets - w.total_utilization()).abs() < 1e-9);
    }
}
