//! Deterministic cooperative async engine with a virtual clock.
//!
//! This is the Hadron executor pattern: futures run on a single OS
//! thread, yield control only at `await` points, and a *preemption
//! budget* ([`Preemptor`]) bounds how much work a task may do between
//! yields — cooperative preemption with a deterministic trigger (an op
//! counter) instead of a wall-clock timer interrupt, so two runs poll
//! the exact same sequence of futures.
//!
//! Time is a [`VirtualClock`]: a slot counter that only advances when
//! every task is blocked, jumping straight to the earliest armed timer
//! (discrete-event style). Tasks wake in ascending spawn order within a
//! round, so the interleaving is a pure function of the program — the
//! property the serve replay differential test pins down.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Per-task wake flag; the executor polls a task when its flag is set.
struct WakeFlag {
    woken: AtomicBool,
}

impl Wake for WakeFlag {
    fn wake(self: Arc<Self>) {
        self.woken.store(true, Ordering::Release);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::Release);
    }
}

impl WakeFlag {
    fn take(&self) -> bool {
        self.woken.swap(false, Ordering::AcqRel)
    }
}

struct TaskState {
    future: Pin<Box<dyn Future<Output = ()>>>,
    flag: Arc<WakeFlag>,
    waker: Waker,
}

#[derive(Default)]
struct ClockInner {
    now_slot: Cell<u64>,
    /// slot → wakers armed for it; wakers fire in arming order.
    timers: RefCell<BTreeMap<u64, Vec<Waker>>>,
}

/// Cloneable handle to the executor's virtual clock.
#[derive(Clone, Default)]
pub struct VirtualClock {
    inner: Rc<ClockInner>,
}

impl VirtualClock {
    /// The current virtual slot.
    pub fn now(&self) -> u64 {
        self.inner.now_slot.get()
    }

    /// A future that completes once the clock reaches `slot`.
    pub fn sleep_until(&self, slot: u64) -> Sleep {
        Sleep {
            clock: self.clone(),
            slot,
        }
    }

    fn arm(&self, slot: u64, waker: Waker) {
        self.inner
            .timers
            .borrow_mut()
            .entry(slot)
            .or_default()
            .push(waker);
    }

    /// Pops the earliest armed timer at or after the current slot.
    fn pop_next_timer(&self) -> Option<(u64, Vec<Waker>)> {
        self.inner.timers.borrow_mut().pop_first()
    }

    fn jump_to(&self, slot: u64) {
        if slot > self.inner.now_slot.get() {
            self.inner.now_slot.set(slot);
        }
    }
}

/// Future returned by [`VirtualClock::sleep_until`].
pub struct Sleep {
    clock: VirtualClock,
    slot: u64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.now() >= self.slot {
            Poll::Ready(())
        } else {
            self.clock.arm(self.slot, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A future that yields exactly once, letting every other runnable task
/// poll before this one resumes.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct PreemptInner {
    quantum: u64,
    ops: Cell<u64>,
    preemptions: Cell<u64>,
}

/// Cooperative-preemption budget: tasks account work via
/// [`Preemptor::work`] and offer a yield point via
/// [`Preemptor::checkpoint`]; once the accounted ops exceed the quantum
/// the checkpoint yields (and counts a preemption) instead of running
/// straight through. Deterministic by construction — the trigger is an
/// op counter, not a timer.
#[derive(Clone)]
pub struct Preemptor {
    inner: Rc<PreemptInner>,
}

impl Preemptor {
    /// A preemptor yielding after roughly `quantum` accounted ops.
    pub fn new(quantum: u64) -> Self {
        Self {
            inner: Rc::new(PreemptInner {
                quantum: quantum.max(1),
                ops: Cell::new(0),
                preemptions: Cell::new(0),
            }),
        }
    }

    /// Accounts `ops` units of work against the current quantum.
    pub fn work(&self, ops: u64) {
        self.inner.ops.set(self.inner.ops.get().saturating_add(ops));
    }

    /// Number of times a checkpoint actually yielded.
    pub fn preemptions(&self) -> u64 {
        self.inner.preemptions.get()
    }

    /// A yield point: completes immediately while the quantum has
    /// headroom, yields once when it is exhausted.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            preemptor: self.clone(),
            yielded: false,
        }
    }
}

/// Future returned by [`Preemptor::checkpoint`].
pub struct Checkpoint {
    preemptor: Preemptor,
    yielded: bool,
}

impl Future for Checkpoint {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            return Poll::Ready(());
        }
        let inner = &self.preemptor.inner;
        if inner.ops.get() >= inner.quantum {
            inner.ops.set(0);
            inner
                .preemptions
                .set(inner.preemptions.get().saturating_add(1));
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        } else {
            Poll::Ready(())
        }
    }
}

/// Counters describing one [`Executor::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Individual future polls.
    pub polls: u64,
    /// Scheduling rounds (each polls every runnable task once).
    pub rounds: u64,
    /// Times the virtual clock jumped to the next armed timer.
    pub clock_advances: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks left blocked with no armed timer (deadlock) at exit.
    pub stalled: u64,
}

/// Single-threaded cooperative executor over a [`VirtualClock`].
pub struct Executor {
    tasks: BTreeMap<u64, TaskState>,
    next_id: u64,
    clock: VirtualClock,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An empty executor at virtual slot 0.
    pub fn new() -> Self {
        Self {
            tasks: BTreeMap::new(),
            next_id: 0,
            clock: VirtualClock::default(),
        }
    }

    /// A handle to this executor's clock (clone freely into tasks).
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// Spawns a task; tasks poll in ascending spawn order within each
    /// scheduling round. Returns the task id.
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.saturating_add(1);
        let flag = Arc::new(WakeFlag {
            woken: AtomicBool::new(true),
        });
        let waker = Waker::from(Arc::clone(&flag));
        self.tasks.insert(
            id,
            TaskState {
                future: Box::pin(future),
                flag,
                waker,
            },
        );
        id
    }

    /// Runs until every task completes (or deadlocks with no armed
    /// timer, reported via [`ExecutorStats::stalled`]).
    pub fn run(&mut self) -> ExecutorStats {
        let mut stats = ExecutorStats::default();
        loop {
            let runnable: Vec<u64> = self
                .tasks
                .iter()
                .filter(|(_, task)| task.flag.take())
                .map(|(id, _)| *id)
                .collect();
            if runnable.is_empty() {
                match self.clock.pop_next_timer() {
                    Some((slot, wakers)) => {
                        self.clock.jump_to(slot);
                        stats.clock_advances = stats.clock_advances.saturating_add(1);
                        for waker in wakers {
                            waker.wake();
                        }
                        continue;
                    }
                    None => {
                        stats.stalled = self.tasks.len() as u64;
                        break;
                    }
                }
            }
            stats.rounds = stats.rounds.saturating_add(1);
            for id in runnable {
                let Some(task) = self.tasks.get_mut(&id) else {
                    continue;
                };
                let waker = task.waker.clone();
                let mut cx = Context::from_waker(&waker);
                stats.polls = stats.polls.saturating_add(1);
                if task.future.as_mut().poll(&mut cx).is_ready() {
                    self.tasks.remove(&id);
                    stats.completed = stats.completed.saturating_add(1);
                }
            }
            if self.tasks.is_empty() {
                break;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_interleave_in_spawn_order_per_slot() {
        let mut exec = Executor::new();
        let clock = exec.clock();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["a", "b"] {
            let clock = clock.clone();
            let log = Rc::clone(&log);
            exec.spawn(async move {
                for slot in [2u64, 5, 9] {
                    clock.sleep_until(slot).await;
                    log.borrow_mut().push(format!("{name}@{slot}"));
                }
            });
        }
        let stats = exec.run();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.stalled, 0);
        assert_eq!(
            log.borrow().join(","),
            "a@2,b@2,a@5,b@5,a@9,b@9",
            "tasks sharing a timer slot wake in spawn order"
        );
    }

    #[test]
    fn clock_jumps_to_earliest_timer() {
        let mut exec = Executor::new();
        let clock = exec.clock();
        let seen = Rc::new(Cell::new(0u64));
        {
            let clock = clock.clone();
            let seen = Rc::clone(&seen);
            exec.spawn(async move {
                clock.sleep_until(1000).await;
                seen.set(clock.now());
            });
        }
        let stats = exec.run();
        assert_eq!(seen.get(), 1000);
        assert_eq!(stats.clock_advances, 1, "one discrete jump, not 1000 ticks");
    }

    #[test]
    fn preemptor_yields_only_past_quantum() {
        let mut exec = Executor::new();
        let preempt = Preemptor::new(10);
        let order = Rc::new(RefCell::new(Vec::new()));
        {
            let preempt = preempt.clone();
            let order = Rc::clone(&order);
            exec.spawn(async move {
                for step in 0..4u64 {
                    preempt.work(6);
                    preempt.checkpoint().await;
                    order.borrow_mut().push(format!("big{step}"));
                }
            });
        }
        {
            let order = Rc::clone(&order);
            exec.spawn(async move {
                order.borrow_mut().push("small".to_string());
            });
        }
        exec.run();
        // First checkpoint (6 ops) passes; second (12 ops) yields, letting
        // the small task slip in between.
        assert_eq!(order.borrow().join(","), "big0,small,big1,big2,big3");
        assert_eq!(preempt.preemptions(), 2);
    }

    #[test]
    fn yield_now_round_robins_runnable_tasks() {
        let mut exec = Executor::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for name in ["x", "y"] {
            let log = Rc::clone(&log);
            exec.spawn(async move {
                for _ in 0..2 {
                    log.borrow_mut().push(name);
                    yield_now().await;
                }
            });
        }
        exec.run();
        assert_eq!(log.borrow().join(""), "xyxy");
    }

    #[test]
    fn deadlocked_task_is_reported_stalled() {
        let mut exec = Executor::new();
        exec.spawn(async move {
            std::future::pending::<()>().await;
        });
        let stats = exec.run();
        assert_eq!(stats.stalled, 1);
        assert_eq!(stats.completed, 0);
    }
}
