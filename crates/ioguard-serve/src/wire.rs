//! Zero-copy wire codec for serve requests and responses.
//!
//! ## Request frame layout (little-endian, 34-byte header)
//!
//! | offset | size | field          |
//! |-------:|-----:|----------------|
//! |      0 |    2 | magic `0x49C7` |
//! |      2 |    1 | version (`1`)  |
//! |      3 |    1 | flags (bit 0 = critical; other bits reserved) |
//! |      4 |    4 | client id      |
//! |      8 |    8 | task id        |
//! |     16 |    8 | WCET (slots)   |
//! |     24 |    8 | relative deadline (slots) |
//! |     32 |    2 | payload length |
//! |     34 |    n | payload        |
//!
//! Decoding is **zero-copy**: the payload of a decoded [`Request`] is a
//! sub-view ([`Bytes::slice`]-style) of the ingress buffer, sharing its
//! allocation. Decoding is also **transactional**: a malformed frame
//! returns a typed [`WireError`] and leaves the input buffer exactly
//! where it was — validation runs against a cheap cloned view first and
//! the real cursor only advances on success. Byte-soup fuzzing in the
//! crate's proptest suite leans on both properties.
//!
//! Responses are fixed 24-byte frames ([`Response`]); every admission
//! verdict the serving layer can reach — accept, complete, miss,
//! throttle, shed, reject, mode change — has a typed encoding so clients
//! observe backpressure and graceful degradation in-band.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic tag opening every request frame.
pub const REQ_MAGIC: u16 = 0x49C7;
/// Magic tag opening every response frame.
pub const RESP_MAGIC: u16 = 0x49C8;
/// The only wire version this codec speaks.
pub const WIRE_VERSION: u8 = 1;
/// Request header length in bytes (fields before the payload).
pub const REQ_HEADER_LEN: usize = 34;
/// Fixed response frame length in bytes.
pub const RESP_LEN: usize = 24;
/// Upper bound on a request payload; longer frames are rejected.
pub const MAX_PAYLOAD: usize = 4096;

/// Flag bit marking a request as criticality-high (R-channel).
pub const FLAG_CRITICAL: u8 = 0b0000_0001;

/// One decoded I/O request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client (VM) the request claims to originate from.
    pub client: u32,
    /// Client-chosen request identifier, echoed in responses.
    pub task_id: u64,
    /// Worst-case execution time in slots (must be ≥ 1).
    pub wcet: u64,
    /// Relative deadline in slots (must be ≥ `wcet`).
    pub deadline_rel: u64,
    /// Criticality: `true` routes via the guaranteed R-channel class.
    pub critical: bool,
    /// Opaque payload — a zero-copy view of the ingress buffer.
    pub payload: Bytes,
}

/// Typed decode/encode failures. Decoding never panics and never
/// consumes input on failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Fewer bytes than the frame needs.
    Truncated {
        /// Bytes the frame requires.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The magic tag did not match.
    BadMagic {
        /// The tag found on the wire.
        found: u16,
    },
    /// Unsupported wire version.
    BadVersion {
        /// The version found on the wire.
        found: u8,
    },
    /// Reserved flag bits were set.
    BadFlags {
        /// The flags byte found on the wire.
        found: u8,
    },
    /// WCET of zero is meaningless.
    ZeroWcet,
    /// Relative deadline below the WCET can never be met.
    DeadlineBeforeWcet {
        /// Claimed WCET.
        wcet: u64,
        /// Claimed relative deadline.
        deadline_rel: u64,
    },
    /// Payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLong {
        /// Claimed payload length.
        len: usize,
    },
    /// Unknown response kind ordinal.
    BadResponseKind {
        /// The kind byte found on the wire.
        found: u8,
    },
}

impl WireError {
    /// Stable small ordinal for trace/counter attribution.
    pub fn ordinal(&self) -> u64 {
        match self {
            WireError::Truncated { .. } => 1,
            WireError::BadMagic { .. } => 2,
            WireError::BadVersion { .. } => 3,
            WireError::BadFlags { .. } => 4,
            WireError::ZeroWcet => 5,
            WireError::DeadlineBeforeWcet { .. } => 6,
            WireError::PayloadTooLong { .. } => 7,
            WireError::BadResponseKind { .. } => 8,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic 0x{found:04X}"),
            WireError::BadVersion { found } => write!(f, "unsupported wire version {found}"),
            WireError::BadFlags { found } => write!(f, "reserved flag bits set: 0b{found:08b}"),
            WireError::ZeroWcet => write!(f, "wcet must be >= 1"),
            WireError::DeadlineBeforeWcet { wcet, deadline_rel } => {
                write!(f, "deadline {deadline_rel} below wcet {wcet}")
            }
            WireError::PayloadTooLong { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
            WireError::BadResponseKind { found } => write!(f, "unknown response kind {found}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a connection or request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The frame failed to decode.
    Malformed,
    /// The client's declared task set fails the Theorem 3 local gate.
    NotSchedulable,
    /// No shard has ledger headroom (Theorem 1) for the server request.
    NoCapacity,
    /// The client's hypervisor pool is full.
    PoolFull,
    /// The shard is running degraded and refused this class.
    Degraded,
    /// The client id is outside the registry.
    UnknownClient,
    /// Connect for a client that is already connected.
    AlreadyConnected,
    /// Request or disconnect for a client that is not connected.
    NotConnected,
}

impl RejectReason {
    /// Stable wire ordinal.
    pub fn ordinal(self) -> u64 {
        match self {
            RejectReason::Malformed => 1,
            RejectReason::NotSchedulable => 2,
            RejectReason::NoCapacity => 3,
            RejectReason::PoolFull => 4,
            RejectReason::Degraded => 5,
            RejectReason::UnknownClient => 6,
            RejectReason::AlreadyConnected => 7,
            RejectReason::NotConnected => 8,
        }
    }

    /// Inverse of [`RejectReason::ordinal`].
    pub fn from_ordinal(ordinal: u64) -> Option<Self> {
        match ordinal {
            1 => Some(RejectReason::Malformed),
            2 => Some(RejectReason::NotSchedulable),
            3 => Some(RejectReason::NoCapacity),
            4 => Some(RejectReason::PoolFull),
            5 => Some(RejectReason::Degraded),
            6 => Some(RejectReason::UnknownClient),
            7 => Some(RejectReason::AlreadyConnected),
            8 => Some(RejectReason::NotConnected),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            RejectReason::Malformed => "malformed",
            RejectReason::NotSchedulable => "not-schedulable",
            RejectReason::NoCapacity => "no-capacity",
            RejectReason::PoolFull => "pool-full",
            RejectReason::Degraded => "degraded",
            RejectReason::UnknownClient => "unknown-client",
            RejectReason::AlreadyConnected => "already-connected",
            RejectReason::NotConnected => "not-connected",
        }
    }
}

/// One typed response frame streamed back to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// The client is connected and placed on `shard`.
    Connected {
        /// The client the response addresses.
        client: u32,
        /// Shard index the client was placed on.
        shard: u32,
    },
    /// The connection request was refused.
    ConnectRejected {
        /// The client the response addresses.
        client: u32,
        /// Why the connection was refused.
        reason: RejectReason,
    },
    /// The client has been disconnected.
    Disconnected {
        /// The client the response addresses.
        client: u32,
    },
    /// The request passed admission and is enqueued for dispatch.
    Accepted {
        /// The client the response addresses.
        client: u32,
        /// Echo of the request's task id.
        task_id: u64,
    },
    /// The request completed within its deadline.
    Completed {
        /// The client the response addresses.
        client: u32,
        /// Echo of the request's task id.
        task_id: u64,
        /// End-to-end latency in slots (submission to completion).
        latency: u64,
    },
    /// The request missed its deadline.
    Missed {
        /// The client the response addresses.
        client: u32,
        /// Echo of the request's task id.
        task_id: u64,
        /// Whether the missed request was criticality-high.
        critical: bool,
    },
    /// The request was refused outright.
    Rejected {
        /// The client the response addresses.
        client: u32,
        /// Echo of the request's task id (0 when undecodable).
        task_id: u64,
        /// Why the request was refused.
        reason: RejectReason,
    },
    /// The client tripped the admission guard and is rate-limited.
    Throttled {
        /// The client the response addresses.
        client: u32,
        /// Echo of the request's task id.
        task_id: u64,
        /// Slot at which the throttle penalty expires.
        until: u64,
    },
    /// A best-effort request was shed under overload.
    Shed {
        /// The client the response addresses.
        client: u32,
        /// Echo of the request's task id (0 for queue-level sheds).
        task_id: u64,
    },
    /// The client's shard changed degradation mode.
    ModeChange {
        /// The client the response addresses.
        client: u32,
        /// Shard index the mode change happened on.
        shard: u32,
        /// New mode ordinal (0 = Normal, 1 = Degraded, 2 = PchannelOnly).
        mode: u32,
    },
}

impl Response {
    /// The client this response addresses.
    pub fn client(&self) -> u32 {
        match *self {
            Response::Connected { client, .. }
            | Response::ConnectRejected { client, .. }
            | Response::Disconnected { client }
            | Response::Accepted { client, .. }
            | Response::Completed { client, .. }
            | Response::Missed { client, .. }
            | Response::Rejected { client, .. }
            | Response::Throttled { client, .. }
            | Response::Shed { client, .. }
            | Response::ModeChange { client, .. } => client,
        }
    }

    /// Stable wire ordinal for the response kind.
    pub fn kind_ordinal(&self) -> u8 {
        match self {
            Response::Connected { .. } => 1,
            Response::ConnectRejected { .. } => 2,
            Response::Disconnected { .. } => 3,
            Response::Accepted { .. } => 4,
            Response::Completed { .. } => 5,
            Response::Missed { .. } => 6,
            Response::Rejected { .. } => 7,
            Response::Throttled { .. } => 8,
            Response::Shed { .. } => 9,
            Response::ModeChange { .. } => 10,
        }
    }

    /// Number of distinct response kinds (fold-array size).
    pub const KINDS: usize = 10;

    /// Human-readable label for a 1-based response kind ordinal.
    pub fn kind_label(ordinal: u8) -> &'static str {
        match ordinal {
            1 => "connected",
            2 => "connect-rejected",
            3 => "disconnected",
            4 => "accepted",
            5 => "completed",
            6 => "missed",
            7 => "rejected",
            8 => "throttled",
            9 => "shed",
            10 => "mode-change",
            _ => "unknown",
        }
    }

    /// The `(a, b)` argument pair carried on the wire for this kind.
    fn args(&self) -> (u64, u64) {
        match *self {
            Response::Connected { shard, .. } => (u64::from(shard), 0),
            Response::ConnectRejected { reason, .. } => (reason.ordinal(), 0),
            Response::Disconnected { .. } => (0, 0),
            Response::Accepted { task_id, .. } => (task_id, 0),
            Response::Completed {
                task_id, latency, ..
            } => (task_id, latency),
            Response::Missed {
                task_id, critical, ..
            } => (task_id, u64::from(critical)),
            Response::Rejected {
                task_id, reason, ..
            } => (task_id, reason.ordinal()),
            Response::Throttled { task_id, until, .. } => (task_id, until),
            Response::Shed { task_id, .. } => (task_id, 0),
            Response::ModeChange { shard, mode, .. } => (u64::from(shard), u64::from(mode)),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Response::Connected { client, shard } => {
                write!(f, "connected client={client} shard={shard}")
            }
            Response::ConnectRejected { client, reason } => {
                write!(
                    f,
                    "connect-rejected client={client} reason={}",
                    reason.label()
                )
            }
            Response::Disconnected { client } => write!(f, "disconnected client={client}"),
            Response::Accepted { client, task_id } => {
                write!(f, "accepted client={client} task={task_id}")
            }
            Response::Completed {
                client,
                task_id,
                latency,
            } => {
                write!(
                    f,
                    "completed client={client} task={task_id} latency={latency}"
                )
            }
            Response::Missed {
                client,
                task_id,
                critical,
            } => {
                write!(
                    f,
                    "missed client={client} task={task_id} critical={}",
                    u64::from(critical)
                )
            }
            Response::Rejected {
                client,
                task_id,
                reason,
            } => {
                write!(
                    f,
                    "rejected client={client} task={task_id} reason={}",
                    reason.label()
                )
            }
            Response::Throttled {
                client,
                task_id,
                until,
            } => {
                write!(f, "throttled client={client} task={task_id} until={until}")
            }
            Response::Shed { client, task_id } => write!(f, "shed client={client} task={task_id}"),
            Response::ModeChange {
                client,
                shard,
                mode,
            } => {
                write!(f, "mode-change client={client} shard={shard} mode={mode}")
            }
        }
    }
}

/// Encodes `req` onto `out`, validating the same invariants decoding
/// enforces so that `decode(encode(req))` round-trips exactly.
pub fn encode_request(req: &Request, out: &mut BytesMut) -> Result<(), WireError> {
    if req.wcet == 0 {
        return Err(WireError::ZeroWcet);
    }
    if req.deadline_rel < req.wcet {
        return Err(WireError::DeadlineBeforeWcet {
            wcet: req.wcet,
            deadline_rel: req.deadline_rel,
        });
    }
    let payload_len = u16::try_from(req.payload.len())
        .ok()
        .filter(|&n| usize::from(n) <= MAX_PAYLOAD)
        .ok_or(WireError::PayloadTooLong {
            len: req.payload.len(),
        })?;
    out.put_u16_le(REQ_MAGIC);
    out.put_u8(WIRE_VERSION);
    out.put_u8(if req.critical { FLAG_CRITICAL } else { 0 });
    out.put_u32_le(req.client);
    out.put_u64_le(req.task_id);
    out.put_u64_le(req.wcet);
    out.put_u64_le(req.deadline_rel);
    out.put_u16_le(payload_len);
    out.put_slice(&req.payload);
    Ok(())
}

/// Encodes `req` into a standalone frame.
pub fn encode_request_frame(req: &Request) -> Result<Bytes, WireError> {
    let mut out = BytesMut::with_capacity(REQ_HEADER_LEN.saturating_add(req.payload.len()));
    encode_request(req, &mut out)?;
    Ok(out.freeze())
}

/// Decodes one request frame off the front of `buf`.
///
/// On success the cursor advances past the frame and the returned
/// payload is a zero-copy sub-view of `buf`'s allocation. On **any**
/// failure `buf` is left untouched — no partial consumption.
pub fn decode_request(buf: &mut Bytes) -> Result<Request, WireError> {
    let have = buf.remaining();
    if have < REQ_HEADER_LEN {
        return Err(WireError::Truncated {
            need: REQ_HEADER_LEN,
            have,
        });
    }
    // Validate against a cheap cloned view; the real cursor moves only
    // once the whole frame has been proven well-formed.
    let mut peek = buf.clone();
    let magic = peek.get_u16_le();
    if magic != REQ_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = peek.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let flags = peek.get_u8();
    if flags & !FLAG_CRITICAL != 0 {
        return Err(WireError::BadFlags { found: flags });
    }
    let client = peek.get_u32_le();
    let task_id = peek.get_u64_le();
    let wcet = peek.get_u64_le();
    let deadline_rel = peek.get_u64_le();
    let payload_len = usize::from(peek.get_u16_le());
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::PayloadTooLong { len: payload_len });
    }
    let need = REQ_HEADER_LEN.saturating_add(payload_len);
    if have < need {
        return Err(WireError::Truncated { need, have });
    }
    if wcet == 0 {
        return Err(WireError::ZeroWcet);
    }
    if deadline_rel < wcet {
        return Err(WireError::DeadlineBeforeWcet { wcet, deadline_rel });
    }
    // Commit: advance the real cursor and hand out a zero-copy payload.
    buf.advance(REQ_HEADER_LEN);
    let payload = buf.split_to(payload_len);
    Ok(Request {
        client,
        task_id,
        wcet,
        deadline_rel,
        critical: flags & FLAG_CRITICAL != 0,
        payload,
    })
}

/// Decodes consecutive request frames from `buf` until it is empty or a
/// frame fails; returns the decoded prefix and the terminating error (if
/// any). The buffer is left positioned at the first undecodable byte.
pub fn decode_stream(buf: &mut Bytes) -> (Vec<Request>, Option<WireError>) {
    let mut out = Vec::new();
    while !buf.is_empty() {
        match decode_request(buf) {
            Ok(req) => out.push(req),
            Err(err) => return (out, Some(err)),
        }
    }
    (out, None)
}

/// Encodes `resp` onto `out` as a fixed [`RESP_LEN`]-byte frame.
pub fn encode_response(resp: &Response, out: &mut BytesMut) {
    let (a, b) = resp.args();
    out.put_u16_le(RESP_MAGIC);
    out.put_u8(WIRE_VERSION);
    out.put_u8(resp.kind_ordinal());
    out.put_u32_le(resp.client());
    out.put_u64_le(a);
    out.put_u64_le(b);
}

/// Decodes one response frame off the front of `buf`. Transactional
/// like [`decode_request`]: failures leave `buf` untouched.
pub fn decode_response(buf: &mut Bytes) -> Result<Response, WireError> {
    let have = buf.remaining();
    if have < RESP_LEN {
        return Err(WireError::Truncated {
            need: RESP_LEN,
            have,
        });
    }
    let mut peek = buf.clone();
    let magic = peek.get_u16_le();
    if magic != RESP_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = peek.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let kind = peek.get_u8();
    let client = peek.get_u32_le();
    let a = peek.get_u64_le();
    let b = peek.get_u64_le();
    let shard = u32::try_from(a).unwrap_or(u32::MAX);
    let resp = match kind {
        1 => Response::Connected { client, shard },
        2 => Response::ConnectRejected {
            client,
            reason: RejectReason::from_ordinal(a)
                .ok_or(WireError::BadResponseKind { found: kind })?,
        },
        3 => Response::Disconnected { client },
        4 => Response::Accepted { client, task_id: a },
        5 => Response::Completed {
            client,
            task_id: a,
            latency: b,
        },
        6 => Response::Missed {
            client,
            task_id: a,
            critical: b != 0,
        },
        7 => Response::Rejected {
            client,
            task_id: a,
            reason: RejectReason::from_ordinal(b)
                .ok_or(WireError::BadResponseKind { found: kind })?,
        },
        8 => Response::Throttled {
            client,
            task_id: a,
            until: b,
        },
        9 => Response::Shed { client, task_id: a },
        10 => Response::ModeChange {
            client,
            shard,
            mode: u32::try_from(b).unwrap_or(u32::MAX),
        },
        other => return Err(WireError::BadResponseKind { found: other }),
    };
    buf.advance(RESP_LEN);
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Request {
        Request {
            client: 7,
            task_id: 99,
            wcet: 3,
            deadline_rel: 40,
            critical: true,
            payload: Bytes::copy_from_slice(b"read sector 12"),
        }
    }

    #[test]
    fn request_round_trip() {
        let req = sample();
        let mut frame = encode_request_frame(&req).unwrap();
        let back = decode_request(&mut frame).unwrap();
        assert_eq!(back, req);
        assert!(frame.is_empty());
    }

    #[test]
    fn decode_is_zero_copy_and_transactional() {
        let req = sample();
        let mut frame = encode_request_frame(&req).unwrap();
        let whole = frame.clone();
        let back = decode_request(&mut frame).unwrap();
        // The payload view aliases the frame allocation (compare via the
        // content of the enclosing region: slicing the original frame at
        // the payload offset yields an equal view).
        assert_eq!(back.payload, whole.slice(REQ_HEADER_LEN..));
        // A bad-magic frame consumes nothing.
        let mut bad = Bytes::copy_from_slice(&[0u8; 64]);
        let before = bad.clone();
        assert_eq!(
            decode_request(&mut bad),
            Err(WireError::BadMagic { found: 0 })
        );
        assert_eq!(bad, before);
    }

    #[test]
    fn response_round_trip_all_kinds() {
        let kinds = [
            Response::Connected {
                client: 1,
                shard: 2,
            },
            Response::ConnectRejected {
                client: 1,
                reason: RejectReason::NoCapacity,
            },
            Response::Disconnected { client: 1 },
            Response::Accepted {
                client: 1,
                task_id: 5,
            },
            Response::Completed {
                client: 1,
                task_id: 5,
                latency: 9,
            },
            Response::Missed {
                client: 1,
                task_id: 5,
                critical: true,
            },
            Response::Rejected {
                client: 1,
                task_id: 5,
                reason: RejectReason::PoolFull,
            },
            Response::Throttled {
                client: 1,
                task_id: 5,
                until: 64,
            },
            Response::Shed {
                client: 1,
                task_id: 5,
            },
            Response::ModeChange {
                client: 1,
                shard: 0,
                mode: 2,
            },
        ];
        for resp in kinds {
            let mut out = BytesMut::new();
            encode_response(&resp, &mut out);
            let mut frame = out.freeze();
            assert_eq!(frame.len(), RESP_LEN);
            assert_eq!(decode_response(&mut frame).unwrap(), resp);
            assert!(frame.is_empty());
        }
    }

    #[test]
    fn truncated_and_invalid_frames_are_typed() {
        let mut short = Bytes::copy_from_slice(&[0u8; 10]);
        assert!(matches!(
            decode_request(&mut short),
            Err(WireError::Truncated { .. })
        ));
        let mut req = sample();
        req.wcet = 0;
        assert_eq!(encode_request_frame(&req), Err(WireError::ZeroWcet));
        let mut req = sample();
        req.deadline_rel = 1;
        assert!(matches!(
            encode_request_frame(&req),
            Err(WireError::DeadlineBeforeWcet { .. })
        ));
    }
}
