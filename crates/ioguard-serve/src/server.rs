//! The serving core: shards, bindings, backpressure, typed verdicts.
//!
//! A [`ServeCluster`] owns a row of shards, each pairing a
//! [`ioguard_fleet::shard::Shard`] (the Theorem 1 demand ledger that
//! answers *connection* admission) with a [`Hypervisor`] (σ*-driven
//! dispatch plus the [`AdmissionGuard`] answering *per-request* rate
//! admission). A client connects by declaring its periodic server
//! `Γ = (Π, Θ)` and task set — the Theorem 3 local gate and worst-fit
//! ledger placement decide shard and pool — then streams request frames
//! which are decoded zero-copy ([`crate::wire`]), buffered in a
//! **bounded** per-client backlog, and submitted to the shard's
//! hypervisor at the next slot boundary.
//!
//! Every fate a request can meet comes back as exactly one typed
//! [`Response`]: `Accepted` (admitted to the pool), `Completed` (with
//! end-to-end latency), `Missed`, `Throttled` (flood control), `Shed`
//! (backlog overflow or degradation), or `Rejected` (typed reason).
//! Degradation mode changes are broadcast to every client of the shard
//! exactly once per transition.
//!
//! The cluster keeps its own [`TraceSink`] keyed by *client* id and a
//! live [`CounterRegistry`] folded at the same call sites, so
//! `CounterRegistry::from_events` over the serve trace reproduces the
//! live counters — the discipline the golden/differential tests pin.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use bytes::Bytes;
use ioguard_core::engine::run_indexed;
use ioguard_fleet::shard::{locally_schedulable, Shard};
use ioguard_hypervisor::driver::RetryPolicy;
use ioguard_hypervisor::hypervisor::{AdmissionGuard, DegradationPolicy, HvMode, RtJob};
use ioguard_hypervisor::{HvError, Hypervisor, HypervisorParams};
use ioguard_obs::{
    CounterRegistry, Histogram, ObsEvent, ObsKind, TraceSink, VmCounters, SYSTEM_VM,
};
use ioguard_sched::{PeriodicServer, TaskSet, TimeSlotTable};
use ioguard_sim::rng::SplitMix64;

use crate::wire::{self, RejectReason, Request, Response};

/// Marker codes carried in the `task` field of serve-level
/// [`ObsKind::Marker`] trace events.
pub mod markers {
    /// A client connected; `arg` = shard index.
    pub const CONNECT: u64 = 1;
    /// A client disconnected; `arg` = shard index.
    pub const DISCONNECT: u64 = 2;
    /// An undecodable frame arrived; `arg` = [`crate::wire::WireError`]
    /// ordinal.
    pub const MALFORMED: u64 = 3;
}

/// Saturating id conversion for trace fields (the workspace idiom).
fn trace_id(x: u64) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

fn trace_idx(x: usize) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

/// Tuning for a [`ServeCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of shards (ledger + hypervisor pairs).
    pub shards: usize,
    /// Hypervisor pools per shard — the per-shard connection ceiling.
    pub pools_per_shard: usize,
    /// Fleet analysis frame handed to each shard's demand ledger.
    pub frame: u64,
    /// Per-request flood control applied at every shard.
    pub guard: AdmissionGuard,
    /// Watchdog retry policy (enables fault-driven degradation).
    pub watchdog: Option<RetryPolicy>,
    /// Graceful-degradation recovery tuning.
    pub degradation: DegradationPolicy,
    /// Hardware pool depth per client.
    pub pool_capacity: usize,
    /// Bound of each client's decode→dispatch backlog; overflow sheds.
    pub backlog_capacity: usize,
    /// Client-id registry size; ids at or above this are refused.
    pub max_clients: u32,
    /// Serve trace ring capacity (drop-oldest beyond it).
    pub trace_capacity: usize,
    /// Per-shard hypervisor observer ring capacity (drained every slot).
    pub hv_obs_capacity: usize,
    /// Seed for deterministic placement tie-breaks.
    pub seed: u64,
}

impl ServeConfig {
    /// A config with calibrated defaults for `shards`×`pools_per_shard`.
    pub fn new(shards: usize, pools_per_shard: usize) -> Self {
        Self {
            shards,
            pools_per_shard,
            frame: 4096,
            guard: AdmissionGuard {
                window: 64,
                max_submissions: 8,
                throttle_slots: 128,
            },
            watchdog: None,
            degradation: DegradationPolicy::default(),
            pool_capacity: 32,
            backlog_capacity: 16,
            max_clients: 4096,
            trace_capacity: 1 << 16,
            hv_obs_capacity: 1 << 14,
            seed: 0x00C0_FFEE,
        }
    }
}

/// Construction-time failures of a [`ServeCluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The configuration could not be realized.
    Construction {
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Construction { reason } => write!(f, "serve construction: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[derive(Debug, Clone, Copy)]
struct Binding {
    shard: usize,
    pool: usize,
}

struct ServeShard {
    ledger: Shard,
    hv: Hypervisor,
    free_pools: BTreeSet<usize>,
    /// pool index → bound client (stays set while a disconnected
    /// client's pool drains, for correct completion attribution).
    pool_client: Vec<Option<u32>>,
    /// Pools of disconnected clients still holding in-flight work.
    draining: BTreeSet<usize>,
    /// Observer ring drops seen so far (should stay 0; see
    /// [`ServeCluster::obs_overflows`]).
    obs_dropped_seen: u64,
}

/// The serving front-end state machine (see module docs).
pub struct ServeCluster {
    config: ServeConfig,
    shards: Vec<ServeShard>,
    bindings: BTreeMap<u32, Binding>,
    backlogs: BTreeMap<u32, VecDeque<Request>>,
    counters: CounterRegistry,
    sink: TraceSink,
    now_slot: u64,
    mix: SplitMix64,
    obs_overflows: u64,
}

impl ServeCluster {
    /// Builds the cluster: one ledger shard + hypervisor per shard slot.
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        if config.shards == 0 || config.pools_per_shard == 0 {
            return Err(ServeError::Construction {
                reason: "shards and pools_per_shard must be positive".into(),
            });
        }
        let mut shards = Vec::with_capacity(config.shards);
        for id in 0..config.shards {
            // One reserved σ* slot in 64: the P-channel keeps its table
            // share while virtually all bandwidth serves the R-channel.
            let sigma =
                TimeSlotTable::from_occupied(64, &[0]).map_err(|e| ServeError::Construction {
                    reason: format!("sigma table: {e}"),
                })?;
            let ledger =
                Shard::new(id, sigma, config.frame).map_err(|e| ServeError::Construction {
                    reason: format!("shard {id}: {e}"),
                })?;
            let mut params = HypervisorParams {
                pool_capacity: config.pool_capacity,
                ..HypervisorParams::new(config.pools_per_shard)
            }
            .with_admission_guard(config.guard)
            .with_degradation(config.degradation);
            if let Some(watchdog) = config.watchdog {
                params = params.with_watchdog(watchdog);
            }
            let mut hv = Hypervisor::new(params).map_err(|e| ServeError::Construction {
                reason: format!("hypervisor {id}: {e}"),
            })?;
            hv.attach_obs(config.hv_obs_capacity);
            shards.push(ServeShard {
                ledger,
                hv,
                free_pools: (0..config.pools_per_shard).collect(),
                pool_client: vec![None; config.pools_per_shard],
                draining: BTreeSet::new(),
                obs_dropped_seen: 0,
            });
        }
        Ok(Self {
            shards,
            bindings: BTreeMap::new(),
            backlogs: BTreeMap::new(),
            counters: CounterRegistry::new(config.max_clients as usize),
            sink: TraceSink::new(config.trace_capacity),
            now_slot: 0,
            mix: SplitMix64::new(config.seed),
            obs_overflows: 0,
            config,
        })
    }

    /// Records a serve-level trace event and folds it into the live
    /// counter registry at the same call site, keeping
    /// `CounterRegistry::from_events(trace)` equal to the live registry.
    fn note(&mut self, kind: ObsKind, vm: u32, task: u64, arg: u64) {
        self.sink.record(self.now_slot, kind, vm, task, arg);
        self.counters.fold_event(&ObsEvent {
            seq: 0,
            at: self.now_slot,
            kind,
            vm,
            task,
            arg,
        });
    }

    /// The current serve slot (advanced by [`ServeCluster::step`]).
    pub fn now(&self) -> u64 {
        self.now_slot
    }

    /// Live per-client counters.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// One client's counters.
    pub fn client_counters(&self, client: u32) -> Option<&VmCounters> {
        self.counters.vm(client as usize)
    }

    /// The serve-level trace ring.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Observer-ring overflows seen across all shards (0 in any sane
    /// configuration; events were lost if this ever rises).
    pub fn obs_overflows(&self) -> u64 {
        self.obs_overflows
    }

    /// True when `client` currently holds a connection.
    pub fn connected(&self, client: u32) -> bool {
        self.bindings.contains_key(&client)
    }

    /// Number of connected clients.
    pub fn connected_count(&self) -> usize {
        self.bindings.len()
    }

    /// The degradation mode of `shard`.
    pub fn mode(&self, shard: usize) -> Option<HvMode> {
        self.shards.get(shard).map(|s| s.hv.mode())
    }

    /// Injects a transient device stall on `shard` (fault testing).
    pub fn inject_device_stall(&mut self, shard: usize, slots: u64) {
        if let Some(s) = self.shards.get_mut(shard) {
            s.hv.inject_device_stall(slots);
        }
    }

    /// Forces `shard` one degradation level down (Normal → Degraded →
    /// PchannelOnly) and immediately translates the resulting mode-change
    /// and shed events into client responses. Call between steps.
    pub fn degrade(&mut self, shard: usize) -> Vec<Response> {
        let mut responses = Vec::new();
        if let Some(s) = self.shards.get_mut(shard) {
            if let Some(obs) = s.hv.obs_mut() {
                obs.sink.clear();
            }
            s.hv.degrade();
        }
        self.translate_shard_events(shard, &mut responses);
        responses
    }

    /// Merged end-to-end latency histograms across all shards, split by
    /// criticality class: `(critical, best_effort)`.
    pub fn e2e_histograms(&self) -> (Histogram, Histogram) {
        let mut critical = Histogram::new();
        let mut best_effort = Histogram::new();
        for shard in &self.shards {
            if let Some(obs) = shard.hv.obs() {
                critical.merge(&obs.e2e_critical);
                best_effort.merge(&obs.e2e_best_effort);
            }
        }
        (critical, best_effort)
    }

    /// Connection admission: the Theorem 3 local gate, then worst-fit
    /// ledger placement (most headroom first, seeded tie-break) across
    /// shards with a free pool. Returns the typed verdict.
    pub fn connect(&mut self, client: u32, server: PeriodicServer, tasks: &TaskSet) -> Response {
        if client >= self.config.max_clients {
            return Response::ConnectRejected {
                client,
                reason: RejectReason::UnknownClient,
            };
        }
        if self.bindings.contains_key(&client) {
            return Response::ConnectRejected {
                client,
                reason: RejectReason::AlreadyConnected,
            };
        }
        if !locally_schedulable(&server, tasks) {
            return Response::ConnectRejected {
                client,
                reason: RejectReason::NotSchedulable,
            };
        }
        let mut best: Option<(i64, u64, usize)> = None;
        for (idx, shard) in self.shards.iter().enumerate() {
            if shard.free_pools.is_empty() || !shard.ledger.probe(&server) {
                continue;
            }
            let tie = self
                .mix
                .derive((u64::from(client) << 16) | trace_idx(idx) as u64);
            let key = (shard.ledger.headroom(), tie, idx);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        let Some((_, _, idx)) = best else {
            return Response::ConnectRejected {
                client,
                reason: RejectReason::NoCapacity,
            };
        };
        let Some(shard) = self.shards.get_mut(idx) else {
            return Response::ConnectRejected {
                client,
                reason: RejectReason::NoCapacity,
            };
        };
        let admitted = shard
            .ledger
            .admit(u64::from(client), server, tasks)
            .map(|outcome| outcome.admitted())
            .unwrap_or(false);
        if !admitted {
            return Response::ConnectRejected {
                client,
                reason: RejectReason::NoCapacity,
            };
        }
        let Some(pool) = shard.free_pools.pop_first() else {
            let _ = shard.ledger.evict(u64::from(client));
            return Response::ConnectRejected {
                client,
                reason: RejectReason::NoCapacity,
            };
        };
        if let Some(slot) = shard.pool_client.get_mut(pool) {
            *slot = Some(client);
        }
        self.bindings.insert(client, Binding { shard: idx, pool });
        // lint: allow(unbounded-spillover) — membership is bounded by the max_clients gate at connect entry; the queue starts empty and every later grow is capacity-guarded
        self.backlogs.insert(client, VecDeque::new());
        self.note(
            ObsKind::Marker,
            client,
            markers::CONNECT,
            trace_idx(idx) as u64,
        );
        Response::Connected {
            client,
            shard: trace_idx(idx),
        }
    }

    /// Tears down `client`'s connection. In-flight pool work keeps its
    /// attribution and the pool returns to the free set once drained.
    pub fn disconnect(&mut self, client: u32) -> Response {
        let Some(binding) = self.bindings.remove(&client) else {
            return Response::Rejected {
                client,
                task_id: 0,
                reason: RejectReason::NotConnected,
            };
        };
        self.backlogs.remove(&client);
        if let Some(shard) = self.shards.get_mut(binding.shard) {
            let _ = shard.ledger.evict(u64::from(client));
            let empty = shard
                .hv
                .pools()
                .get(binding.pool)
                .map(|p| p.is_empty())
                .unwrap_or(true);
            if empty {
                if let Some(slot) = shard.pool_client.get_mut(binding.pool) {
                    *slot = None;
                }
                shard.free_pools.insert(binding.pool);
            } else {
                shard.draining.insert(binding.pool);
            }
        }
        self.note(
            ObsKind::Marker,
            client,
            markers::DISCONNECT,
            trace_idx(binding.shard) as u64,
        );
        Response::Disconnected { client }
    }

    /// Ingests raw frames: zero-copy parallel decode (deterministic at
    /// any `workers` count — results scatter back in input order), then
    /// sequential admission into the bounded per-client backlogs.
    ///
    /// Each decodable request either enters its client's backlog
    /// (response deferred to the submission verdict at the next
    /// [`ServeCluster::step`]) or is shed on overflow; each undecodable
    /// tail yields exactly one `Rejected(Malformed)`.
    pub fn ingest(&mut self, frames: &[(u32, Bytes)], workers: usize) -> Vec<Response> {
        let (decoded, _) = run_indexed(workers, frames, |_, (_, bytes)| {
            let mut cursor = bytes.clone();
            wire::decode_stream(&mut cursor)
        });
        let mut responses = Vec::new();
        for ((origin, _), (requests, err)) in frames.iter().zip(decoded) {
            for request in requests {
                if let Some(resp) = self.accept_frame(*origin, request) {
                    responses.push(resp);
                }
            }
            if let Some(e) = err {
                self.note(ObsKind::Marker, *origin, markers::MALFORMED, e.ordinal());
                responses.push(Response::Rejected {
                    client: *origin,
                    task_id: 0,
                    reason: RejectReason::Malformed,
                });
            }
        }
        responses
    }

    fn accept_frame(&mut self, origin: u32, request: Request) -> Option<Response> {
        let task_id = request.task_id;
        if request.client != origin {
            return Some(Response::Rejected {
                client: origin,
                task_id,
                reason: RejectReason::Malformed,
            });
        }
        if !self.bindings.contains_key(&origin) {
            return Some(Response::Rejected {
                client: origin,
                task_id,
                reason: RejectReason::NotConnected,
            });
        }
        let cap = self.config.backlog_capacity;
        let Some(backlog) = self.backlogs.get_mut(&origin) else {
            return Some(Response::Rejected {
                client: origin,
                task_id,
                reason: RejectReason::NotConnected,
            });
        };
        // Bounded spillover: the capacity guard is the backpressure
        // contract — beyond the bound we shed, never grow.
        if backlog.len() < cap {
            backlog.push_back(request);
            None
        } else {
            self.note(ObsKind::Shed, origin, task_id, 1);
            Some(Response::Shed {
                client: origin,
                task_id,
            })
        }
    }

    fn submit_one(&mut self, client: u32, binding: Binding, request: Request) -> Response {
        let Some(shard) = self.shards.get_mut(binding.shard) else {
            return Response::Rejected {
                client,
                task_id: request.task_id,
                reason: RejectReason::NotConnected,
            };
        };
        let release = shard.hv.now();
        let mut job = RtJob::new(
            binding.pool,
            request.task_id,
            release,
            request.wcet,
            release.saturating_add(request.deadline_rel),
        );
        if !request.critical {
            job = job.best_effort();
        }
        let response_bytes = trace_id(request.payload.len().max(1) as u64);
        let verdict = shard.hv.submit_with_payload(job, response_bytes);
        match verdict {
            Ok(()) => {
                self.note(ObsKind::Admit, client, request.task_id, request.wcet);
                Response::Accepted {
                    client,
                    task_id: request.task_id,
                }
            }
            Err(HvError::Throttled { until, .. }) => {
                self.note(ObsKind::ThrottledSubmission, client, request.task_id, until);
                Response::Throttled {
                    client,
                    task_id: request.task_id,
                    until,
                }
            }
            Err(HvError::DegradedMode) => {
                if request.critical {
                    self.note(ObsKind::DeadlineMiss, client, request.task_id, 1);
                    Response::Rejected {
                        client,
                        task_id: request.task_id,
                        reason: RejectReason::Degraded,
                    }
                } else {
                    self.note(ObsKind::Shed, client, request.task_id, 1);
                    Response::Shed {
                        client,
                        task_id: request.task_id,
                    }
                }
            }
            Err(HvError::PoolFull { .. }) => {
                let critical_arg = u64::from(request.critical);
                self.note(ObsKind::DeadlineMiss, client, request.task_id, critical_arg);
                Response::Rejected {
                    client,
                    task_id: request.task_id,
                    reason: RejectReason::PoolFull,
                }
            }
            Err(_) => Response::Rejected {
                client,
                task_id: request.task_id,
                reason: RejectReason::UnknownClient,
            },
        }
    }

    /// One serve slot: drain backlogs into the hypervisors (ascending
    /// client id), step every shard, then translate the shards'
    /// observer events into client-addressed responses and serve-trace
    /// records. Returns all responses produced this slot.
    pub fn step(&mut self) -> Vec<Response> {
        let mut responses = Vec::new();
        // Phase 1: submissions. Verdicts come from the typed submit
        // results; the hypervisor's own submission-time observer events
        // are redundant with them and get discarded in phase 2.
        let clients: Vec<u32> = self.backlogs.keys().copied().collect();
        for client in clients {
            let Some(&binding) = self.bindings.get(&client) else {
                continue;
            };
            while let Some(request) = self
                .backlogs
                .get_mut(&client)
                .and_then(|queue| queue.pop_front())
            {
                let resp = self.submit_one(client, binding, request);
                responses.push(resp);
            }
        }
        // Phase 2: drop submission-time observer events (already typed).
        for shard in &mut self.shards {
            if let Some(obs) = shard.hv.obs_mut() {
                obs.sink.clear();
            }
        }
        // Phase 3: dispatch.
        for shard in &mut self.shards {
            shard.hv.step();
        }
        // Phase 4: translate step-time observer events.
        for idx in 0..self.shards.len() {
            self.translate_shard_events(idx, &mut responses);
        }
        self.now_slot = self.now_slot.saturating_add(1);
        responses
    }

    fn translate_shard_events(&mut self, idx: usize, responses: &mut Vec<Response>) {
        let Some(shard) = self.shards.get_mut(idx) else {
            return;
        };
        let mut events: Vec<ObsEvent> = Vec::new();
        if let Some(obs) = shard.hv.obs_mut() {
            events.extend(obs.sink.iter().cloned());
            let dropped = obs.sink.dropped();
            if dropped > shard.obs_dropped_seen {
                self.obs_overflows = self
                    .obs_overflows
                    .saturating_add(dropped - shard.obs_dropped_seen);
                shard.obs_dropped_seen = dropped;
            }
            obs.sink.clear();
        }
        let pool_client = shard.pool_client.clone();
        // Free drained pools of disconnected clients.
        let draining: Vec<usize> = shard.draining.iter().copied().collect();
        for pool in draining {
            let empty = shard
                .hv
                .pools()
                .get(pool)
                .map(|p| p.is_empty())
                .unwrap_or(true);
            if empty {
                shard.draining.remove(&pool);
                shard.free_pools.insert(pool);
                if let Some(slot) = shard.pool_client.get_mut(pool) {
                    *slot = None;
                }
            }
        }
        let shard_tag = trace_idx(idx);
        let client_of =
            |vm: u32| -> Option<u32> { pool_client.get(vm as usize).copied().flatten() };
        for event in events {
            match event.kind {
                ObsKind::Complete => {
                    if let Some(client) = client_of(event.vm) {
                        self.note(ObsKind::Complete, client, event.task, event.arg);
                        responses.push(Response::Completed {
                            client,
                            task_id: event.task,
                            latency: event.arg,
                        });
                    }
                }
                ObsKind::DeadlineMiss => {
                    if let Some(client) = client_of(event.vm) {
                        self.note(ObsKind::DeadlineMiss, client, event.task, event.arg);
                        responses.push(Response::Missed {
                            client,
                            task_id: event.task,
                            critical: event.arg != 0,
                        });
                    }
                }
                ObsKind::Shed => {
                    if let Some(client) = client_of(event.vm) {
                        self.note(ObsKind::Shed, client, event.task, event.arg);
                        responses.push(Response::Shed {
                            client,
                            task_id: event.task,
                        });
                    }
                }
                ObsKind::Retry => {
                    let client = client_of(event.vm).unwrap_or(SYSTEM_VM);
                    self.note(ObsKind::Retry, client, event.task, event.arg);
                }
                ObsKind::ThrottledSlot => {
                    if let Some(client) = client_of(event.vm) {
                        self.note(ObsKind::ThrottledSlot, client, event.task, event.arg);
                    }
                }
                ObsKind::Throttle => {
                    if let Some(client) = client_of(event.vm) {
                        self.note(ObsKind::Throttle, client, event.task, event.arg);
                    }
                }
                ObsKind::Fault | ObsKind::Recovery => {
                    self.note(event.kind, SYSTEM_VM, shard_tag as u64, event.arg);
                }
                ObsKind::ModeChange => {
                    self.note(ObsKind::ModeChange, SYSTEM_VM, shard_tag as u64, event.arg);
                    let mode = trace_id(event.arg);
                    let bound: Vec<u32> = self
                        .bindings
                        .iter()
                        .filter(|(_, b)| b.shard == idx)
                        .map(|(client, _)| *client)
                        .collect();
                    for client in bound {
                        responses.push(Response::ModeChange {
                            client,
                            shard: shard_tag,
                            mode,
                        });
                    }
                }
                _ => {}
            }
        }
    }
}
