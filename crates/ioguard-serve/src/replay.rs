//! Deterministic virtual-clock replay of live request streams.
//!
//! [`ReplayDriver`] is the serving front-end's test harness headline: it
//! synthesizes a client population from
//! [`ioguard_workload::arrivals::FleetArrivals`] (the same churn streams
//! the fleet layer replays), runs connect/disconnect lifecycle plus
//! periodic request emission for every resident client on the
//! [`crate::executor`], and drives a [`ServeCluster`] one virtual slot
//! at a time — millions of requests per run, zero wall-clock
//! dependence. The observable outcome (response fold digest, counter
//! totals, latency histograms) is a pure function of the
//! [`ReplayConfig`]: same config, same bytes, at *any* decode worker
//! count, which is exactly what the differential test asserts.
//!
//! [`canonical_scenario`] is the scripted sibling: a small fixed cast
//! (two well-behaved clients, one babbler, malformed frames, a device
//! stall, a mid-run connect and a disconnect) whose serve trace is
//! pinned as `tests/goldens/serve.trace`.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use ioguard_hypervisor::driver::RetryPolicy;
use ioguard_hypervisor::hypervisor::{AdmissionGuard, DegradationPolicy};
use ioguard_obs::prom;
use ioguard_obs::{CounterRegistry, Histogram, VmCounters};
use ioguard_sched::{PeriodicServer, SporadicTask, TaskSet};
use ioguard_sim::rng::SplitMix64;
use ioguard_workload::arrivals::{FleetArrivalConfig, FleetArrivals, FleetEvent};

use crate::executor::{Executor, ExecutorStats, Preemptor};
use crate::server::{ServeCluster, ServeConfig, ServeError};
use crate::wire::{self, Request, Response};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

fn fnv_extend(mut state: u64, text: &str) -> u64 {
    for byte in text.bytes() {
        state = (state ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    state
}

/// Memory-bounded accumulator over a response stream: per-kind counts
/// plus a running FNV-1a digest of the canonical renderings. Two runs
/// produced identical response streams iff their folds are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFold {
    counts: Vec<u64>,
    digest: u64,
    total: u64,
}

impl Default for ResponseFold {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseFold {
    /// An empty fold.
    pub fn new() -> Self {
        Self {
            counts: vec![0; Response::KINDS],
            digest: FNV_OFFSET,
            total: 0,
        }
    }

    /// Folds one response.
    pub fn push(&mut self, resp: &Response) {
        let ordinal = usize::from(resp.kind_ordinal());
        if let Some(count) = self.counts.get_mut(ordinal.saturating_sub(1)) {
            *count = count.saturating_add(1);
        }
        self.digest = fnv_extend(self.digest, &format!("{resp}\n"));
        self.total = self.total.saturating_add(1);
    }

    /// Count of responses with the given 1-based kind ordinal.
    pub fn count_of(&self, kind_ordinal: u8) -> u64 {
        self.counts
            .get(usize::from(kind_ordinal).saturating_sub(1))
            .copied()
            .unwrap_or(0)
    }

    /// Order-sensitive digest of every folded response rendering.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Total responses folded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-kind counts indexed by `kind_ordinal - 1`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Configuration of one replay run (the run is a pure function of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Stop emitting once this many requests have been sent.
    pub requests: u64,
    /// Client lifecycle events drawn from [`FleetArrivals`].
    pub events: usize,
    /// Steady-state resident client population the churn aims for.
    pub target_resident: usize,
    /// Serve shards.
    pub shards: usize,
    /// Decode worker threads handed to [`ServeCluster::ingest`].
    pub workers: usize,
    /// Fleet frame (power of two ≥ 512; smaller frames mean denser
    /// request streams since server periods scale with it).
    pub frame: u64,
    /// Slots between consecutive lifecycle events.
    pub event_spacing: u64,
    /// Slots the serve loop keeps running after the last send.
    pub drain_slots: u64,
    /// Snapshot cadence in slots for [`ReplayDriver::run_with`]
    /// (0 disables snapshots).
    pub snapshot_every: u64,
    /// Cooperative-preemption quantum for the executor tasks.
    pub preempt_quantum: u64,
    /// Root seed.
    pub seed: u64,
}

impl ReplayConfig {
    /// Calibrated defaults scaled to `requests`.
    pub fn new(requests: u64) -> Self {
        Self {
            requests,
            events: 600,
            target_resident: 96,
            shards: 4,
            workers: 1,
            frame: 512,
            event_spacing: 4,
            drain_slots: 2048,
            snapshot_every: 0,
            preempt_quantum: 4096,
            seed: 0x5EED,
        }
    }

    fn serve_config(&self) -> ServeConfig {
        let per_shard = (self.target_resident / self.shards.max(1))
            .max(4)
            .saturating_mul(2);
        let mut config = ServeConfig::new(self.shards.max(1), per_shard);
        config.frame = self.frame;
        config.guard = AdmissionGuard {
            window: 64,
            max_submissions: 16,
            throttle_slots: 128,
        };
        config.degradation = DegradationPolicy {
            healthy_slots_to_recover: 64,
        };
        config.backlog_capacity = 32;
        config.max_clients = u32::try_from(self.events).unwrap_or(u32::MAX).max(1);
        config.seed = self.seed;
        config
    }
}

/// Outcome of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests actually emitted (≤ the configured target).
    pub requests_sent: u64,
    /// Virtual slots the serve loop ran.
    pub slots: u64,
    /// The response-stream fold (counts + digest).
    pub fold: ResponseFold,
    /// Total counters across all clients.
    pub counter_totals: VmCounters,
    /// Live per-client counter registry at the end of the run.
    pub counters: CounterRegistry,
    /// End-to-end latency of completed critical requests.
    pub e2e_critical: Histogram,
    /// End-to-end latency of completed best-effort requests.
    pub e2e_best_effort: Histogram,
    /// Largest relative deadline among emitted critical requests — the
    /// structural per-class latency bound completions must respect.
    pub deadline_bound_critical: u64,
    /// Largest relative deadline among emitted best-effort requests.
    pub deadline_bound_best_effort: u64,
    /// Executor accounting.
    pub exec: ExecutorStats,
    /// Cooperative preemptions taken.
    pub preemptions: u64,
    /// Observer-ring overflows (must be 0 for a trustworthy run).
    pub obs_overflows: u64,
    /// Snapshots emitted via [`ReplayDriver::run_with`].
    pub snapshots: u64,
}

struct ReplayShared {
    cluster: ServeCluster,
    pending: Vec<(u32, Bytes)>,
    fold: ResponseFold,
    sent: u64,
    bound_critical: u64,
    bound_best_effort: u64,
    end_slot: Option<u64>,
    finished: bool,
    snapshots: u64,
}

#[derive(Debug, Clone, Copy)]
struct ReleaseKey {
    client: u32,
    period: u64,
    wcet: u64,
    deadline_rel: u64,
    critical: bool,
}

/// The deterministic replay harness (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct ReplayDriver {
    config: ReplayConfig,
}

impl ReplayDriver {
    /// A driver for `config`.
    pub fn new(config: ReplayConfig) -> Self {
        Self { config }
    }

    /// Runs the replay without snapshots.
    pub fn run(&self) -> Result<ReplayReport, ServeError> {
        self.run_with(|_, _, _| {})
    }

    /// Runs the replay, invoking `on_snapshot(slot, prom_text, json)`
    /// every [`ReplayConfig::snapshot_every`] slots.
    pub fn run_with(
        &self,
        on_snapshot: impl FnMut(u64, &str, &str) + 'static,
    ) -> Result<ReplayReport, ServeError> {
        let cfg = self.config;
        let cluster = ServeCluster::new(cfg.serve_config())?;
        let shared = Rc::new(RefCell::new(ReplayShared {
            cluster,
            pending: Vec::new(),
            fold: ResponseFold::new(),
            sent: 0,
            bound_critical: 0,
            bound_best_effort: 0,
            end_slot: None,
            finished: false,
            snapshots: 0,
        }));
        let mut exec = Executor::new();
        let clock = exec.clock();
        let preempt = Preemptor::new(cfg.preempt_quantum.max(1));

        // Task 0: the load generator — lifecycle churn + periodic
        // request emission for every resident client.
        {
            let shared = Rc::clone(&shared);
            let clock = clock.clone();
            let preempt = preempt.clone();
            exec.spawn(async move {
                let stream = FleetArrivals::generate(&FleetArrivalConfig {
                    events: cfg.events,
                    target_resident: cfg.target_resident,
                    frame: cfg.frame,
                    seed: cfg.seed,
                });
                let mut lifecycle: VecDeque<FleetEvent> = stream.events().iter().cloned().collect();
                let mut releases: BTreeMap<u64, Vec<ReleaseKey>> = BTreeMap::new();
                let mix = SplitMix64::new(cfg.seed ^ 0x5EED_CAFE);
                let mut next_event_slot = 1u64;
                let mut task_seq = 0u64;
                loop {
                    let slot = clock.now();
                    // Lifecycle events due this slot.
                    while next_event_slot <= slot {
                        let Some(event) = lifecycle.pop_front() else {
                            break;
                        };
                        let mut state = shared.borrow_mut();
                        match event {
                            FleetEvent::Arrive { vm, server, tasks } => {
                                let client = u32::try_from(vm).unwrap_or(u32::MAX);
                                let resp = state.cluster.connect(client, server, &tasks);
                                let connected = matches!(resp, Response::Connected { .. });
                                state.fold.push(&resp);
                                if connected {
                                    for (idx, task) in tasks.iter().enumerate() {
                                        let tag = (vm << 8) | (idx as u64);
                                        let critical = mix.derive(tag ^ 0xC417) % 10 < 3;
                                        let offset = mix.derive(tag ^ 0x0FF5) % task.period();
                                        let first = slot.saturating_add(1).saturating_add(offset);
                                        releases.entry(first).or_default().push(ReleaseKey {
                                            client,
                                            period: task.period(),
                                            wcet: task.wcet(),
                                            deadline_rel: task.deadline(),
                                            critical,
                                        });
                                    }
                                }
                            }
                            FleetEvent::Depart { vm } => {
                                let client = u32::try_from(vm).unwrap_or(u32::MAX);
                                let resp = state.cluster.disconnect(client);
                                state.fold.push(&resp);
                            }
                        }
                        next_event_slot = next_event_slot.saturating_add(cfg.event_spacing);
                    }
                    // Releases due this slot: coalesce one frame buffer
                    // per client so multi-request frames are exercised.
                    let mut per_client: BTreeMap<u32, BytesMut> = BTreeMap::new();
                    loop {
                        let due = releases
                            .first_key_value()
                            .map(|(&at, _)| at <= slot)
                            .unwrap_or(false);
                        if !due {
                            break;
                        }
                        let Some((_, keys)) = releases.pop_first() else {
                            break;
                        };
                        for key in keys {
                            let (connected, budget_left) = {
                                let state = shared.borrow();
                                (
                                    state.cluster.connected(key.client),
                                    state.sent < cfg.requests,
                                )
                            };
                            if !connected || !budget_left {
                                continue;
                            }
                            task_seq = task_seq.saturating_add(1);
                            let request = Request {
                                client: key.client,
                                task_id: task_seq,
                                wcet: key.wcet,
                                deadline_rel: key.deadline_rel,
                                critical: key.critical,
                                payload: Bytes::copy_from_slice(&task_seq.to_le_bytes()),
                            };
                            let buffer = per_client.entry(key.client).or_default();
                            if wire::encode_request(&request, buffer).is_ok() {
                                let mut state = shared.borrow_mut();
                                state.sent = state.sent.saturating_add(1);
                                if key.critical {
                                    state.bound_critical =
                                        state.bound_critical.max(key.deadline_rel);
                                } else {
                                    state.bound_best_effort =
                                        state.bound_best_effort.max(key.deadline_rel);
                                }
                            }
                            releases
                                .entry(slot.saturating_add(key.period))
                                .or_default()
                                .push(key);
                        }
                    }
                    {
                        let mut state = shared.borrow_mut();
                        for (client, buffer) in per_client {
                            if !buffer.is_empty() {
                                state.pending.push((client, buffer.freeze()));
                            }
                        }
                    }
                    preempt.work(1);
                    preempt.checkpoint().await;
                    let sent = shared.borrow().sent;
                    let exhausted = releases.is_empty() && lifecycle.is_empty();
                    if sent >= cfg.requests || exhausted {
                        shared.borrow_mut().end_slot = Some(slot.saturating_add(cfg.drain_slots));
                        break;
                    }
                    clock.sleep_until(slot.saturating_add(1)).await;
                }
            });
        }

        // Task 1: the serve loop — ingest pending frames, step the
        // cluster, fold every response.
        {
            let shared = Rc::clone(&shared);
            let clock = clock.clone();
            let preempt = preempt.clone();
            exec.spawn(async move {
                loop {
                    let slot = clock.now();
                    let frames: Vec<(u32, Bytes)> = {
                        let mut state = shared.borrow_mut();
                        std::mem::take(&mut state.pending)
                    };
                    {
                        let mut state = shared.borrow_mut();
                        let state = &mut *state;
                        let responses = state.cluster.ingest(&frames, cfg.workers);
                        for resp in &responses {
                            state.fold.push(resp);
                        }
                        let responses = state.cluster.step();
                        for resp in &responses {
                            state.fold.push(resp);
                        }
                    }
                    preempt.work(frames.len().max(1) as u64);
                    preempt.checkpoint().await;
                    let done = {
                        let state = shared.borrow();
                        state.end_slot.map(|end| slot >= end).unwrap_or(false)
                    };
                    if done {
                        shared.borrow_mut().finished = true;
                        break;
                    }
                    clock.sleep_until(slot.saturating_add(1)).await;
                }
            });
        }

        // Task 2: the metrics exporter — periodic Prometheus page +
        // OBS_snapshot.json via the caller's hook.
        if cfg.snapshot_every > 0 {
            let shared = Rc::clone(&shared);
            let clock = clock.clone();
            let mut emit = on_snapshot;
            exec.spawn(async move {
                loop {
                    let slot = clock.now();
                    let wake = slot.saturating_add(cfg.snapshot_every);
                    clock.sleep_until(wake).await;
                    let at = clock.now();
                    if shared.borrow().finished {
                        break;
                    }
                    let (page, json) = {
                        let state = shared.borrow();
                        (
                            serve_prom_page(&state.cluster),
                            serve_snapshot_json(&state.cluster, at),
                        )
                    };
                    emit(at, &page, &json);
                    let mut state = shared.borrow_mut();
                    state.snapshots = state.snapshots.saturating_add(1);
                }
            });
        }

        let exec_stats = exec.run();
        let state = shared.borrow();
        let (e2e_critical, e2e_best_effort) = state.cluster.e2e_histograms();
        Ok(ReplayReport {
            requests_sent: state.sent,
            slots: state.cluster.now(),
            fold: state.fold.clone(),
            counter_totals: state.cluster.counters().totals(),
            counters: state.cluster.counters().clone(),
            e2e_critical,
            e2e_best_effort,
            deadline_bound_critical: state.bound_critical,
            deadline_bound_best_effort: state.bound_best_effort,
            exec: exec_stats,
            preemptions: preempt.preemptions(),
            obs_overflows: state.cluster.obs_overflows(),
            snapshots: state.snapshots,
        })
    }
}

/// Renders the cluster's live scrape page (Prometheus text format).
pub fn serve_prom_page(cluster: &ServeCluster) -> String {
    let (critical, best_effort) = cluster.e2e_histograms();
    prom::render_page(
        cluster.counters(),
        &[
            ("ioguard_e2e_critical_slots", &critical),
            ("ioguard_e2e_best_effort_slots", &best_effort),
        ],
    )
}

/// Renders a periodic `OBS_snapshot.json` document for the cluster.
pub fn serve_snapshot_json(cluster: &ServeCluster, slot: u64) -> String {
    let (critical, best_effort) = cluster.e2e_histograms();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ioguard-serve-obs/v1\",\n");
    out.push_str(&format!("  \"slot\": {slot},\n"));
    out.push_str(&format!(
        "  \"connected_clients\": {},\n",
        cluster.connected_count()
    ));
    out.push_str(&format!(
        "  \"obs_overflows\": {},\n",
        cluster.obs_overflows()
    ));
    out.push_str("  \"counters\": ");
    out.push_str(ioguard_obs::export::counters_json(cluster.counters(), 2).trim_end());
    out.push_str(",\n");
    out.push_str("  \"e2e_critical\": ");
    out.push_str(ioguard_obs::export::hist_json(&critical, 2).trim_end());
    out.push_str(",\n");
    out.push_str("  \"e2e_best_effort\": ");
    out.push_str(ioguard_obs::export::hist_json(&best_effort, 2).trim_end());
    out.push_str("\n}\n");
    out
}

/// Outcome of [`canonical_scenario`]: everything the golden and
/// differential tests compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The serve trace rendering (golden `serve.trace` content).
    pub trace: String,
    /// Live per-client counters at the end.
    pub counters: CounterRegistry,
    /// Response-stream fold.
    pub fold: ResponseFold,
    /// Whether `CounterRegistry::from_events(trace)` reproduced the live
    /// registry (the metrics/trace cross-check).
    pub fold_matches_live: bool,
}

/// The scripted canonical serve scenario: two well-behaved clients, one
/// babbler (throttled + shed), malformed/spoofed frames, a device stall
/// driving watchdog retries into graceful degradation and recovery, a
/// mid-run connect and a disconnect — 200 virtual slots, deterministic
/// at any `workers` count.
pub fn canonical_scenario(workers: usize) -> ScenarioOutcome {
    let mut config = ServeConfig::new(2, 4);
    config.guard = AdmissionGuard {
        window: 32,
        max_submissions: 4,
        throttle_slots: 64,
    };
    config.watchdog = Some(RetryPolicy {
        timeout_slots: 4,
        max_retries: 2,
        backoff_base: 2,
        backoff_cap: 8,
    });
    config.degradation = DegradationPolicy {
        healthy_slots_to_recover: 48,
    };
    config.pool_capacity = 4;
    config.backlog_capacity = 4;
    config.max_clients = 64;
    config.trace_capacity = 1 << 15;
    config.seed = 0xD1CE;
    let cluster = ServeCluster::new(config)
        .unwrap_or_else(|e| panic!("canonical scenario construction: {e}")); // lint: allow(panic-site) — scripted fixture config is statically valid; failing loudly beats a silent empty golden

    let shared = Rc::new(RefCell::new(ScenarioShared {
        cluster,
        pending: Vec::new(),
        fold: ResponseFold::new(),
        shard_of_zero: 0,
        done: false,
    }));
    let mut exec = Executor::new();
    let clock = exec.clock();
    let preempt = Preemptor::new(64);

    // Task 0: the scripted load.
    {
        let shared = Rc::clone(&shared);
        let clock = clock.clone();
        let preempt = preempt.clone();
        exec.spawn(async move {
            for slot in 0..200u64 {
                clock.sleep_until(slot).await;
                script_slot(&shared, slot);
                preempt.work(8);
                preempt.checkpoint().await;
            }
        });
    }
    // Task 1: the serve loop.
    {
        let shared = Rc::clone(&shared);
        let clock = clock.clone();
        let preempt = preempt.clone();
        exec.spawn(async move {
            for slot in 0..=230u64 {
                clock.sleep_until(slot).await;
                {
                    let mut state = shared.borrow_mut();
                    let state = &mut *state;
                    let frames = std::mem::take(&mut state.pending);
                    let responses = state.cluster.ingest(&frames, workers);
                    for resp in &responses {
                        state.fold.push(resp);
                    }
                    let responses = state.cluster.step();
                    for resp in &responses {
                        state.fold.push(resp);
                    }
                }
                preempt.work(4);
                preempt.checkpoint().await;
            }
            shared.borrow_mut().done = true;
        });
    }
    exec.run();

    let state = shared.borrow();
    let trace = state.cluster.sink().render();
    let live = state.cluster.counters().clone();
    let folded = CounterRegistry::from_events(live.vms(), state.cluster.sink().iter());
    ScenarioOutcome {
        trace,
        fold: state.fold.clone(),
        fold_matches_live: folded == live && state.cluster.obs_overflows() == 0,
        counters: live,
    }
}

struct ScenarioShared {
    cluster: ServeCluster,
    pending: Vec<(u32, Bytes)>,
    fold: ResponseFold,
    shard_of_zero: usize,
    done: bool,
}

fn scenario_request(
    client: u32,
    task_id: u64,
    wcet: u64,
    deadline_rel: u64,
    critical: bool,
) -> Bytes {
    let request = Request {
        client,
        task_id,
        wcet,
        deadline_rel,
        critical,
        payload: Bytes::copy_from_slice(&task_id.to_le_bytes()),
    };
    wire::encode_request_frame(&request).unwrap_or_default()
}

fn script_slot(shared: &Rc<RefCell<ScenarioShared>>, slot: u64) {
    let mut state = shared.borrow_mut();
    let state = &mut *state;
    let valid_server = |theta: u64| {
        PeriodicServer::new(256, theta)
            .unwrap_or_else(|_| panic!("scripted server parameters are valid")) // lint: allow(panic-site) — fixed fixture parameters satisfy the server constructor invariants
    };
    let valid_tasks = |wcet: u64| {
        let mut tasks = TaskSet::new();
        if let Ok(task) = SporadicTask::new(2048, wcet, 1024) {
            tasks.push(task);
        }
        tasks
    };
    match slot {
        1 => {
            // The opening cast: two well-behaved clients, a babbler, a
            // Theorem 3 reject and a duplicate connect.
            for (client, theta) in [(0u32, 32u64), (1, 32), (2, 16)] {
                let resp = state
                    .cluster
                    .connect(client, valid_server(theta), &valid_tasks(2));
                if client == 0 {
                    if let Response::Connected { shard, .. } = resp {
                        state.shard_of_zero = shard as usize;
                    }
                }
                state.fold.push(&resp);
            }
            let mut tight = TaskSet::new();
            if let Ok(task) = SporadicTask::new(2048, 64, 64) {
                tight.push(task);
            }
            let resp = state.cluster.connect(3, valid_server(4), &tight);
            state.fold.push(&resp);
            let resp = state.cluster.connect(0, valid_server(32), &valid_tasks(2));
            state.fold.push(&resp);
        }
        20 => {
            // Byte soup from client 0: typed Malformed, no panic.
            state.pending.push((0, Bytes::copy_from_slice(&[0xFF; 10])));
        }
        21 => {
            // A truncated but otherwise valid frame from client 1.
            let frame = scenario_request(1, 900, 1, 16, false);
            state.pending.push((1, frame.slice(..20)));
        }
        22 => {
            // A spoofed client id inside an origin-0 frame.
            state
                .pending
                .push((0, scenario_request(9, 901, 1, 16, false)));
        }
        70 => {
            // Long enough to exhaust the watchdog (timeout 4, 2 retries
            // with backoff) and push the shard into graceful degradation;
            // recovery then brings it back within the scripted window.
            let shard = state.shard_of_zero;
            state.cluster.inject_device_stall(shard, 40);
        }
        90 => {
            let resp = state.cluster.connect(4, valid_server(32), &valid_tasks(2));
            state.fold.push(&resp);
        }
        150 => {
            let resp = state.cluster.disconnect(1);
            state.fold.push(&resp);
        }
        _ => {}
    }
    // Steady request cadence for the well-behaved clients.
    if (4..=140).contains(&slot) && slot % 8 == 4 {
        let seq = slot.saturating_mul(10);
        state
            .pending
            .push((0, scenario_request(0, seq, 1, 16, true)));
        if state.cluster.connected(1) {
            state
                .pending
                .push((1, scenario_request(1, seq.saturating_add(1), 2, 24, false)));
        }
        if state.cluster.connected(4) {
            state
                .pending
                .push((4, scenario_request(4, seq.saturating_add(2), 1, 16, true)));
        }
    }
    // The babble burst: six best-effort requests per slot in one frame.
    if (40..46).contains(&slot) {
        let mut buffer = BytesMut::new();
        for burst in 0..6u64 {
            let task_id = slot.saturating_mul(100).saturating_add(burst);
            let request = Request {
                client: 2,
                task_id,
                wcet: 1,
                deadline_rel: 8,
                critical: false,
                payload: Bytes::copy_from_slice(&task_id.to_le_bytes()),
            };
            let _ = wire::encode_request(&request, &mut buffer);
        }
        state.pending.push((2, buffer.freeze()));
    }
}
