//! `serve-replay` — the deterministic serving replay CLI.
//!
//! Runs a [`ioguard_serve::ReplayDriver`] over a `FleetArrivals` client
//! population on the virtual clock (no wall time anywhere: the run is a
//! pure function of its flags), printing the Prometheus scrape page and
//! a per-kind response summary, and optionally writing a periodic
//! `OBS_snapshot.json` plus the final scrape page under `--out-dir`.
//!
//! ```text
//! serve-replay [--requests N] [--quick] [--shards N] [--workers N]
//!              [--seed HEX] [--snapshot-every SLOTS] [--out-dir DIR]
//! ```

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::path::PathBuf;
use std::process::ExitCode;
use std::rc::Rc;

use ioguard_serve::replay::{ReplayConfig, ReplayDriver};
use ioguard_serve::wire::Response;

#[derive(Debug, Clone)]
struct Cli {
    requests: u64,
    shards: usize,
    workers: usize,
    seed: u64,
    snapshot_every: u64,
    out_dir: Option<PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            requests: 1_000_000,
            shards: 4,
            workers: 1,
            seed: 0x5EED,
            snapshot_every: 0,
            out_dir: None,
        }
    }
}

const USAGE: &str = "usage: serve-replay [--requests N] [--quick] [--shards N] \
[--workers N] [--seed N] [--snapshot-every SLOTS] [--out-dir DIR]";

fn parse_value<T: std::str::FromStr>(value: Option<String>, flag: &str) -> Result<T, String> {
    let text = value.ok_or_else(|| format!("{flag} needs a value"))?;
    text.parse::<T>()
        .map_err(|_| format!("{flag}: cannot parse {text:?}"))
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--requests" => cli.requests = parse_value(args.next(), "--requests")?,
            "--quick" => cli.requests = 100_000,
            "--shards" => cli.shards = parse_value(args.next(), "--shards")?,
            "--workers" => cli.workers = parse_value(args.next(), "--workers")?,
            "--seed" => cli.seed = parse_value(args.next(), "--seed")?,
            "--snapshot-every" => {
                cli.snapshot_every = parse_value(args.next(), "--snapshot-every")?;
            }
            "--out-dir" => {
                cli.out_dir = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--out-dir needs a value".to_string())?,
                ));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = ReplayConfig::new(cli.requests);
    config.shards = cli.shards.max(1);
    config.workers = cli.workers.max(1);
    config.seed = cli.seed;
    config.snapshot_every = cli.snapshot_every;

    if let Some(dir) = &cli.out_dir {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("serve-replay: cannot create {}: {error}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let snapshot_dir = cli.out_dir.clone();
    let last_page: Rc<RefCell<String>> = Rc::new(RefCell::new(String::new()));
    let page_handle = Rc::clone(&last_page);
    let driver = ReplayDriver::new(config);
    let report = match driver.run_with(move |slot, page, json| {
        *page_handle.borrow_mut() = page.to_string();
        if let Some(dir) = &snapshot_dir {
            if let Err(error) = std::fs::write(dir.join("OBS_snapshot.json"), json) {
                eprintln!("serve-replay: snapshot at slot {slot} failed: {error}");
            }
        }
    }) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("serve-replay: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!("serve-replay: deterministic replay summary");
    println!("  requests_sent     {}", report.requests_sent);
    println!("  slots             {}", report.slots);
    println!("  digest            {:#018x}", report.fold.digest());
    println!("  responses         {}", report.fold.total());
    for (index, &count) in report.fold.counts().iter().enumerate() {
        if count == 0 {
            continue;
        }
        let ordinal = u8::try_from(index.saturating_add(1)).unwrap_or(u8::MAX);
        println!("    {:<16} {count}", Response::kind_label(ordinal));
    }
    let totals = report.counter_totals;
    println!("  completed         {}", totals.completed);
    println!("  missed            {}", totals.missed);
    println!("  critical_missed   {}", totals.critical_missed);
    println!("  shed_best_effort  {}", totals.dropped_best_effort);
    println!("  throttled_submit  {}", totals.throttled_submissions);
    for (label, hist, bound) in [
        (
            "critical",
            &report.e2e_critical,
            report.deadline_bound_critical,
        ),
        (
            "best_effort",
            &report.e2e_best_effort,
            report.deadline_bound_best_effort,
        ),
    ] {
        println!(
            "  e2e_{label}: count={} p50={} p95={} p99={} max={} bound={bound}",
            hist.count(),
            hist.percentile(0.50).unwrap_or(0),
            hist.percentile(0.95).unwrap_or(0),
            hist.percentile(0.99).unwrap_or(0),
            hist.max().unwrap_or(0),
        );
    }
    println!("  obs_overflows     {}", report.obs_overflows);
    println!("  preemptions       {}", report.preemptions);
    println!("  snapshots         {}", report.snapshots);
    println!(
        "  exec: polls={} rounds={} stalled={}",
        report.exec.polls, report.exec.rounds, report.exec.stalled
    );

    if let Some(dir) = &cli.out_dir {
        let page = last_page.borrow();
        let body = if page.is_empty() {
            // No snapshot fired (snapshot_every 0): render the end-state
            // page from the counters the report carries.
            ioguard_obs::prom::render_page(
                &report.counters,
                &[
                    ("ioguard_e2e_critical_slots", &report.e2e_critical),
                    ("ioguard_e2e_best_effort_slots", &report.e2e_best_effort),
                ],
            )
        } else {
            page.clone()
        };
        if let Err(error) = std::fs::write(dir.join("serve_metrics.prom"), body) {
            eprintln!("serve-replay: writing scrape page failed: {error}");
            return ExitCode::FAILURE;
        }
    }

    if report.exec.stalled > 0 {
        eprintln!(
            "serve-replay: executor stalled with {} tasks",
            report.exec.stalled
        );
        return ExitCode::FAILURE;
    }
    if report.obs_overflows > 0 {
        eprintln!(
            "serve-replay: observer ring overflowed {} times",
            report.obs_overflows
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
