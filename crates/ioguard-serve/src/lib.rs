//! # ioguard-serve — async serving front-end for the I/O-GUARD stack
//!
//! Everything else in this workspace is batch trials: build a scenario,
//! run it, inspect the trace. This crate is the **online** posture the
//! ROADMAP north-star asks for — a long-running front-end that ingests a
//! live stream of I/O requests from external clients, routes each one
//! through the paper's admission machinery ([`ioguard_fleet::Shard`]
//! ledger admission for connections, the hypervisor
//! [`ioguard_hypervisor::AdmissionGuard`] for per-request rate policing),
//! dispatches on the σ*-driven hypervisor, and streams typed responses
//! back — completions with end-to-end latency, deadline misses, throttle
//! verdicts, load shedding, and graceful-degradation mode changes.
//!
//! The crate is deliberately **deterministic end to end**:
//!
//! - [`executor`] is a cooperative-preemption async engine with a
//!   *virtual clock* — tasks yield at await points, timers advance the
//!   clock to the next armed slot, and the poll order is a pure function
//!   of spawn order. No wall clock, no OS threads in the serve loop.
//! - [`wire`] decodes requests **zero-copy** over the vendored `bytes`
//!   crate: payloads are sub-views of the ingress buffer, never copied,
//!   and malformed frames return typed errors without consuming bytes.
//! - [`server`] applies backpressure with *bounded* per-client queues
//!   (lint-clean under the `unbounded-spillover` rule) and surfaces
//!   every dropped or refused request as a typed response.
//! - [`replay`] is the test harness headline: a virtual-clock
//!   [`replay::ReplayDriver`] feeds synthesized arrival traces (reusing
//!   [`ioguard_workload::arrivals::FleetArrivals`]) at millions of
//!   requests per run, and the observable outcome — trace bytes and
//!   counter folds — is bit-identical at any decode worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod replay;
pub mod server;
pub mod wire;

pub use executor::{Executor, ExecutorStats, Preemptor, VirtualClock};
pub use replay::{ReplayConfig, ReplayDriver, ReplayReport};
pub use server::{ServeCluster, ServeConfig, ServeError};
pub use wire::{RejectReason, Request, Response, WireError};
