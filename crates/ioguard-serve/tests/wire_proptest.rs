//! Property tests for the serving wire codec (ISSUE 10 satellite):
//! encode/decode round trips for every request and response shape, plus
//! byte-soup fuzzing proving the decoder returns **typed** errors —
//! never panics, never consumes a partial frame.

use bytes::{Buf, Bytes, BytesMut};
use ioguard_serve::wire::{
    decode_request, decode_response, decode_stream, encode_request, encode_request_frame,
    encode_response, RejectReason, Request, Response, WireError, MAX_PAYLOAD,
};
use proptest::prelude::*;

/// A strategy over valid requests: `wcet ≥ 1`, `deadline_rel ≥ wcet`,
/// payload within the frame cap.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u32>(),
        any::<u64>(),
        1..=u64::MAX / 2,
        0..=u64::MAX / 2,
        proptest::collection::vec(any::<u8>(), 0..256),
        any::<bool>(),
    )
        .prop_map(
            |(client, task_id, wcet, slack, payload, critical)| Request {
                client,
                task_id,
                wcet,
                deadline_rel: wcet.saturating_add(slack),
                critical,
                payload: Bytes::from(payload),
            },
        )
}

fn arb_reason() -> impl Strategy<Value = RejectReason> {
    prop_oneof![
        Just(RejectReason::Malformed),
        Just(RejectReason::NotSchedulable),
        Just(RejectReason::NoCapacity),
        Just(RejectReason::PoolFull),
        Just(RejectReason::Degraded),
        Just(RejectReason::UnknownClient),
        Just(RejectReason::AlreadyConnected),
        Just(RejectReason::NotConnected),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let client = any::<u32>;
    prop_oneof![
        (client(), any::<u32>()).prop_map(|(client, shard)| Response::Connected { client, shard }),
        (client(), arb_reason())
            .prop_map(|(client, reason)| Response::ConnectRejected { client, reason }),
        client().prop_map(|client| Response::Disconnected { client }),
        (client(), any::<u64>())
            .prop_map(|(client, task_id)| Response::Accepted { client, task_id }),
        (client(), any::<u64>(), any::<u64>()).prop_map(|(client, task_id, latency)| {
            Response::Completed {
                client,
                task_id,
                latency,
            }
        }),
        (client(), any::<u64>(), any::<bool>()).prop_map(|(client, task_id, critical)| {
            Response::Missed {
                client,
                task_id,
                critical,
            }
        }),
        (client(), any::<u64>(), arb_reason()).prop_map(|(client, task_id, reason)| {
            Response::Rejected {
                client,
                task_id,
                reason,
            }
        }),
        (client(), any::<u64>(), any::<u64>()).prop_map(|(client, task_id, until)| {
            Response::Throttled {
                client,
                task_id,
                until,
            }
        }),
        (client(), any::<u64>()).prop_map(|(client, task_id)| Response::Shed { client, task_id }),
        (client(), any::<u32>(), 0u32..3).prop_map(|(client, shard, mode)| Response::ModeChange {
            client,
            shard,
            mode,
        }),
    ]
}

proptest! {
    /// decode(encode(req)) == req, and the frame is consumed exactly.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let frame = encode_request_frame(&req).expect("valid request encodes");
        let mut buf = frame;
        let back = decode_request(&mut buf).expect("own frame decodes");
        prop_assert_eq!(back, req);
        prop_assert_eq!(buf.remaining(), 0, "no trailing bytes may survive");
    }

    /// A concatenation of valid frames decodes back to the same request
    /// sequence with no error and nothing left over.
    #[test]
    fn request_streams_round_trip(reqs in proptest::collection::vec(arb_request(), 0..12)) {
        let mut wire = BytesMut::new();
        for req in &reqs {
            encode_request(req, &mut wire).expect("valid request encodes");
        }
        let mut buf = wire.freeze();
        let (decoded, error) = decode_stream(&mut buf);
        prop_assert!(error.is_none(), "well-formed stream raised {error:?}");
        prop_assert_eq!(decoded, reqs);
        prop_assert_eq!(buf.remaining(), 0);
    }

    /// Arbitrary byte soup: the decoder returns `Ok` or a typed
    /// [`WireError`] — it never panics, and on error it consumes
    /// nothing (no partial frame reads).
    #[test]
    fn byte_soup_yields_typed_errors(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Bytes::from(bytes.clone());
        let before = buf.remaining();
        match decode_request(&mut buf) {
            Ok(req) => {
                // A lucky valid frame must re-encode to the bytes read.
                let echo = encode_request_frame(&req).expect("decoded request re-encodes");
                prop_assert_eq!(echo.as_ref(), &bytes[..before - buf.remaining()]);
            }
            Err(error) => {
                prop_assert_eq!(buf.remaining(), before, "failed decode consumed bytes");
                prop_assert!(error.ordinal() >= 1, "error carries a stable ordinal");
            }
        }
    }

    /// Every truncation of a valid frame fails with `Truncated` and
    /// leaves the buffer untouched, so a caller can wait for more bytes.
    #[test]
    fn truncations_are_typed_and_transactional(req in arb_request(), cut in any::<u16>()) {
        let frame = encode_request_frame(&req).expect("valid request encodes");
        let len = frame.remaining();
        let cut = usize::from(cut) % len.max(1);
        let mut buf = frame.slice(..cut);
        match decode_request(&mut buf) {
            Err(WireError::Truncated { need, have }) => {
                prop_assert!(need > have, "truncated error must ask for more bytes");
                prop_assert_eq!(buf.remaining(), cut, "failed decode consumed bytes");
            }
            other => prop_assert!(false, "cut at {cut}/{len} gave {other:?}"),
        }
    }

    /// Response frames round-trip for every kind.
    #[test]
    fn response_round_trips(resp in arb_response()) {
        let mut wire = BytesMut::new();
        encode_response(&resp, &mut wire);
        let mut buf = wire.freeze();
        let back = decode_response(&mut buf).expect("own frame decodes");
        prop_assert_eq!(back, resp);
        prop_assert_eq!(buf.remaining(), 0);
    }

    /// Oversized payloads are refused at encode time with a typed error
    /// (the frame cap is what bounds per-request memory).
    #[test]
    fn oversized_payloads_are_refused(extra in 1usize..64) {
        let req = Request {
            client: 1,
            task_id: 2,
            wcet: 1,
            deadline_rel: 8,
            critical: false,
            payload: Bytes::from(vec![0u8; MAX_PAYLOAD + extra]),
        };
        let mut out = BytesMut::new();
        match encode_request(&req, &mut out) {
            Err(WireError::PayloadTooLong { len }) => prop_assert_eq!(len, MAX_PAYLOAD + extra),
            other => prop_assert!(false, "expected PayloadTooLong, got {other:?}"),
        }
        prop_assert!(out.is_empty(), "refused encode must write nothing");
    }

    /// `decode_stream` over soup never loses the valid prefix: frames
    /// before the corruption point all come back, and the typed error
    /// describes the first bad frame.
    #[test]
    fn stream_decode_keeps_valid_prefix(
        reqs in proptest::collection::vec(arb_request(), 1..6),
        soup in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut wire = BytesMut::new();
        for req in &reqs {
            encode_request(req, &mut wire).expect("valid request encodes");
        }
        wire.put_slice_test(&soup);
        let mut buf = wire.freeze();
        let (decoded, _error) = decode_stream(&mut buf);
        prop_assert!(decoded.len() >= reqs.len(), "valid prefix frames were lost");
        for (got, want) in decoded.iter().zip(&reqs) {
            prop_assert_eq!(got, want);
        }
    }
}

/// Tiny extension so the test can append soup without importing BufMut
/// under a name that collides with the prelude.
trait PutSlice {
    fn put_slice_test(&mut self, data: &[u8]);
}

impl PutSlice for BytesMut {
    fn put_slice_test(&mut self, data: &[u8]) {
        use bytes::BufMut as _;
        self.put_slice(data);
    }
}
