//! Transactional online reconfiguration for the I/O-GUARD stack.
//!
//! The paper's admission story is static: σ\*, the G-Sched servers and
//! the per-VM task sets are verified once (Theorems 1–4) and then run
//! forever. This crate makes that story *live* without giving up the
//! guarantee: a new configuration is built **beside** the running system
//! as a [`StagedConfig`], pushed through the exact same admission
//! pipeline offline, and only a proof-carrying [`VerifiedConfig`] can be
//! committed — at a hyperperiod boundary of the old σ\*, after a bounded,
//! traced drain of the R-channel pools, with every in-flight transaction
//! carried into the new epoch exactly once. Anything that goes wrong at
//! any point rolls back to the old configuration.
//!
//! * [`staged`] — candidate construction, the typed [`RejectReason`]
//!   taxonomy, and offline (full or incremental) verification.
//! * [`protocol`] — the [`ReconfigController`] state machine:
//!   stage → verify → commit → drain → switch, epoch ledger, and the
//!   work-conservation accounting that backs the exactly-once property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod staged;

pub use protocol::{EpochRecord, ReconfigController, ReconfigPhase, ReconfigTotals};
pub use staged::{RejectReason, StagedConfig, VerifiedConfig};
