//! Staged configurations and the offline admission pipeline.
//!
//! A [`StagedConfig`] is a complete description of a candidate system —
//! VM population, per-VM servers and declared task sets, pre-defined
//! P-channel load, pool capacity and the robustness knobs — built *beside*
//! the running hypervisor. It becomes committable only by passing
//! [`StagedConfig::verify`]: the static well-formedness checks plus the
//! exact Theorem 1/3 schedulability tests. Verification is proof-carrying:
//! the only way to obtain a [`VerifiedConfig`] (the type the commit path
//! accepts) is through the pipeline, so an unverified candidate cannot
//! reach the live system by construction. Rejection is the default — a
//! failed stage yields a typed [`RejectReason`] and the old configuration
//! keeps running untouched.

use serde::{Deserialize, Serialize};

use ioguard_hypervisor::driver::RetryPolicy;
use ioguard_hypervisor::error::HvError;
use ioguard_hypervisor::gsched::GschedPolicy;
use ioguard_hypervisor::hypervisor::{
    AdmissionGuard, DegradationPolicy, HypervisorParams, DEFAULT_POOL_CAPACITY,
};
use ioguard_hypervisor::pchannel::PredefinedTask;
use ioguard_hypervisor::Hypervisor;
use ioguard_sched::analysis::{TwoLayerAnalysis, TwoLayerVerdict};
use ioguard_sched::task::{PeriodicServer, TaskSet};
use ioguard_sched::verify::{IncrementalVerifier, ReverifyStats};
use ioguard_sched::SchedError;

/// Why a staged configuration was rejected (or an in-flight commit
/// aborted). Every variant carries enough to act on; [`Self::ordinal`] is
/// the stable code carried in `ReconfigAbort` trace events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejectReason {
    /// The candidate has no VMs.
    EmptyPopulation,
    /// The candidate's pool capacity is zero.
    ZeroPoolCapacity,
    /// VM count, server count and task-set count disagree.
    PopulationMismatch {
        /// Declared VM count.
        vms: usize,
        /// Number of periodic servers.
        servers: usize,
        /// Number of per-VM task sets.
        task_sets: usize,
    },
    /// The pre-defined tasks do not fit a feasible σ\*.
    InfeasibleTable {
        /// Constructor diagnostic.
        reason: String,
    },
    /// The schedulability analysis itself could not run.
    Analysis(SchedError),
    /// The exact tests ran and the candidate is not schedulable.
    Unschedulable {
        /// True when Theorem 1 (the global layer) passed.
        global_ok: bool,
        /// VMs failing their Theorem 3 test.
        failing_vms: Vec<usize>,
    },
    /// The quiesce window to the next hyperperiod boundary exceeds the
    /// drain latency budget.
    DrainBudgetExceeded {
        /// Slots from commit acceptance to the boundary.
        needed: u64,
        /// Configured bound.
        budget: u64,
    },
    /// A commit is already draining; back-to-back flips must wait.
    SwitchPending,
    /// No verified stage is held (commit without a successful stage).
    NothingStaged,
    /// The old system left [`ioguard_hypervisor::hypervisor::HvMode::Normal`]
    /// during the drain (device fault mid-quiesce): the switch is aborted
    /// and the old configuration keeps running.
    DegradedAtBoundary,
    /// Building the successor hypervisor failed at the switch point.
    Activation(HvError),
    /// The operator rolled back an in-flight stage or commit explicitly.
    Cancelled,
}

impl RejectReason {
    /// Stable ordinal carried in `ReconfigAbort` events' `arg` field.
    pub fn ordinal(&self) -> u64 {
        match self {
            RejectReason::EmptyPopulation => 0,
            RejectReason::ZeroPoolCapacity => 1,
            RejectReason::PopulationMismatch { .. } => 2,
            RejectReason::InfeasibleTable { .. } => 3,
            RejectReason::Analysis(_) => 4,
            RejectReason::Unschedulable { .. } => 5,
            RejectReason::DrainBudgetExceeded { .. } => 6,
            RejectReason::SwitchPending => 7,
            RejectReason::NothingStaged => 8,
            RejectReason::DegradedAtBoundary => 9,
            RejectReason::Activation(_) => 10,
            RejectReason::Cancelled => 11,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::EmptyPopulation => write!(f, "candidate has no VMs"),
            RejectReason::ZeroPoolCapacity => write!(f, "pool capacity must be positive"),
            RejectReason::PopulationMismatch {
                vms,
                servers,
                task_sets,
            } => write!(
                f,
                "population mismatch: {vms} VMs, {servers} servers, {task_sets} task sets"
            ),
            RejectReason::InfeasibleTable { reason } => {
                write!(f, "infeasible time slot table: {reason}")
            }
            RejectReason::Analysis(e) => write!(f, "schedulability analysis failed: {e}"),
            RejectReason::Unschedulable {
                global_ok,
                failing_vms,
            } => write!(
                f,
                "candidate unschedulable (global ok: {global_ok}, failing VMs: {failing_vms:?})"
            ),
            RejectReason::DrainBudgetExceeded { needed, budget } => write!(
                f,
                "drain needs {needed} slots to the boundary, budget is {budget}"
            ),
            RejectReason::SwitchPending => write!(f, "a commit is already draining"),
            RejectReason::NothingStaged => write!(f, "no verified stage held"),
            RejectReason::DegradedAtBoundary => {
                write!(f, "old system degraded during the drain; switch aborted")
            }
            RejectReason::Activation(e) => write!(f, "successor activation failed: {e}"),
            RejectReason::Cancelled => write!(f, "rolled back by explicit abort"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// A complete candidate configuration, constructed beside the live system.
///
/// The G-Sched policy of a reconfig-managed system is always
/// [`GschedPolicy::GuardedEdf`] over [`Self::servers`] — the budget-guarded
/// variant is the one whose isolation the chaos battery proves, and using
/// the same server vector for the policy and the analysis means the
/// schedulability proof talks about exactly the parameters that run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedConfig {
    /// Per-VM periodic servers `Γ_i = (Π_i, Θ_i)` — one per VM, used both
    /// as the GuardedEdf budgets and as Theorem 1/3 input.
    pub servers: Vec<PeriodicServer>,
    /// Per-VM declared sporadic workloads (Theorem 3 input).
    pub task_sets: Vec<TaskSet>,
    /// Pre-defined P-channel load (σ\* is built from this).
    pub predefined: Vec<PredefinedTask>,
    /// Hardware queue capacity of each I/O pool.
    pub pool_capacity: usize,
    /// Maximum σ\* hyper-period the banks can hold.
    pub max_table_len: u64,
    /// Optional per-transaction watchdog.
    pub watchdog: Option<RetryPolicy>,
    /// Graceful-degradation tuning.
    pub degradation: DegradationPolicy,
    /// Optional submission flood control.
    pub admission_guard: Option<AdmissionGuard>,
}

impl StagedConfig {
    /// A minimal candidate: the given servers and task sets, no P-channel
    /// load, default capacity and robustness knobs.
    pub fn new(servers: Vec<PeriodicServer>, task_sets: Vec<TaskSet>) -> Self {
        Self {
            servers,
            task_sets,
            predefined: Vec::new(),
            pool_capacity: DEFAULT_POOL_CAPACITY,
            max_table_len: 1 << 22,
            watchdog: None,
            degradation: DegradationPolicy::default(),
            admission_guard: None,
        }
    }

    /// Declared VM count (one server per VM).
    pub fn vm_count(&self) -> usize {
        self.servers.len()
    }

    /// The construction parameters this candidate activates with.
    pub fn params(&self) -> HypervisorParams {
        HypervisorParams {
            vms: self.servers.len(),
            pool_capacity: self.pool_capacity,
            policy: GschedPolicy::GuardedEdf(self.servers.clone()),
            predefined: self.predefined.clone(),
            max_table_len: self.max_table_len,
            reclaim: None,
            watchdog: self.watchdog,
            degradation: self.degradation,
            admission_guard: self.admission_guard,
        }
    }

    /// Runs the full offline admission pipeline from scratch: static
    /// well-formedness, σ\* construction, then the exact Theorem 1/3
    /// tests. See [`Self::verify_incremental`] for the cached path.
    ///
    /// # Errors
    ///
    /// A typed [`RejectReason`]; the candidate never touches the live
    /// system either way.
    pub fn verify(&self) -> Result<VerifiedConfig, RejectReason> {
        let analysis = self.static_checks()?;
        let verdict = match analysis.schedulable() {
            Ok(v) => v,
            Err(e) => return Err(RejectReason::Analysis(e)),
        };
        self.finish_verify(analysis, verdict, ReverifyStats::default())
    }

    /// The admission pipeline with the incremental Theorem 1/3 path: tests
    /// whose inputs match `verifier`'s cached configuration are reused
    /// instead of recomputed. The verdict is identical to [`Self::verify`]
    /// (proven differentially in the sched crate); the stats say how much
    /// work was saved.
    ///
    /// # Errors
    ///
    /// A typed [`RejectReason`], exactly as [`Self::verify`].
    pub fn verify_incremental(
        &self,
        verifier: &mut IncrementalVerifier,
    ) -> Result<VerifiedConfig, RejectReason> {
        let analysis = self.static_checks()?;
        let outcome = match verifier.reverify(&analysis) {
            Ok(o) => o,
            Err(e) => return Err(RejectReason::Analysis(e)),
        };
        self.finish_verify(analysis, outcome.verdict, outcome.stats)
    }

    /// Static (non-schedulability) checks, returning the analysis model.
    fn static_checks(&self) -> Result<TwoLayerAnalysis, RejectReason> {
        if self.servers.is_empty() {
            return Err(RejectReason::EmptyPopulation);
        }
        if self.pool_capacity == 0 {
            return Err(RejectReason::ZeroPoolCapacity);
        }
        if self.servers.len() != self.task_sets.len() {
            return Err(RejectReason::PopulationMismatch {
                vms: self.servers.len(),
                servers: self.servers.len(),
                task_sets: self.task_sets.len(),
            });
        }
        // Build σ* offline exactly the way activation will, so a table
        // that cannot be constructed is rejected here, not at the switch.
        let probe = Hypervisor::new(self.params());
        let table = match probe {
            Ok(hv) => hv.pchannel().table().clone(),
            Err(e) => {
                return Err(RejectReason::InfeasibleTable {
                    reason: e.to_string(),
                })
            }
        };
        match TwoLayerAnalysis::new(table, self.servers.clone(), self.task_sets.clone()) {
            Ok(a) => Ok(a),
            Err(e) => Err(RejectReason::Analysis(e)),
        }
    }

    fn finish_verify(
        &self,
        analysis: TwoLayerAnalysis,
        verdict: TwoLayerVerdict,
        stats: ReverifyStats,
    ) -> Result<VerifiedConfig, RejectReason> {
        if !verdict.is_schedulable() {
            return Err(RejectReason::Unschedulable {
                global_ok: verdict.global.is_schedulable(),
                failing_vms: verdict.failing_vms(),
            });
        }
        Ok(VerifiedConfig {
            config: self.clone(),
            analysis,
            verdict,
            stats,
        })
    }
}

/// A candidate that passed the full admission pipeline — the only type the
/// commit path accepts. Carries the proof (analysis model and verdict)
/// alongside the configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedConfig {
    pub(crate) config: StagedConfig,
    pub(crate) analysis: TwoLayerAnalysis,
    pub(crate) verdict: TwoLayerVerdict,
    pub(crate) stats: ReverifyStats,
}

impl VerifiedConfig {
    /// The verified candidate.
    pub fn config(&self) -> &StagedConfig {
        &self.config
    }

    /// The analysis model the verdict was proven against.
    pub fn analysis(&self) -> &TwoLayerAnalysis {
        &self.analysis
    }

    /// The proven (schedulable) two-layer verdict.
    pub fn verdict(&self) -> &TwoLayerVerdict {
        &self.verdict
    }

    /// How much of the pipeline was reused from the incremental cache
    /// (all-zero for the from-scratch path).
    pub fn stats(&self) -> ReverifyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioguard_sched::task::SporadicTask;

    fn task(t: u64, c: u64, d: u64) -> SporadicTask {
        SporadicTask::new(t, c, d).unwrap()
    }

    pub(crate) fn light_config() -> StagedConfig {
        StagedConfig::new(
            vec![
                PeriodicServer::new(5, 2).unwrap(),
                PeriodicServer::new(10, 3).unwrap(),
            ],
            vec![vec![task(20, 2, 10)].into(), vec![task(40, 4, 30)].into()],
        )
    }

    #[test]
    fn light_config_verifies() {
        let v = light_config().verify().unwrap();
        assert!(v.verdict().is_schedulable());
        assert_eq!(v.config().vm_count(), 2);
        assert_eq!(v.stats(), ReverifyStats::default());
    }

    #[test]
    fn empty_population_rejected() {
        let c = StagedConfig::new(vec![], vec![]);
        assert_eq!(c.verify().unwrap_err(), RejectReason::EmptyPopulation);
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut c = light_config();
        c.pool_capacity = 0;
        assert_eq!(c.verify().unwrap_err(), RejectReason::ZeroPoolCapacity);
    }

    #[test]
    fn population_mismatch_rejected() {
        let mut c = light_config();
        c.task_sets.pop();
        assert!(matches!(
            c.verify().unwrap_err(),
            RejectReason::PopulationMismatch {
                vms: 2,
                servers: 2,
                task_sets: 1
            }
        ));
    }

    #[test]
    fn overloaded_vm_rejected_with_failing_set() {
        let mut c = light_config();
        c.task_sets = vec![
            vec![task(20, 2, 10)].into(),
            vec![task(10, 9, 10)].into(), // utilization 0.9 ≫ server 0.3
        ];
        match c.verify().unwrap_err() {
            RejectReason::Unschedulable {
                global_ok,
                failing_vms,
            } => {
                assert!(global_ok);
                assert_eq!(failing_vms, vec![1]);
            }
            other => panic!("expected Unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_table_rejected() {
        let mut c = light_config();
        c.predefined = vec![PredefinedTask {
            task_id: 1,
            vm: 0,
            task: SporadicTask::implicit(7, 3).unwrap(),
            response_bytes: 64,
            start_offset: 0,
        }];
        c.max_table_len = 3; // hyper-period 7 > 3
        assert!(matches!(
            c.verify().unwrap_err(),
            RejectReason::InfeasibleTable { .. }
        ));
    }

    #[test]
    fn incremental_verify_matches_full() {
        let base = light_config();
        let full = base.verify().unwrap();
        let mut verifier = IncrementalVerifier::new(full.analysis().clone()).unwrap();
        // Change only VM 1's task set.
        let mut next = base.clone();
        next.task_sets = vec![vec![task(20, 2, 10)].into(), vec![task(40, 2, 30)].into()];
        let inc = next.verify_incremental(&mut verifier).unwrap();
        let scratch = next.verify().unwrap();
        assert_eq!(inc.verdict(), scratch.verdict());
        assert!(!inc.stats().global_rerun);
        assert_eq!(inc.stats().vms_rerun, 1);
        assert_eq!(inc.stats().vms_reused, 1);
    }

    #[test]
    fn reject_reason_ordinals_are_stable() {
        assert_eq!(RejectReason::EmptyPopulation.ordinal(), 0);
        assert_eq!(
            RejectReason::DrainBudgetExceeded {
                needed: 9,
                budget: 4
            }
            .ordinal(),
            6
        );
        assert_eq!(RejectReason::DegradedAtBoundary.ordinal(), 9);
        let shown = RejectReason::DrainBudgetExceeded {
            needed: 9,
            budget: 4,
        }
        .to_string();
        assert!(shown.contains("9") && shown.contains("4"), "{shown}");
    }
}
