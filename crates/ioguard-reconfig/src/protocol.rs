//! The transactional mode-change protocol: quiesce, drain, switch,
//! rollback.
//!
//! [`ReconfigController`] wraps the live [`Hypervisor`] and is the *only*
//! path by which its configuration changes:
//!
//! ```text
//!             stage(candidate) ── verify offline ──► staged (committable)
//!                  │ reject: typed reason, old config untouched
//!                  ▼
//!   Running ── commit() ──► Draining ── hyperperiod boundary ──► Switching ──► Running
//!      ▲                        │ drain deadline blown / degraded:            (new epoch)
//!      └────────── abort ◄──────┘ rollback to the old config
//! ```
//!
//! * **Staging** builds and verifies a candidate beside the running system
//!   ([`StagedConfig::verify_incremental`]); an uncommittable stage is
//!   rejected with a typed [`RejectReason`] and nothing else happens.
//! * **Commit** is accepted only if the quiesce window to the next
//!   hyperperiod boundary of the *old* σ\* fits the drain latency budget —
//!   the bound is enforced up front, so an accepted drain can never run
//!   long. The window is traced (`ReconfigDrain`, `arg` = latency).
//! * **Switching** happens exactly at the boundary: the R-channel pools
//!   drain in deterministic order, every in-flight entry is carried into
//!   the successor exactly once (deadlines rebased to the new epoch's
//!   clock), per-VM state for departed VMs is torn down with an explicit
//!   account, and the successor starts with completely fresh per-VM state
//!   (metrics, watchdog, admission windows, GuardedEdf budgets) — VM ids
//!   reused by a later epoch never inherit a predecessor's counters.
//! * **Rollback** is the default: any failure before or at the boundary
//!   (unschedulable stage, blown drain budget, degraded mode at the
//!   switch, successor activation failure) leaves the old configuration
//!   running, observationally identical to never having staged.
//!
//! Reconfiguration events go to a controller-owned [`TraceSink`], *not*
//! the hypervisor's observer — the live system's trace is byte-identical
//! whether or not an aborted reconfiguration was ever attempted, which is
//! exactly the property the proptests pin down.

use serde::{Deserialize, Serialize};

use ioguard_hypervisor::hypervisor::{HvMode, RtJob};
use ioguard_hypervisor::pool::NEVER_DISPATCHED;
use ioguard_hypervisor::{HvError, HvMetrics, Hypervisor};
use ioguard_obs::{ObsKind, TraceSink, SYSTEM_VM};
use ioguard_sched::verify::IncrementalVerifier;

use crate::staged::{RejectReason, StagedConfig, VerifiedConfig};

/// Externally visible phase of the mode-change state machine. `Switching`
/// is internal to a single [`ReconfigController::step`] call at the
/// boundary slot and is never observable from outside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigPhase {
    /// No commit in flight (a verified stage may be held).
    Running,
    /// A commit was accepted; the system quiesces toward the boundary.
    Draining,
}

/// The sealed account of one retired configuration epoch.
#[derive(Debug)]
pub struct EpochRecord {
    /// Epoch number (0 = the initial configuration).
    pub epoch: u64,
    /// Global slot at which this epoch's local clock 0 sat.
    pub base: u64,
    /// Global slot at which the epoch ended (its switch boundary).
    pub end: u64,
    /// VM population of the epoch.
    pub vms: usize,
    /// Entries drained at the boundary and offered to the successor.
    pub carried_out: usize,
    /// Final metrics of the epoch's hypervisor — per-VM counters retire
    /// here instead of leaking into the successor's (possibly reused) VM
    /// ids.
    pub metrics: HvMetrics,
    /// The epoch's observer (trace + histograms), if one was attached.
    pub obs: Option<Box<ioguard_hypervisor::HvObs>>,
}

/// Work-conservation totals across every epoch plus the live system. The
/// exactly-once transition invariant is `conserved()`: each job accepted
/// (or refused-with-accounting) by the controller shows up in exactly one
/// terminal bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReconfigTotals {
    /// Submissions accepted into a pool.
    pub accepted: u64,
    /// Refusals the hypervisor counted as misses (pool overflow;
    /// P-channel-only refusals of critical work).
    pub refused_missed: u64,
    /// Refusals the hypervisor counted as shed best-effort work.
    pub refused_shed: u64,
    /// Refusals with no metric side effect (flood control, unknown VM).
    pub refused_silent: u64,
    /// Jobs completed, summed over retired epochs and the live system.
    pub completed: u64,
    /// Deadline misses, summed the same way.
    pub missed: u64,
    /// Best-effort jobs shed, summed the same way.
    pub shed: u64,
    /// Carried entries torn down because their VM departed.
    pub dropped_departed: u64,
    /// Carried entries lost to successor pool overflow.
    pub restore_overflow: u64,
    /// Entries still buffered in the live pools.
    pub in_flight: u64,
}

impl ReconfigTotals {
    /// True when every accounted submission reached exactly one terminal
    /// bucket — no dropped and no double-dispatched jobs.
    pub fn conserved(&self) -> bool {
        let submitted = self
            .accepted
            .saturating_add(self.refused_missed)
            .saturating_add(self.refused_shed);
        let settled = self
            .completed
            .saturating_add(self.missed)
            .saturating_add(self.shed)
            .saturating_add(self.dropped_departed)
            .saturating_add(self.restore_overflow)
            .saturating_add(self.in_flight);
        submitted == settled
    }
}

/// A committed switch waiting for its boundary (all slots local to the
/// current epoch's clock).
#[derive(Debug)]
struct PendingSwitch {
    stage_id: u64,
    verified: VerifiedConfig,
    accepted_at: u64,
    switch_at: u64,
}

/// The live hypervisor plus the transactional reconfiguration machinery.
#[derive(Debug)]
pub struct ReconfigController {
    hv: Hypervisor,
    config: StagedConfig,
    verifier: IncrementalVerifier,
    drain_budget: u64,
    epoch: u64,
    epoch_base: u64,
    stage_counter: u64,
    staged: Option<(u64, VerifiedConfig)>,
    pending: Option<PendingSwitch>,
    sink: TraceSink,
    retired: Vec<EpochRecord>,
    accepted: u64,
    refused_missed: u64,
    refused_shed: u64,
    refused_silent: u64,
    dropped_departed: Vec<(usize, u64)>,
    restore_overflow: Vec<(usize, u64)>,
    drain_latencies: Vec<u64>,
    obs_capacity: usize,
}

impl ReconfigController {
    /// Verifies `initial` through the full admission pipeline and brings
    /// it up as epoch 0. The `drain_budget` bounds every later quiesce
    /// window (in slots); `sink_capacity` sizes the controller's own
    /// reconfiguration trace.
    ///
    /// # Errors
    ///
    /// A typed [`RejectReason`] when the initial configuration fails
    /// verification or activation; nothing is left running.
    pub fn new(
        initial: StagedConfig,
        drain_budget: u64,
        sink_capacity: usize,
    ) -> Result<Self, RejectReason> {
        let mut sink = TraceSink::new(sink_capacity);
        sink.record(
            0,
            ObsKind::ReconfigStage,
            SYSTEM_VM,
            0,
            initial.vm_count() as u64,
        );
        let verified = match initial.verify() {
            Ok(v) => v,
            Err(reason) => {
                sink.record(0, ObsKind::ReconfigVerify, SYSTEM_VM, 0, 0);
                sink.record(0, ObsKind::ReconfigAbort, SYSTEM_VM, 0, reason.ordinal());
                return Err(reason);
            }
        };
        sink.record(0, ObsKind::ReconfigVerify, SYSTEM_VM, 0, 1);
        let hv = match Hypervisor::new(verified.config.params()) {
            Ok(hv) => hv,
            Err(e) => {
                let reason = RejectReason::Activation(e);
                sink.record(0, ObsKind::ReconfigAbort, SYSTEM_VM, 0, reason.ordinal());
                return Err(reason);
            }
        };
        let verifier = match IncrementalVerifier::new(verified.analysis.clone()) {
            Ok(v) => v,
            Err(e) => return Err(RejectReason::Analysis(e)),
        };
        sink.record(0, ObsKind::ReconfigCommit, SYSTEM_VM, 0, 0);
        Ok(Self {
            hv,
            config: verified.config,
            verifier,
            drain_budget,
            epoch: 0,
            epoch_base: 0,
            stage_counter: 0,
            staged: None,
            pending: None,
            sink,
            retired: Vec::new(),
            accepted: 0,
            refused_missed: 0,
            refused_shed: 0,
            refused_silent: 0,
            dropped_departed: Vec::new(),
            restore_overflow: Vec::new(),
            drain_latencies: Vec::new(),
            obs_capacity: 0,
        })
    }

    /// Attaches an observer of `capacity` events to the live hypervisor
    /// and to every successor epoch's hypervisor at activation.
    pub fn attach_obs(&mut self, capacity: usize) {
        self.obs_capacity = capacity;
        self.hv.attach_obs(capacity);
    }

    /// The live hypervisor (current epoch).
    pub fn hv(&self) -> &Hypervisor {
        &self.hv
    }

    /// Mutable access to the live hypervisor — for fault injection and
    /// direct submission; the configuration itself has no mutable surface
    /// here (that is the staged-commit path's job, and the
    /// `live-config-mutation` lint holds everyone to it).
    pub fn hv_mut(&mut self) -> &mut Hypervisor {
        &mut self.hv
    }

    /// The live configuration.
    pub fn config(&self) -> &StagedConfig {
        &self.config
    }

    /// The controller's reconfiguration trace
    /// (Stage/Verify/Commit/Abort/Drain events).
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Current configuration epoch (0-based).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Global slot: the retired epochs' spans plus the live local clock.
    pub fn now_global(&self) -> u64 {
        self.epoch_base.saturating_add(self.hv.now())
    }

    /// Externally visible phase of the state machine.
    pub fn phase(&self) -> ReconfigPhase {
        if self.pending.is_some() {
            ReconfigPhase::Draining
        } else {
            ReconfigPhase::Running
        }
    }

    /// The drain latency budget (slots).
    pub fn drain_budget(&self) -> u64 {
        self.drain_budget
    }

    /// Sealed records of every retired epoch, oldest first.
    pub fn retired(&self) -> &[EpochRecord] {
        &self.retired
    }

    /// Observed drain latency of every completed switch, in commit order.
    /// Each is `≤` [`Self::drain_budget`] — enforced at commit time.
    pub fn drain_latencies(&self) -> &[u64] {
        &self.drain_latencies
    }

    /// `(vm, task_id)` of carried entries torn down because their VM
    /// departed, across all switches.
    pub fn dropped_departed(&self) -> &[(usize, u64)] {
        &self.dropped_departed
    }

    /// `(vm, task_id)` of carried entries lost to successor pool
    /// overflow, across all switches.
    pub fn restore_overflow(&self) -> &[(usize, u64)] {
        &self.restore_overflow
    }

    /// Stages a candidate configuration: records the attempt, runs the
    /// offline admission pipeline (incrementally against the proven live
    /// configuration), and holds the verified result for [`Self::commit`].
    /// Re-staging before commit replaces the held stage.
    ///
    /// # Errors
    ///
    /// A typed [`RejectReason`]; the live system is untouched and keeps
    /// running its current configuration (rollback is the default).
    pub fn stage(&mut self, candidate: StagedConfig) -> Result<u64, RejectReason> {
        let id = self.stage_counter.saturating_add(1);
        self.stage_counter = id;
        let at = self.now_global();
        self.sink.record(
            at,
            ObsKind::ReconfigStage,
            SYSTEM_VM,
            id,
            candidate.vm_count() as u64,
        );
        if self.pending.is_some() {
            let reason = RejectReason::SwitchPending;
            self.sink
                .record(at, ObsKind::ReconfigAbort, SYSTEM_VM, id, reason.ordinal());
            return Err(reason);
        }
        match candidate.verify_incremental(&mut self.verifier) {
            Ok(verified) => {
                self.sink
                    .record(at, ObsKind::ReconfigVerify, SYSTEM_VM, id, 1);
                self.staged = Some((id, verified));
                Ok(id)
            }
            Err(reason) => {
                self.sink
                    .record(at, ObsKind::ReconfigVerify, SYSTEM_VM, id, 0);
                self.sink
                    .record(at, ObsKind::ReconfigAbort, SYSTEM_VM, id, reason.ordinal());
                Err(reason)
            }
        }
    }

    /// Commits the held verified stage: schedules the switch for the next
    /// hyperperiod boundary of the *old* σ\* and enters `Draining`. The
    /// quiesce window is checked against the drain budget here, up front —
    /// an accepted commit can never drain longer than the bound.
    ///
    /// Returns the global slot of the switch boundary.
    ///
    /// # Errors
    ///
    /// * [`RejectReason::NothingStaged`] without a verified stage.
    /// * [`RejectReason::SwitchPending`] while an earlier commit drains.
    /// * [`RejectReason::DrainBudgetExceeded`] when the boundary is too
    ///   far; the stage is dropped and the old config keeps running.
    pub fn commit(&mut self) -> Result<u64, RejectReason> {
        if self.pending.is_some() {
            return Err(RejectReason::SwitchPending);
        }
        let Some((stage_id, verified)) = self.staged.take() else {
            return Err(RejectReason::NothingStaged);
        };
        let h = self.hv.pchannel().hyper_period().max(1);
        let at_local = self.hv.now();
        let Some(switch_at) = at_local.checked_next_multiple_of(h) else {
            let reason = RejectReason::DrainBudgetExceeded {
                needed: u64::MAX,
                budget: self.drain_budget,
            };
            self.sink.record(
                self.now_global(),
                ObsKind::ReconfigAbort,
                SYSTEM_VM,
                stage_id,
                reason.ordinal(),
            );
            return Err(reason);
        };
        let needed = switch_at.saturating_sub(at_local);
        if needed > self.drain_budget {
            let reason = RejectReason::DrainBudgetExceeded {
                needed,
                budget: self.drain_budget,
            };
            self.sink.record(
                self.now_global(),
                ObsKind::ReconfigAbort,
                SYSTEM_VM,
                stage_id,
                reason.ordinal(),
            );
            return Err(reason);
        }
        let at_global = self.epoch_base.saturating_add(switch_at);
        self.sink.record(
            self.now_global(),
            ObsKind::ReconfigCommit,
            SYSTEM_VM,
            stage_id,
            at_global,
        );
        self.pending = Some(PendingSwitch {
            stage_id,
            verified,
            accepted_at: at_local,
            switch_at,
        });
        Ok(at_global)
    }

    /// Drops any held stage and any draining commit, rolling back to the
    /// current configuration. Returns `true` when something was dropped.
    pub fn abort(&mut self) -> bool {
        let at = self.now_global();
        let mut dropped = false;
        if let Some((id, _)) = self.staged.take() {
            self.sink.record(
                at,
                ObsKind::ReconfigAbort,
                SYSTEM_VM,
                id,
                RejectReason::Cancelled.ordinal(),
            );
            dropped = true;
        }
        if let Some(p) = self.pending.take() {
            self.sink.record(
                at,
                ObsKind::ReconfigAbort,
                SYSTEM_VM,
                p.stage_id,
                RejectReason::Cancelled.ordinal(),
            );
            dropped = true;
        }
        dropped
    }

    /// Submits a run-time job to the live epoch: released now, with a
    /// deadline `rel_deadline` slots out. Every outcome is accounted so
    /// the conservation invariant ([`ReconfigTotals::conserved`]) can be
    /// checked across mode changes.
    ///
    /// # Errors
    ///
    /// Propagates the hypervisor's typed refusals untouched.
    pub fn submit(
        &mut self,
        vm: usize,
        task_id: u64,
        wcet: u64,
        rel_deadline: u64,
        critical: bool,
    ) -> Result<(), HvError> {
        let at_local = self.hv.now();
        let job = RtJob {
            vm,
            task_id,
            release: at_local,
            wcet,
            deadline: at_local.saturating_add(rel_deadline),
            critical,
        };
        let result = self.hv.submit(job);
        match &result {
            Ok(()) => self.accepted = self.accepted.saturating_add(1),
            Err(HvError::PoolFull { .. }) => {
                self.refused_missed = self.refused_missed.saturating_add(1);
            }
            Err(HvError::DegradedMode) => {
                if self.hv.mode() == HvMode::PchannelOnly && critical {
                    self.refused_missed = self.refused_missed.saturating_add(1);
                } else {
                    self.refused_shed = self.refused_shed.saturating_add(1);
                }
            }
            Err(_) => self.refused_silent = self.refused_silent.saturating_add(1),
        }
        result
    }

    /// Advances one slot. At the boundary of a draining commit the switch
    /// runs first (drain → carry → activate), so the new epoch's slot 0
    /// is executed by the new configuration.
    pub fn step(&mut self) {
        if self
            .pending
            .as_ref()
            .is_some_and(|p| self.hv.now() >= p.switch_at)
        {
            if let Some(p) = self.pending.take() {
                self.perform_switch(p);
            }
        }
        self.hv.step();
    }

    /// Runs `slots` consecutive slots.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Work-conservation totals across retired epochs and the live system.
    pub fn totals(&self) -> ReconfigTotals {
        let mut completed = self.hv.metrics().completed;
        let mut missed = self.hv.metrics().missed;
        let mut shed = self.hv.metrics().dropped_best_effort;
        for r in &self.retired {
            completed = completed.saturating_add(r.metrics.completed);
            missed = missed.saturating_add(r.metrics.missed);
            shed = shed.saturating_add(r.metrics.dropped_best_effort);
        }
        let in_flight = self
            .hv
            .pools()
            .iter()
            .map(|p| p.len() as u64)
            .fold(0u64, u64::saturating_add);
        ReconfigTotals {
            accepted: self.accepted,
            refused_missed: self.refused_missed,
            refused_shed: self.refused_shed,
            refused_silent: self.refused_silent,
            completed,
            missed,
            shed,
            dropped_departed: self.dropped_departed.len() as u64,
            restore_overflow: self.restore_overflow.len() as u64,
            in_flight,
        }
    }

    /// The switch itself: runs at the boundary slot, before the slot
    /// executes. Any failure aborts back to the old configuration with
    /// zero observable effect on it.
    fn perform_switch(&mut self, p: PendingSwitch) {
        let at_global = self.now_global();
        // Mid-drain faults: if the old system left Normal mode during the
        // quiesce window, switching under degradation would launder the
        // fault into a fresh epoch — abort instead, old config keeps
        // running, and the operator can re-stage once recovered.
        if self.hv.mode() != HvMode::Normal {
            self.sink.record(
                at_global,
                ObsKind::ReconfigAbort,
                SYSTEM_VM,
                p.stage_id,
                RejectReason::DegradedAtBoundary.ordinal(),
            );
            return;
        }
        // Activate the successor *before* draining so an activation
        // failure leaves the old pools untouched (rollback-safe order).
        let mut next = match Hypervisor::new(p.verified.config.params()) {
            Ok(hv) => hv,
            Err(e) => {
                self.sink.record(
                    at_global,
                    ObsKind::ReconfigAbort,
                    SYSTEM_VM,
                    p.stage_id,
                    RejectReason::Activation(e).ordinal(),
                );
                return;
            }
        };
        if self.obs_capacity > 0 {
            next.attach_obs(self.obs_capacity);
        }
        let latency = p.switch_at.saturating_sub(p.accepted_at);
        self.sink.record(
            at_global,
            ObsKind::ReconfigDrain,
            SYSTEM_VM,
            p.stage_id,
            latency,
        );
        self.drain_latencies.push(latency);
        // Quiesce: drain the R-channel pools in deterministic order and
        // carry every in-flight entry exactly once.
        let carried = self.hv.drain_pools();
        let carried_out = carried.len();
        let next_vms = next.vm_count();
        for (vm, mut entry) in carried {
            if vm >= next_vms {
                // The VM departed: its in-flight work is torn down with an
                // explicit account (never silently retained or re-keyed).
                self.dropped_departed.push((vm, entry.task_id));
                continue;
            }
            // Rebase to the new epoch's local clock (its slot 0 is the
            // boundary). A deadline at or before the boundary clamps to 0
            // and expires — correctly — on the new epoch's first sweep.
            entry.deadline = entry.deadline.saturating_sub(p.switch_at);
            entry.enqueued_at = entry.enqueued_at.saturating_sub(p.switch_at);
            if entry.first_dispatch != NEVER_DISPATCHED {
                entry.first_dispatch = entry.first_dispatch.saturating_sub(p.switch_at);
            }
            if next.restore_entry(vm, entry).is_err() {
                // `vm < next_vms`, so the only failure is pool overflow.
                self.restore_overflow.push((vm, entry.task_id));
            }
        }
        // Retire the old epoch: its per-VM counters, watchdog state and
        // admission windows seal here — a successor reusing a VM id starts
        // from zero.
        let old_metrics = self.hv.metrics().clone();
        let old_obs = self.hv.take_obs();
        let old_vms = self.hv.vm_count();
        self.retired.push(EpochRecord {
            epoch: self.epoch,
            base: self.epoch_base,
            end: at_global,
            vms: old_vms,
            carried_out,
            metrics: old_metrics,
            obs: old_obs,
        });
        self.epoch = self.epoch.saturating_add(1);
        self.epoch_base = at_global;
        self.hv = next;
        self.config = p.verified.config.clone();
        self.verifier
            .advance(p.verified.analysis, p.verified.verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staged::StagedConfig;
    use ioguard_hypervisor::pchannel::PredefinedTask;
    use ioguard_hypervisor::VmMetrics;
    use ioguard_sched::task::{PeriodicServer, SporadicTask, TaskSet};

    fn task(t: u64, c: u64, d: u64) -> SporadicTask {
        SporadicTask::new(t, c, d).unwrap()
    }

    fn sets(v: Vec<Vec<SporadicTask>>) -> Vec<TaskSet> {
        v.into_iter().map(Into::into).collect()
    }

    /// Two VMs, one σ* task of period 8 → hyperperiod 8.
    fn cfg_a() -> StagedConfig {
        let mut c = StagedConfig::new(
            vec![
                PeriodicServer::new(5, 2).unwrap(),
                PeriodicServer::new(10, 3).unwrap(),
            ],
            sets(vec![vec![task(20, 2, 10)], vec![task(40, 4, 30)]]),
        );
        c.predefined = vec![PredefinedTask {
            task_id: 900,
            vm: 0,
            task: SporadicTask::implicit(8, 1).unwrap(),
            response_bytes: 64,
            start_offset: 0,
        }];
        c
    }

    /// Three VMs (VM ids 0 and 1 reused from `cfg_a`), hyperperiod 8.
    fn cfg_b() -> StagedConfig {
        let mut c = StagedConfig::new(
            vec![
                PeriodicServer::new(5, 1).unwrap(),
                PeriodicServer::new(10, 2).unwrap(),
                PeriodicServer::new(8, 2).unwrap(),
            ],
            sets(vec![
                vec![task(20, 1, 10)],
                vec![task(40, 2, 30)],
                vec![task(32, 2, 16)],
            ]),
        );
        c.predefined = vec![PredefinedTask {
            task_id: 901,
            vm: 1,
            task: SporadicTask::implicit(8, 1).unwrap(),
            response_bytes: 32,
            start_offset: 0,
        }];
        c
    }

    /// One VM (VM 1 departs relative to `cfg_a`), no σ* load.
    fn cfg_one() -> StagedConfig {
        StagedConfig::new(
            vec![PeriodicServer::new(4, 1).unwrap()],
            sets(vec![vec![task(20, 1, 10)]]),
        )
    }

    #[test]
    fn initial_commit_traces_epoch_zero() {
        let rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        assert_eq!(rc.epoch(), 0);
        assert_eq!(rc.phase(), ReconfigPhase::Running);
        assert_eq!(rc.hv().vm_count(), 2);
        let kinds: Vec<_> = rc.sink().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ObsKind::ReconfigStage,
                ObsKind::ReconfigVerify,
                ObsKind::ReconfigCommit
            ]
        );
    }

    #[test]
    fn unschedulable_initial_config_rejected() {
        let mut c = cfg_a();
        c.task_sets = sets(vec![vec![task(10, 9, 10)], vec![task(40, 4, 30)]]);
        assert!(matches!(
            ReconfigController::new(c, 16, 64),
            Err(RejectReason::Unschedulable { .. })
        ));
    }

    #[test]
    fn stage_commit_switch_runs_new_epoch() {
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        rc.run(3);
        let id = rc.stage(cfg_b()).unwrap();
        assert_eq!(id, 1);
        let boundary = rc.commit().unwrap();
        assert_eq!(boundary, 8, "next hyperperiod multiple of the old σ*");
        assert_eq!(rc.phase(), ReconfigPhase::Draining);
        rc.run(6); // crosses the boundary at local slot 8
        assert_eq!(rc.epoch(), 1);
        assert_eq!(rc.phase(), ReconfigPhase::Running);
        assert_eq!(rc.hv().vm_count(), 3);
        assert_eq!(rc.hv().now(), 1, "new epoch restarts its local clock");
        assert_eq!(rc.now_global(), 9);
        let sealed = rc.retired().first().unwrap();
        assert_eq!(
            (sealed.epoch, sealed.base, sealed.end, sealed.vms),
            (0, 0, 8, 2)
        );
        assert_eq!(rc.drain_latencies(), &[5]);
        let drains: Vec<_> = rc.sink().of_kind(ObsKind::ReconfigDrain).collect();
        assert_eq!(drains.len(), 1);
        assert_eq!(drains.first().unwrap().arg, 5);
        assert!(rc.drain_latencies().iter().all(|&l| l <= rc.drain_budget()));
    }

    #[test]
    fn reused_vm_id_gets_fresh_counters_after_switch() {
        // Satellite regression: re-admitting a VM id in a new epoch must
        // start from zeroed metrics; the old counters seal in the ledger.
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        rc.submit(0, 7, 1, 10, true).unwrap();
        rc.run(6);
        let before = rc.hv().metrics().vm(0);
        assert!(
            before.completed >= 1,
            "job should have completed: {before:?}"
        );
        rc.stage(cfg_b()).unwrap();
        rc.commit().unwrap();
        rc.run(4);
        assert_eq!(rc.epoch(), 1);
        assert_eq!(
            rc.hv().metrics().vm(0),
            VmMetrics::default(),
            "reused VM id must not inherit the old epoch's counters"
        );
        assert_eq!(rc.retired().first().unwrap().metrics.vm(0), before);
        assert!(rc.totals().conserved(), "{:?}", rc.totals());
    }

    #[test]
    fn departed_vm_inflight_work_torn_down_with_account() {
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        rc.run(6);
        rc.submit(1, 42, 50, 100, false).unwrap();
        rc.stage(cfg_one()).unwrap();
        rc.commit().unwrap();
        rc.run(3);
        assert_eq!(rc.epoch(), 1);
        assert_eq!(rc.hv().vm_count(), 1);
        assert_eq!(rc.dropped_departed(), &[(1usize, 42u64)]);
        let t = rc.totals();
        assert_eq!(t.dropped_departed, 1);
        assert!(t.conserved(), "{t:?}");
    }

    #[test]
    fn carried_entry_completes_exactly_once() {
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        rc.attach_obs(512);
        rc.run(6);
        rc.submit(1, 77, 4, 30, true).unwrap();
        rc.stage(cfg_b()).unwrap();
        rc.commit().unwrap();
        rc.run(40);
        assert_eq!(rc.epoch(), 1);
        let old = rc.retired().first().unwrap().obs.as_ref().unwrap();
        let live = rc.hv().obs().unwrap();
        assert_eq!(old.sink.dropped() + live.sink.dropped(), 0);
        let completes = old
            .sink
            .of_kind(ObsKind::Complete)
            .filter(|e| e.task == 77)
            .count()
            + live
                .sink
                .of_kind(ObsKind::Complete)
                .filter(|e| e.task == 77)
                .count();
        assert_eq!(
            completes, 1,
            "carried job dispatched under exactly one epoch"
        );
        assert!(rc.totals().conserved(), "{:?}", rc.totals());
    }

    #[test]
    fn blown_drain_budget_aborts_and_rolls_back() {
        let mut rc = ReconfigController::new(cfg_a(), 3, 64).unwrap();
        rc.run(2); // boundary at 8 → needed 6 > budget 3
        rc.stage(cfg_b()).unwrap();
        match rc.commit().unwrap_err() {
            RejectReason::DrainBudgetExceeded { needed, budget } => {
                assert_eq!((needed, budget), (6, 3));
            }
            other => panic!("expected DrainBudgetExceeded, got {other:?}"),
        }
        assert_eq!(rc.phase(), ReconfigPhase::Running);
        assert_eq!(rc.epoch(), 0);
        assert_eq!(rc.commit().unwrap_err(), RejectReason::NothingStaged);
        assert_eq!(rc.sink().of_kind(ObsKind::ReconfigAbort).count(), 1);
    }

    #[test]
    fn degraded_at_boundary_aborts_switch() {
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        rc.run(3);
        rc.stage(cfg_b()).unwrap();
        rc.commit().unwrap();
        rc.hv_mut().degrade();
        rc.run(8);
        assert_eq!(rc.epoch(), 0, "switch must not run under degradation");
        assert_eq!(rc.phase(), ReconfigPhase::Running);
        assert_eq!(rc.hv().vm_count(), 2);
        let aborts: Vec<_> = rc.sink().of_kind(ObsKind::ReconfigAbort).collect();
        assert_eq!(aborts.len(), 1);
        assert_eq!(
            aborts.first().unwrap().arg,
            RejectReason::DegradedAtBoundary.ordinal()
        );
        assert!(rc.drain_latencies().is_empty());
    }

    #[test]
    fn back_to_back_flips_serialize_on_the_drain() {
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        rc.run(1);
        rc.stage(cfg_b()).unwrap();
        rc.commit().unwrap();
        assert_eq!(
            rc.stage(cfg_one()).unwrap_err(),
            RejectReason::SwitchPending
        );
        assert_eq!(rc.commit().unwrap_err(), RejectReason::SwitchPending);
        rc.run(8);
        assert_eq!(rc.epoch(), 1);
        rc.stage(cfg_one()).unwrap();
        rc.commit().unwrap();
        rc.run(8);
        assert_eq!(rc.epoch(), 2);
        assert_eq!(rc.hv().vm_count(), 1);
        assert_eq!(rc.drain_latencies().len(), 2);
    }

    #[test]
    fn explicit_abort_drops_stage_and_pending() {
        let mut rc = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        assert!(!rc.abort(), "nothing to drop yet");
        rc.run(1);
        rc.stage(cfg_b()).unwrap();
        rc.commit().unwrap();
        assert!(rc.abort());
        assert_eq!(rc.phase(), ReconfigPhase::Running);
        rc.run(16);
        assert_eq!(rc.epoch(), 0, "aborted commit never switches");
    }

    #[test]
    fn aborted_commit_is_observationally_identical_to_never_staging() {
        fn drive(rc: &mut ReconfigController, flip: bool) {
            rc.run(2);
            if flip {
                rc.stage(cfg_b()).unwrap();
                rc.commit().unwrap();
            }
            rc.submit(0, 5, 1, 12, true).unwrap();
            rc.submit(1, 6, 2, 20, false).unwrap();
            rc.run(4);
            if flip {
                assert!(rc.abort());
            }
            rc.run(10);
        }
        let mut a = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        a.attach_obs(512);
        let mut b = ReconfigController::new(cfg_a(), 16, 64).unwrap();
        b.attach_obs(512);
        drive(&mut a, true);
        drive(&mut b, false);
        assert_eq!(a.epoch(), 0);
        assert_eq!(
            a.hv().obs().unwrap().sink.render(),
            b.hv().obs().unwrap().sink.render(),
            "live trace must be byte-identical with and without the aborted flip"
        );
        assert_eq!(a.hv().metrics(), b.hv().metrics());
        assert_eq!(a.totals(), b.totals());
    }
}
