//! Property tests for the online-reconfiguration protocol — the headline
//! guarantees of the PR, proven over random `(old, new, switch-cycle)`
//! triples:
//!
//! * **Exactly-once dispatch.** Every submitted job is dispatched under
//!   exactly one configuration epoch: no job completes twice across a
//!   switch, and the work-conservation totals balance — accepted jobs
//!   equal completions + misses + sheds + accounted teardowns + still
//!   in flight. Holds fault-free, under injected device stalls, and
//!   when the switch itself aborts.
//! * **Bounded drain.** Every observed drain latency is within the
//!   configured budget (the bound is enforced at commit time).
//! * **Invisible aborts.** A staged-and-aborted (or rejected) flip
//!   leaves the live system byte-identical — trace and metrics — to a
//!   run that never staged anything.

use ioguard_hypervisor::pchannel::PredefinedTask;
use ioguard_obs::ObsKind;
use ioguard_reconfig::{ReconfigController, StagedConfig};
use ioguard_sched::task::{PeriodicServer, SporadicTask};
use proptest::prelude::*;

/// Server menu: light utilizations so randomly drawn populations are
/// usually schedulable (the heaviest combination is pinned below).
const MENU: [(u64, u64); 4] = [(4, 1), (8, 2), (10, 2), (16, 3)];

fn mk_config(vms: usize, picks: &[usize], sigma: bool) -> StagedConfig {
    let mut servers = Vec::new();
    let mut sets = Vec::new();
    for i in 0..vms {
        let (p, t) = MENU[picks.get(i).copied().unwrap_or(0) % MENU.len()];
        servers.push(PeriodicServer::new(p, t).unwrap());
        sets.push(vec![SporadicTask::new(40, 1, 20).unwrap()].into());
    }
    let mut c = StagedConfig::new(servers, sets);
    if sigma {
        c.predefined = vec![PredefinedTask {
            task_id: 990,
            vm: 0,
            task: SporadicTask::implicit(8, 1).unwrap(),
            response_bytes: 16,
            start_offset: 0,
        }];
    }
    c
}

/// One submission: (slot, vm, wcet, relative deadline, critical).
type Sub = (u64, usize, u64, u64, bool);

/// Drives a full reconfiguration cycle: run `old`, stage `new` and commit
/// at `commit_at`, keep submitting per `subs`, and check the headline
/// properties. Rejected stages/commits are legal outcomes (the old config
/// keeps running); the invariants hold either way.
fn check_triple(
    old: StagedConfig,
    new: StagedConfig,
    commit_at: u64,
    budget: u64,
    subs: &[Sub],
    stall: Option<(u64, u64)>,
) {
    let Ok(mut rc) = ReconfigController::new(old, budget, 128) else {
        return; // an unschedulable initial draw is simply skipped
    };
    rc.attach_obs(4096);
    let mut ids: Vec<u64> = Vec::new();
    for slot in 0..48u64 {
        if slot == commit_at {
            let staged = rc.stage(new.clone());
            if staged.is_ok() {
                let _ = rc.commit();
            }
        }
        if let Some((at, len)) = stall {
            if slot == at {
                rc.hv_mut().inject_device_stall(len);
            }
        }
        for (i, &(s, vm, wcet, rel, critical)) in subs.iter().enumerate() {
            if s == slot {
                let id = 1000 + i as u64;
                if rc.submit(vm, id, wcet, rel, critical).is_ok() {
                    ids.push(id);
                }
            }
        }
        rc.step();
    }

    let totals = rc.totals();
    assert!(totals.conserved(), "conservation broke: {totals:?}");
    assert!(
        rc.drain_latencies().iter().all(|&l| l <= budget),
        "drain latency above budget {budget}: {:?}",
        rc.drain_latencies()
    );

    // Exactly-once: collect completions across every epoch's trace.
    let mut sinks = Vec::new();
    for r in rc.retired() {
        if let Some(obs) = &r.obs {
            sinks.push(&obs.sink);
        }
    }
    if let Some(obs) = rc.hv().obs() {
        sinks.push(&obs.sink);
    }
    for sink in &sinks {
        assert_eq!(sink.dropped(), 0, "sink overflow would hide dispatches");
    }
    for &id in &ids {
        let completes: usize = sinks
            .iter()
            .map(|s| {
                s.of_kind(ObsKind::Complete)
                    .filter(|e| e.task == id)
                    .count()
            })
            .sum();
        assert!(
            completes <= 1,
            "job {id} completed {completes} times across epochs"
        );
    }
}

#[test]
fn heaviest_menu_config_is_schedulable() {
    // Pins the generator's worst case so the properties are not vacuous:
    // three copies of the heaviest server plus σ* load must verify.
    let heavy = mk_config(3, &[0, 0, 0], true);
    assert!(
        heavy.verify().is_ok(),
        "generator menu must admit its heaviest draw"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exactly_once_under_random_reconfig(
        old_shape in (1usize..=3, prop::collection::vec(0usize..4, 3), proptest::arbitrary::any::<bool>()),
        new_shape in (1usize..=3, prop::collection::vec(0usize..4, 3), proptest::arbitrary::any::<bool>()),
        commit_at in 0u64..16,
        budget in 0u64..=16,
        subs in prop::collection::vec((0u64..40, 0usize..3, 1u64..4, 8u64..32, proptest::arbitrary::any::<bool>()), 0..20),
    ) {
        let old = mk_config(old_shape.0, &old_shape.1, old_shape.2);
        let new = mk_config(new_shape.0, &new_shape.1, new_shape.2);
        check_triple(old, new, commit_at, budget, &subs, None);
    }

    #[test]
    fn exactly_once_under_faulted_reconfig(
        old_shape in (1usize..=3, prop::collection::vec(0usize..4, 3), proptest::arbitrary::any::<bool>()),
        new_shape in (1usize..=3, prop::collection::vec(0usize..4, 3), proptest::arbitrary::any::<bool>()),
        commit_at in 0u64..16,
        budget in 0u64..=16,
        subs in prop::collection::vec((0u64..40, 0usize..3, 1u64..4, 8u64..32, proptest::arbitrary::any::<bool>()), 0..20),
        stall in (0u64..32, 1u64..8),
    ) {
        // A device stall mid-drain may degrade the system and abort the
        // switch at the boundary — the invariants must hold regardless.
        let old = mk_config(old_shape.0, &old_shape.1, old_shape.2);
        let new = mk_config(new_shape.0, &new_shape.1, new_shape.2);
        check_triple(old, new, commit_at, budget, &subs, Some(stall));
    }

    #[test]
    fn aborted_flip_is_observationally_invisible(
        shape in (1usize..=3, prop::collection::vec(0usize..4, 3), proptest::arbitrary::any::<bool>()),
        flip_at in 0u64..24,
        staged_rejects in proptest::arbitrary::any::<bool>(),
        subs in prop::collection::vec((0u64..40, 0usize..3, 1u64..4, 8u64..32, proptest::arbitrary::any::<bool>()), 0..16),
    ) {
        let base = mk_config(shape.0, &shape.1, shape.2);
        let Ok(mut with_flip) = ReconfigController::new(base.clone(), 16, 128) else {
            return Ok(());
        };
        let Ok(mut without) = ReconfigController::new(base.clone(), 16, 128) else {
            return Ok(());
        };
        with_flip.attach_obs(4096);
        without.attach_obs(4096);

        let drive = |rc: &mut ReconfigController, flip: bool| {
            for slot in 0..48u64 {
                if flip && slot == flip_at {
                    if staged_rejects {
                        // An unschedulable candidate: rejected at verify.
                        let mut bad = base.clone();
                        bad.task_sets = (0..bad.vm_count())
                            .map(|_| vec![SporadicTask::new(10, 9, 10).unwrap()].into())
                            .collect();
                        assert!(rc.stage(bad).is_err());
                    } else {
                        // Verified and committed, then rolled back before
                        // the boundary can run.
                        assert!(rc.stage(base.clone()).is_ok());
                        assert!(rc.commit().is_ok());
                        assert!(rc.abort());
                    }
                }
                for (i, &(s, vm, wcet, rel, critical)) in subs.iter().enumerate() {
                    if s == slot {
                        let _ = rc.submit(vm, 2000 + i as u64, wcet, rel, critical);
                    }
                }
                rc.step();
            }
        };
        drive(&mut with_flip, true);
        drive(&mut without, false);

        prop_assert_eq!(with_flip.epoch(), 0);
        let a = with_flip.hv().obs().unwrap();
        let b = without.hv().obs().unwrap();
        prop_assert_eq!(
            a.sink.render(),
            b.sink.render(),
            "aborted flip must leave a byte-identical live trace"
        );
        prop_assert_eq!(with_flip.hv().metrics(), without.hv().metrics());
        prop_assert_eq!(with_flip.totals(), without.totals());
    }
}
