//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Preemptive pools vs. FIFO** — the BlueVisor delta, isolated on
//!    identical workloads.
//! 2. **P-channel preload fraction sweep** — x ∈ {0, 20, …, 100}.
//! 3. **Two-layer (server-isolated) vs. flat global EDF** — the isolation
//!    cost.
//! 4. **NoC contention** — solo vs. contended packet latency on the mesh.
//!
//! Run with: `cargo bench -p ioguard-bench --bench ablations`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ioguard_core::casestudy::{CaseStudyPoint, SystemUnderTest};
use ioguard_noc::network::{Network, NetworkConfig};
use ioguard_noc::packet::Packet;
use ioguard_noc::topology::NodeId;

fn ablation_preload_sweep() {
    // Driven past the paper's sweep (105% target) so the systems are at the
    // saturation edge where the preload fraction separates them.
    println!("\n=== Ablation: P-channel preload fraction (8 VMs, 105% util, 15 trials) ===");
    println!("preload%  success  throughput(Mbit/s)  tp-std");
    let mut prev_success = -1.0f64;
    for pct in [0u8, 20, 40, 60, 70, 80, 100] {
        let s = CaseStudyPoint {
            system: SystemUnderTest::IoGuard { preload_pct: pct },
            vms: 8,
            target_utilization: 1.05,
            trials: 15,
            seed: 77,
            horizon_slots: 16_000,
        }
        .run();
        println!(
            "{pct:>7}   {:>6.2}   {:>8.2}   {:>6.3}",
            s.success_ratio, s.throughput_mbps, s.throughput_std
        );
        // Obs. 3's "more pre-loading introduces more benefits": success is
        // non-decreasing in the preload fraction at the saturation edge.
        assert!(
            s.success_ratio >= prev_success - 0.15,
            "preload {pct}%: success dropped sharply vs previous step"
        );
        prev_success = s.success_ratio;
    }
}

fn ablation_queue_discipline() {
    println!("\n=== Ablation: queue discipline (EDF pools vs FIFO) at 85% util, 4 VMs ===");
    for (label, system) in [
        ("FIFO (BV)", SystemUnderTest::BlueVisor),
        (
            "EDF pools (I/O-GUARD-0)",
            SystemUnderTest::IoGuard { preload_pct: 0 },
        ),
    ] {
        let s = CaseStudyPoint {
            system,
            vms: 4,
            target_utilization: 0.85,
            trials: 15,
            seed: 77,
            horizon_slots: 16_000,
        }
        .run();
        println!("{label:<26} success {:.2}", s.success_ratio);
    }
}

fn ablation_isolation() {
    println!("\n=== Ablation: global EDF vs server-isolated G-Sched (70% preload, 80% util) ===");
    for (label, system) in [
        ("global EDF", SystemUnderTest::IoGuard { preload_pct: 70 }),
        (
            "server-isolated",
            SystemUnderTest::IoGuardServerIsolated { preload_pct: 70 },
        ),
    ] {
        let s = CaseStudyPoint {
            system,
            vms: 4,
            target_utilization: 0.80,
            trials: 15,
            seed: 77,
            horizon_slots: 16_000,
        }
        .run();
        println!(
            "{label:<16} success {:.2}  throughput {:.2} Mbit/s",
            s.success_ratio, s.throughput_mbps
        );
    }
}

fn bench_ablations(c: &mut Criterion) {
    ablation_preload_sweep();
    ablation_queue_discipline();
    ablation_isolation();

    // NoC microbenchmark: contention cost per packet.
    let mut group = c.benchmark_group("ablations/noc_packet_latency");
    for flows in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut net = Network::new(NetworkConfig::paper_platform()).unwrap();
                for i in 0..flows as u64 {
                    net.inject(
                        Packet::request(
                            i + 1,
                            NodeId::new((i % 5) as u16, 2),
                            NodeId::new(4, 2),
                            8,
                        )
                        .unwrap(),
                    )
                    .unwrap();
                }
                out.clear();
                net.run_until_idle_into(100_000, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
