//! Fig. 8 — scalability: area, power and maximum frequency vs. η.
//!
//! Prints the regenerated Fig. 8 sweep and benchmarks the scaling model.
//! Run with: `cargo bench -p ioguard-bench --bench fig8_scalability`

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ioguard_hw::scale::{fig8_sweep, render_fig8};

fn bench_fig8(c: &mut Criterion) {
    println!("\n=== Fig. 8 — scalability with η (#VMs = 2^η) ===");
    println!("{}", render_fig8(&fig8_sweep(5)));
    let points = fig8_sweep(5);
    for p in points.iter().filter(|p| p.eta >= 1) {
        let margin = (p.ioguard_area - p.legacy_area) / p.legacy_area * 100.0;
        assert!(margin < 20.0, "Obs. 5 margin bound violated at η={}", p.eta);
        assert!(
            p.ioguard_fmax.0 > p.legacy_fmax.0,
            "Obs. 6 fmax ordering violated at η={}",
            p.eta
        );
    }
    println!("Obs. 5 (margin < 20%) and Obs. 6 (hypervisor fmax > legacy) hold at every η ≥ 1.\n");

    c.bench_function("fig8/sweep_eta0_to_6", |b| {
        b.iter(|| black_box(fig8_sweep(6)))
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
