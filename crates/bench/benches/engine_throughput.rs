//! Hot-path throughput of the experiment engine.
//!
//! Reports the two rates the perf work targets:
//!
//! * **slots/s** — how fast one trial advances the platform models, per
//!   system (the incremental shadow registers and the release calendar
//!   live on this path);
//! * **trials/s** — how fast the engine drains a Fig. 7-shaped batch of
//!   trials, single-threaded vs. all cores (the work-stealing payoff).
//!
//! The multi-thread/single-thread pair double-checks the determinism
//! contract before timing anything: both runs must produce identical
//! outcomes.
//!
//! Run with: `cargo bench -p ioguard-bench --bench engine_throughput`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ioguard_core::casestudy::{run_trial, SystemUnderTest, TrialOutcome};
use ioguard_core::engine;
use ioguard_workload::generator::{TrialConfig, TrialWorkload};

const HORIZON: u64 = 16_000;

fn bench_slot_rate(c: &mut Criterion) {
    let workload = TrialWorkload::generate(&TrialConfig::new(4, 0.70, 7));
    let mut group = c.benchmark_group("engine/slot_rate_16000");
    group.sample_size(10);
    for system in SystemUnderTest::figure7_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, &system| b.iter(|| black_box(run_trial(system, &workload, 7, HORIZON))),
        );
    }
    group.finish();
}

fn fig7_batch() -> (Vec<(SystemUnderTest, u64)>, Vec<TrialWorkload>) {
    // One Fig. 7 cell column: every system × 8 trials at 70% utilization.
    let seeds: Vec<u64> = (1..=8).collect();
    let workloads: Vec<TrialWorkload> = seeds
        .iter()
        .map(|&s| TrialWorkload::generate(&TrialConfig::new(4, 0.70, s)))
        .collect();
    let units: Vec<(SystemUnderTest, u64)> = SystemUnderTest::figure7_lineup()
        .into_iter()
        .flat_map(|sys| seeds.iter().map(move |&s| (sys, s)))
        .collect();
    (units, workloads)
}

fn run_batch(
    threads: usize,
    units: &[(SystemUnderTest, u64)],
    workloads: &[TrialWorkload],
) -> Vec<TrialOutcome> {
    let (out, _) = engine::run_indexed(threads, units, |_, &(sys, seed)| {
        run_trial(sys, &workloads[(seed - 1) as usize], seed, HORIZON)
    });
    out
}

fn bench_trial_rate(c: &mut Criterion) {
    let (units, workloads) = fig7_batch();

    // Determinism gate: the timed configurations must agree exactly.
    let sequential = run_batch(1, &units, &workloads);
    let parallel = run_batch(0, &units, &workloads);
    assert_eq!(
        sequential, parallel,
        "engine output must be thread-count independent"
    );

    let mut group = c.benchmark_group(format!("engine/trial_rate_{}_trials", units.len()));
    group.sample_size(10);
    for threads in [1usize, 0] {
        let label = if threads == 0 {
            format!("{}_threads", engine::resolve_threads(0))
        } else {
            "1_thread".into()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &threads, |b, &t| {
            b.iter(|| black_box(run_batch(t, &units, &workloads)))
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_slot_rate(c);
    bench_trial_rate(c);
}

criterion_group!(engine_throughput, benches);
criterion_main!(engine_throughput);
