//! Table I — hardware overhead (FPGA resources).
//!
//! Prints the regenerated Table I and benchmarks the composition model.
//! Run with: `cargo bench -p ioguard-bench --bench table1_hw_overhead`

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ioguard_hw::blocks::HypervisorConfig;
use ioguard_hw::reference::{render_table1, MICROBLAZE};

fn bench_table1(c: &mut Criterion) {
    println!("\n=== Table I — hardware overhead (implemented on FPGA) ===");
    println!("{}", render_table1());
    let proposed = HypervisorConfig::paper_table1().cost();
    println!(
        "Proposed / MicroBlaze: {:.1}% LUTs, {:.1}% registers, {:.1}% power \
         (paper: 56.6% / 67.8% / 77.7%)\n",
        100.0 * proposed.luts as f64 / MICROBLAZE.luts as f64,
        100.0 * proposed.registers as f64 / MICROBLAZE.registers as f64,
        100.0 * proposed.power_mw as f64 / MICROBLAZE.power_mw as f64,
    );

    c.bench_function("table1/compose_paper_config", |b| {
        b.iter(|| black_box(HypervisorConfig::paper_table1().cost()))
    });

    let mut group = c.benchmark_group("table1/compose_scaling");
    for vms in [4u64, 16, 64] {
        group.bench_function(format!("{vms}vms"), |b| {
            b.iter(|| black_box(HypervisorConfig::new(vms, 2).cost()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
