//! Sec. IV — schedulability analysis: exact (Theorems 1/3) vs.
//! pseudo-polynomial (Theorems 2/4) test cost, sbf construction, and the
//! acceptance-ratio experiment.
//!
//! Run with: `cargo bench -p ioguard-bench --bench sched_analysis`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ioguard_core::experiments::{acceptance_ratio_sweep, theorem_agreement, SchedExperimentConfig};
use ioguard_sched::gsched::{theorem1_exact, theorem2_pseudo_poly};
use ioguard_sched::lsched::{theorem3_exact, theorem4_pseudo_poly};
use ioguard_sched::table::TimeSlotTable;
use ioguard_sched::task::{PeriodicServer, SporadicTask, TaskSet};

fn system(h: u64) -> (TimeSlotTable, Vec<PeriodicServer>, TaskSet) {
    let occupied: Vec<u64> = (0..h / 4).map(|i| i * 4).collect();
    let sigma = TimeSlotTable::from_occupied(h, &occupied).expect("valid");
    let servers = vec![
        PeriodicServer::new(h / 4, (h / 32).max(1)).expect("valid"),
        PeriodicServer::new(h / 2, (h / 16).max(1)).expect("valid"),
    ];
    let tasks: TaskSet = vec![
        SporadicTask::new(4 * h, h / 8 + 1, 3 * h).expect("valid"),
        SporadicTask::new(8 * h, h / 8 + 1, 6 * h).expect("valid"),
    ]
    .into();
    (sigma, servers, tasks)
}

fn bench_tests(c: &mut Criterion) {
    println!("\n=== Sec. IV — analysis experiments ===");
    let config = SchedExperimentConfig::default();
    let utils: Vec<f64> = (1..=9).map(|i| 0.1 * i as f64).collect();
    println!("acceptance ratio vs. utilization (50 random systems/point):");
    for p in acceptance_ratio_sweep(&config, &utils) {
        println!("  u = {:.1}: {:>5.1}%", p.utilization, p.accepted * 100.0);
    }
    let agreement = theorem_agreement(&config, 300);
    println!(
        "theorem agreement (exact vs pseudo-polynomial): {}/{} agreed, {} n/a\n",
        agreement.agreed, agreement.compared, agreement.not_applicable
    );
    assert_eq!(agreement.agreed, agreement.compared);

    // Exact vs pseudo-polynomial runtime — the complexity claim of Sec. IV.
    let mut group = c.benchmark_group("sched/gsched_test");
    for h in [16u64, 64, 256] {
        let (sigma, servers, _) = system(h);
        group.bench_with_input(BenchmarkId::new("theorem1_exact", h), &h, |b, _| {
            b.iter(|| black_box(theorem1_exact(&sigma, &servers, 1 << 30).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("theorem2_pseudo", h), &h, |b, _| {
            b.iter(|| black_box(theorem2_pseudo_poly(&sigma, &servers, 0.01).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sched/lsched_test");
    for h in [16u64, 64, 256] {
        let (_, servers, tasks) = system(h);
        group.bench_with_input(BenchmarkId::new("theorem3_exact", h), &h, |b, _| {
            b.iter(|| black_box(theorem3_exact(&servers[0], &tasks, 1 << 34).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("theorem4_pseudo", h), &h, |b, _| {
            b.iter(|| black_box(theorem4_pseudo_poly(&servers[0], &tasks, 0.01).unwrap()))
        });
    }
    group.finish();

    // Eq. 1 table construction cost (the O(H²) enumeration).
    let mut group = c.benchmark_group("sched/sbf_enum_table");
    for h in [64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            let occupied: Vec<u64> = (0..h / 3).map(|i| i * 3).collect();
            b.iter(|| {
                let t = TimeSlotTable::from_occupied(h, &occupied).unwrap();
                black_box(t.sbf(h - 1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tests);
criterion_main!(benches);
