//! Fig. 6 — run-time software overhead (memory footprint).
//!
//! Prints the regenerated Fig. 6 table and benchmarks the footprint model.
//! Run with: `cargo bench -p ioguard-bench --bench fig6_software_overhead`

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ioguard_hw::footprint::{fig6, footprint, render_fig6, SystemKind};

fn bench_fig6(c: &mut Criterion) {
    // Regenerate and print the figure once, up front.
    println!("\n=== Fig. 6 — run-time software overhead (KB) ===");
    println!("{}", render_fig6());
    let legacy = footprint(SystemKind::Legacy).system_software_total();
    let rtxen = footprint(SystemKind::RtXen).system_software_total();
    println!(
        "RT-Xen adds {} KB (+{:.1}%) of system software over legacy — the paper reports 61 KB (+129.8%)\n",
        rtxen - legacy,
        (rtxen - legacy) as f64 / legacy as f64 * 100.0
    );

    c.bench_function("fig6/footprint_inventory", |b| {
        b.iter(|| {
            let rows = fig6();
            black_box(rows.iter().map(|r| r.grand_total()).sum::<u64>())
        })
    });
    c.bench_function("fig6/render", |b| b.iter(|| black_box(render_fig6().len())));
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
