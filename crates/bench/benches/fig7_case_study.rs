//! Fig. 7 — the automotive case study: success ratio and I/O throughput vs.
//! target utilization for the 4-VM and 8-VM groups.
//!
//! Prints the regenerated Fig. 7 series (trial count from the
//! `IOGUARD_TRIALS` environment variable, default 25; the paper runs 1000)
//! and benchmarks single trials of each system.
//!
//! Run with: `cargo bench -p ioguard-bench --bench fig7_case_study`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ioguard_core::casestudy::{run_trial, CaseStudyConfig, Fig7Report, SystemUnderTest};
use ioguard_workload::generator::{TrialConfig, TrialWorkload};

fn regenerate_figure() {
    let trials: u64 = std::env::var("IOGUARD_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let config = CaseStudyConfig::paper_shape(trials);
    println!(
        "\n=== Fig. 7 — automotive case study ({} trials/point; paper: 1000) ===",
        trials
    );
    let report = Fig7Report::run(&config);
    println!("{report}");
}

fn bench_trials(c: &mut Criterion) {
    regenerate_figure();

    // Benchmark the cost of one trial per system at 70% utilization.
    let workload = TrialWorkload::generate(&TrialConfig::new(4, 0.70, 7));
    let mut group = c.benchmark_group("fig7/one_trial_16000_slots");
    group.sample_size(10);
    for system in SystemUnderTest::figure7_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, &system| b.iter(|| black_box(run_trial(system, &workload, 7, 16_000))),
        );
    }
    group.finish();

    // Workload generation itself.
    c.bench_function("fig7/workload_generation", |b| {
        b.iter(|| black_box(TrialWorkload::generate(&TrialConfig::new(8, 0.9, 3))))
    });
}

criterion_group!(benches, bench_trials);
criterion_main!(benches);
