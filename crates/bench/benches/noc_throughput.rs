//! Throughput of the event-driven NoC simulation core.
//!
//! Reports the two rates DESIGN.md §10 targets:
//!
//! * **flits/s and cycles/s under load** — how fast [`Network`] grinds a
//!   uniform-random workload at low (~2%) and high (~30%) per-node
//!   injection on 4×4 and 8×8 meshes. This exercises the dense FIFO
//!   arena, the packet slab, and the activity bitmasks with every router
//!   busy — the case where quiescence skipping cannot help and must not
//!   hurt.
//! * **sparse simulated-cycles/s** — a quiescence-heavy trickle (one
//!   packet every 8 192 cycles) driven through [`Network::run_for`],
//!   where idle-gap jumping and express transit pay for the whole
//!   redesign: cost scales with work, not with the simulated horizon.
//! * **PDES region scaling** — the same pre-loaded saturation backlog the
//!   `bench-summary` scaling lane times, released through
//!   [`ParallelNetwork`] at 1/2/4/8 column regions (DESIGN.md §12).
//!   Speedups over the serial engine require real hardware threads; on a
//!   1-core host this group measures the synchronization overhead floor.
//!
//! `bench-summary` (`cargo run -p ioguard-bench --bin bench-summary`)
//! times the same workloads against the retained per-cycle reference
//! stepper and emits the machine-readable `BENCH_noc.json`.
//!
//! Run with: `cargo bench -p ioguard-bench --bench noc_throughput`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ioguard_noc::network::{Delivery, Network, NetworkConfig, NocFabric};
use ioguard_noc::packet::Packet;
use ioguard_noc::parallel::ParallelNetwork;
use ioguard_noc::topology::NodeId;
use ioguard_sim::rng::Xoshiro256StarStar;

/// Payload flits per benchmark packet (5 flits on the wire with the header).
const PAYLOAD_FLITS: u32 = 4;

/// One uniform-random load case.
#[derive(Debug, Clone, Copy)]
struct UniformCase {
    width: u16,
    height: u16,
    /// Bernoulli injection probability per node per cycle.
    rate: f64,
    /// Cycles of offered traffic before the drain.
    cycles: u64,
}

/// Drives `cycles` of seeded uniform-random traffic plus a drain, and
/// returns (flit-hops executed, simulated cycles) for throughput math.
fn run_uniform(case: &UniformCase) -> (u64, u64) {
    let config = NetworkConfig::mesh(case.width, case.height);
    let mut net = Network::new(config).expect("benchmark mesh is valid");
    let nodes: Vec<NodeId> = net.mesh().iter_nodes().collect();
    let mut rng = Xoshiro256StarStar::new(0x0_c0de_5eed);
    let mut out: Vec<Delivery> = Vec::new();
    let mut next_id = 1u64;
    for _ in 0..case.cycles {
        for &src in &nodes {
            if !rng.chance(case.rate) {
                continue;
            }
            let dst = loop {
                let candidate = NodeId::new(
                    rng.range_u64(0, u64::from(case.width)) as u16,
                    rng.range_u64(0, u64::from(case.height)) as u16,
                );
                if candidate != src {
                    break candidate;
                }
            };
            let packet = Packet::request(next_id, src, dst, PAYLOAD_FLITS)
                .expect("benchmark packet is valid");
            next_id += 1;
            // A full NI queue drops the offer — saturation is the point of
            // the high-rate cases.
            let _ = net.inject(packet);
        }
        out.clear();
        net.step_into(&mut out);
    }
    out.clear();
    net.run_until_idle_into(1_000_000, &mut out);
    (net.stats().flit_hops, net.now().raw())
}

/// Drives a quiescence-heavy trickle — one cross-mesh packet per `gap`
/// cycles — through `run_for`, and returns the simulated horizon covered.
fn run_sparse(packets: u64, gap: u64) -> u64 {
    let mut net = Network::new(NetworkConfig::mesh(4, 4)).expect("benchmark mesh is valid");
    let mut out: Vec<Delivery> = Vec::new();
    for i in 0..packets {
        let src = NodeId::new((i % 4) as u16, (i / 4 % 4) as u16);
        let dst = NodeId::new(3 - src.x, 3 - src.y);
        let packet =
            Packet::request(i + 1, src, dst, PAYLOAD_FLITS).expect("benchmark packet is valid");
        net.inject(packet).expect("sparse NI queue never fills");
        net.run_for(gap, &mut out);
    }
    net.run_until_idle_into(1_000_000, &mut out);
    assert_eq!(net.stats().delivered, packets, "trickle fully delivered");
    net.now().raw()
}

/// Fills every NI queue of a deep-queue 8×8 mesh to refusal, then releases
/// the whole backlog through `run_until_idle` — `rounds` times — on the
/// PDES engine at `regions` column regions. Returns (flit-hops, cycles).
fn run_preloaded_parallel(regions: usize, rounds: u64) -> (u64, u64) {
    let mut config = NetworkConfig::mesh(8, 8);
    config.injection_depth = 256;
    let mut net = ParallelNetwork::new(config, regions).expect("benchmark mesh is valid");
    let nodes: Vec<NodeId> = net.mesh().iter_nodes().collect();
    let mut out: Vec<Delivery> = Vec::new();
    let mut next_id = 1u64;
    for _ in 0..rounds {
        for &src in &nodes {
            loop {
                let dst = NodeId::new(7 - src.x, 7 - src.y);
                let packet = Packet::request(next_id, src, dst, PAYLOAD_FLITS)
                    .expect("benchmark packet is valid");
                if NocFabric::inject(&mut net, packet).is_err() {
                    break; // NI full: this node's backlog is loaded.
                }
                next_id += 1;
            }
        }
        out.clear();
        net.run_until_idle_into(10_000_000, &mut out);
    }
    (net.stats().flit_hops, net.now().raw())
}

fn bench_uniform(c: &mut Criterion) {
    let cases = [
        (
            "4x4_low",
            UniformCase {
                width: 4,
                height: 4,
                rate: 0.02,
                cycles: 2_000,
            },
        ),
        (
            "4x4_high",
            UniformCase {
                width: 4,
                height: 4,
                rate: 0.30,
                cycles: 2_000,
            },
        ),
        (
            "8x8_low",
            UniformCase {
                width: 8,
                height: 8,
                rate: 0.02,
                cycles: 2_000,
            },
        ),
        (
            "8x8_high",
            UniformCase {
                width: 8,
                height: 8,
                rate: 0.30,
                cycles: 2_000,
            },
        ),
    ];
    let mut group = c.benchmark_group("noc/uniform_2000_cycles");
    group.sample_size(10);
    for (label, case) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &case, |b, case| {
            b.iter(|| black_box(run_uniform(case)))
        });
    }
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc/sparse_run_for");
    group.sample_size(10);
    group.bench_function("4x4_64pkts_8192_gap", |b| {
        b.iter(|| black_box(run_sparse(64, 8_192)))
    });
    group.finish();
}

fn bench_pdes_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc/pdes_preloaded_8x8");
    group.sample_size(10);
    for regions in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(regions),
            &regions,
            |b, &regions| b.iter(|| black_box(run_preloaded_parallel(regions, 2))),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_uniform(c);
    bench_sparse(c);
    bench_pdes_scaling(c);
}

criterion_group!(noc_throughput, benches);
criterion_main!(noc_throughput);
