//! Benchmark host crate. The measurement content lives in the
//! `benches/` targets and the `bench-summary` bin; this library holds
//! the pieces worth unit-testing, chiefly the rolling `history`
//! bookkeeping of `BENCH_noc.json`.
//!
//! History entries are one-per-line compact JSON objects starting with
//! `{"mode":` inside the summary's `history` array, so they can be
//! recovered from a previous file by line scanning without a JSON
//! parser. The invariant — regression-tested here after the aborted-run
//! bug — is that an entry is appended **only for fully-completed runs**:
//! a run that fails an acceptance gate still writes its full JSON for
//! inspection, but must not pollute the trend the next runs compare
//! against.
#![forbid(unsafe_code)]

/// Pulls the single-line `history` entries out of a previous summary
/// document, oldest first, keeping at most `keep` of the newest.
pub fn history_entries(text: &str, keep: usize) -> Vec<String> {
    let entries: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|line| line.starts_with("{\"mode\":"))
        .map(|line| line.trim_end_matches(',').to_string())
        .collect();
    let skip = entries.len().saturating_sub(keep);
    entries.into_iter().skip(skip).collect()
}

/// Reads the prior history from `path` (missing or unreadable file ⇒
/// empty history).
pub fn prior_history(path: &str, keep: usize) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => history_entries(&text, keep),
        Err(_) => Vec::new(),
    }
}

/// Rolls the history forward: appends `entry` **only when the run
/// completed** (all acceptance gates passed), then trims to the newest
/// `keep` entries. An aborted run keeps the prior history verbatim, so
/// trend lines only ever contain apples-to-apples complete runs.
pub fn rolled_history(
    mut prior: Vec<String>,
    entry: String,
    completed: bool,
    keep: usize,
) -> Vec<String> {
    if completed {
        prior.push(entry);
    }
    let skip = prior.len().saturating_sub(keep);
    prior.into_iter().skip(skip).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(mode: &str, n: u64) -> String {
        format!("{{\"mode\": \"{mode}\", \"admission_speedup\": {n}.0}}")
    }

    /// A summary fragment shaped like the real file: history entries are
    /// indented, comma-separated lines inside the `history` array.
    fn summary_with_history(entries: &[String]) -> String {
        let mut text =
            String::from("{\n  \"schema\": \"ioguard-bench-noc/v5\",\n  \"history\": [\n");
        for (i, e) in entries.iter().enumerate() {
            text.push_str("    ");
            text.push_str(e);
            if i + 1 < entries.len() {
                text.push(',');
            }
            text.push('\n');
        }
        text.push_str("  ]\n}\n");
        text
    }

    #[test]
    fn history_round_trips_through_the_rendered_document() {
        let entries = vec![entry("full", 1), entry("quick", 2), entry("full", 3)];
        let text = summary_with_history(&entries);
        assert_eq!(history_entries(&text, 7), entries);
    }

    #[test]
    fn history_scan_keeps_only_the_newest() {
        let entries: Vec<String> = (0..10).map(|n| entry("full", n)).collect();
        let text = summary_with_history(&entries);
        let kept = history_entries(&text, 3);
        assert_eq!(kept, entries[7..].to_vec());
    }

    /// The regression test for the aborted-run bug: a gate-failed run
    /// must leave the rolling history exactly as it found it.
    #[test]
    fn aborted_runs_do_not_append_history() {
        let prior = vec![entry("full", 1), entry("full", 2)];
        let after = rolled_history(prior.clone(), entry("full", 99), false, 7);
        assert_eq!(after, prior, "aborted run polluted the history trend");
    }

    #[test]
    fn completed_runs_append_and_trim() {
        let prior: Vec<String> = (0..7).map(|n| entry("full", n)).collect();
        let after = rolled_history(prior.clone(), entry("full", 7), true, 7);
        assert_eq!(after.len(), 7, "history must stay bounded");
        assert_eq!(
            after.first(),
            Some(&entry("full", 1)),
            "oldest entry trimmed"
        );
        assert_eq!(after.last(), Some(&entry("full", 7)), "new entry appended");
    }

    /// End-to-end shape: write → abort → write again must equal a single
    /// completed write (the aborted middle run is invisible).
    #[test]
    fn aborted_write_is_invisible_to_the_next_run() {
        let run1 = rolled_history(Vec::new(), entry("full", 1), true, 7);
        let text1 = summary_with_history(&run1);
        // Run 2 fails a gate: full JSON still written, history unchanged.
        let run2 = rolled_history(history_entries(&text1, 7), entry("full", 2), false, 7);
        let text2 = summary_with_history(&run2);
        // Run 3 completes.
        let run3 = rolled_history(history_entries(&text2, 7), entry("full", 3), true, 7);
        assert_eq!(run3, vec![entry("full", 1), entry("full", 3)]);
    }

    #[test]
    fn missing_prior_file_means_empty_history() {
        assert!(prior_history("/nonexistent/BENCH_noc.json", 7).is_empty());
    }
}
