//! Benchmark host crate: all content lives in the `benches/` targets.
#![forbid(unsafe_code)]
