//! Benchmark host crate: all content lives in the `benches/` targets.
