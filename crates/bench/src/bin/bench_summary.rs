//! Machine-readable benchmark summary: `BENCH_noc.json`.
//!
//! Times the event-driven NoC core ([`Network`]) against the retained
//! per-cycle reference stepper ([`ReferenceNetwork`]) on the two workload
//! shapes DESIGN.md §10 cares about — a saturated uniform-random load
//! (dense-state payoff) and a quiescence-heavy trickle (activity-horizon
//! payoff) — plus the experiment engine's `slot_rate` lineup, and writes
//! the rates to `BENCH_noc.json` in the current directory.
//!
//! Both NoC fabrics receive bit-identical stimulus through the
//! [`NocFabric`] trait, and the run aborts unless their deliveries and
//! statistics agree exactly: a summary produced from diverging simulators
//! would be meaningless. The sparse case additionally enforces the PR's
//! acceptance floor — the event-driven core must cover the idle horizon
//! at least 3× faster than per-cycle stepping.
//!
//! The `scaling` section times the domain-decomposed PDES engine
//! ([`ParallelNetwork`], DESIGN.md §12) against the serial engine on a
//! pre-loaded saturation backlog at 1/2/4/8 column regions, asserting
//! exact output equivalence at every region count. The 8-region speedup
//! floor (2× quick, 4× full) is only *enforced* when the host actually
//! has the cores to parallelize (`std::thread::available_parallelism()`
//! at least the region count being gated); on smaller hosts the measured
//! scaling is reported advisorily — a 1-core container cannot exhibit a
//! multi-thread speedup no matter how good the engine is.
//!
//! The `reconfig` section drives staged, verified mode changes between a
//! two-VM and a three-VM population at sweeping commit offsets and records
//! the drain-latency percentiles against the admission-time budget
//! (DESIGN.md §14). The budget is a hard gate: one over-budget drain fails
//! the run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ioguard-bench --bin bench-summary            # full
//! cargo run --release -p ioguard-bench --bin bench-summary -- --quick # CI
//! ```
//!
//! Timing uses `std::time::Instant`; the bench crate is exempt from the
//! ioguard-lint determinism rules because wall-clock measurement is its
//! entire purpose.

use std::time::Instant;

use ioguard_bench::{prior_history, rolled_history};
use ioguard_core::casestudy::{run_trial, SystemUnderTest};
use ioguard_fleet::{Fleet, FleetConfig, PlacementPolicy};
use ioguard_hypervisor::pchannel::PredefinedTask;
use ioguard_noc::network::{Delivery, Network, NetworkConfig, NetworkStats, NocFabric};
use ioguard_noc::obs::ObservedFabric;
use ioguard_noc::packet::Packet;
use ioguard_noc::parallel::ParallelNetwork;
use ioguard_noc::reference::ReferenceNetwork;
use ioguard_noc::topology::NodeId;
use ioguard_obs::Histogram;
use ioguard_reconfig::{ReconfigController, StagedConfig};
use ioguard_sched::ledger::{theorem1_frame, DemandLedger};
use ioguard_sched::table::TimeSlotTable;
use ioguard_sched::task::{PeriodicServer, SporadicTask};
use ioguard_serve::replay::{ReplayConfig, ReplayDriver};
use ioguard_sim::rng::Xoshiro256StarStar;
use ioguard_workload::generator::{TrialConfig, TrialWorkload};
use ioguard_workload::{FleetArrivalConfig, FleetArrivals};

/// Payload flits per packet (5 flits on the wire with the header).
const PAYLOAD_FLITS: u32 = 4;

/// Sizing knobs for one invocation.
struct Mode {
    label: &'static str,
    /// Offered-traffic cycles of the saturated case.
    saturated_cycles: u64,
    /// Packets in the sparse trickle.
    sparse_packets: u64,
    /// Idle gap between trickle packets, in cycles.
    sparse_gap: u64,
    /// Slots per `run_trial` in the engine lineup.
    slot_horizon: u64,
    /// Pre-loaded backlog rounds in the PDES scaling lane.
    scaling_rounds: u64,
    /// 8-region speedup floor of the scaling lane (enforced only on hosts
    /// with at least `scaling_min_cores` hardware threads).
    scaling_floor: f64,
    /// Host parallelism required before the scaling floor is enforced.
    scaling_min_cores: usize,
    /// Timing repetitions (minimum elapsed wins).
    reps: u32,
    /// Completed mode changes in the reconfig drain-latency lane.
    reconfig_flips: u64,
    /// Resident VMs in the admission lane's ledger before timing starts.
    admission_residents: u64,
    /// Timed admit/evict pairs in the admission lane.
    admission_pairs: u64,
    /// ≥10x incremental-vs-full floor of the admission lane (enforced only
    /// on hosts with at least `admission_min_cores` hardware threads).
    admission_floor: f64,
    /// Host parallelism required before the admission floor is enforced.
    admission_min_cores: usize,
    /// Lifecycle events in the fleet decision-latency run.
    fleet_events: usize,
    /// Requests the serving replay lane drives through `ioguard-serve`.
    serving_requests: u64,
    /// Host parallelism below which the serving lane shrinks to the
    /// quick request count and its deadline gate turns advisory.
    serving_min_cores: usize,
}

impl Mode {
    fn quick() -> Self {
        Self {
            label: "quick",
            saturated_cycles: 1_000,
            sparse_packets: 64,
            sparse_gap: 8_192,
            slot_horizon: 4_000,
            scaling_rounds: 2,
            scaling_floor: 2.0,
            scaling_min_cores: 4,
            reps: 1,
            reconfig_flips: 16,
            admission_residents: 10_000,
            admission_pairs: 64,
            admission_floor: 10.0,
            admission_min_cores: 2,
            fleet_events: 100_000,
            serving_requests: 100_000,
            serving_min_cores: 2,
        }
    }

    fn full() -> Self {
        Self {
            label: "full",
            saturated_cycles: 10_000,
            sparse_packets: 256,
            sparse_gap: 8_192,
            slot_horizon: 16_000,
            scaling_rounds: 4,
            scaling_floor: 4.0,
            scaling_min_cores: 8,
            reps: 3,
            reconfig_flips: 64,
            admission_residents: 10_000,
            admission_pairs: 256,
            admission_floor: 10.0,
            admission_min_cores: 2,
            fleet_events: 100_000,
            serving_requests: 1_000_000,
            serving_min_cores: 2,
        }
    }
}

/// What one fabric produced: enough to check equivalence and compute rates.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    deliveries: Vec<Delivery>,
    stats: NetworkStats,
    now: u64,
}

/// Drives seeded uniform-random traffic at 30% per-node injection for
/// `cycles`, then drains. Identical call sequence for every fabric.
fn drive_saturated<N: NocFabric + ?Sized>(
    net: &mut N,
    width: u16,
    height: u16,
    cycles: u64,
) -> Outcome {
    let nodes: Vec<NodeId> = net.mesh().iter_nodes().collect();
    let mut rng = Xoshiro256StarStar::new(0x0_c0de_5eed);
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut next_id = 1u64;
    for _ in 0..cycles {
        for &src in &nodes {
            if !rng.chance(0.30) {
                continue;
            }
            let dst = loop {
                let candidate = NodeId::new(
                    rng.range_u64(0, u64::from(width)) as u16,
                    rng.range_u64(0, u64::from(height)) as u16,
                );
                if candidate != src {
                    break candidate;
                }
            };
            let packet = Packet::request(next_id, src, dst, PAYLOAD_FLITS)
                .expect("benchmark packet is valid");
            next_id += 1;
            // A full NI queue drops the offer — saturation is the point.
            let _ = net.inject(packet);
        }
        net.step_into(&mut deliveries);
    }
    net.run_until_idle_into(1_000_000, &mut deliveries);
    Outcome {
        stats: net.stats(),
        now: net.now().raw(),
        deliveries,
    }
}

/// Drives one cross-mesh packet per `gap` cycles through `run_for` — the
/// quiescence-heavy shape where the event-driven core jumps idle gaps and
/// the reference stepper pays for every cycle.
fn drive_sparse<N: NocFabric + ?Sized>(net: &mut N, packets: u64, gap: u64) -> Outcome {
    let mut deliveries: Vec<Delivery> = Vec::new();
    for i in 0..packets {
        let src = NodeId::new((i % 4) as u16, (i / 4 % 4) as u16);
        let dst = NodeId::new(3 - src.x, 3 - src.y);
        let packet =
            Packet::request(i + 1, src, dst, PAYLOAD_FLITS).expect("benchmark packet is valid");
        net.inject(packet).expect("sparse NI queue never fills");
        net.run_for(gap, &mut deliveries);
    }
    net.run_until_idle_into(1_000_000, &mut deliveries);
    Outcome {
        stats: net.stats(),
        now: net.now().raw(),
        deliveries,
    }
}

/// Fills every NI queue to refusal with cross-mesh traffic, then releases
/// the whole backlog at once — `rounds` times. Per-cycle stepping would
/// drag the PDES engine onto its sequential path (a 1-cycle batch can
/// never engage region threads), so the scaling lane times this shape:
/// long uninterrupted `run_until_idle` batches over a saturated fabric.
fn drive_preloaded<N: NocFabric + ?Sized>(
    net: &mut N,
    width: u16,
    height: u16,
    rounds: u64,
) -> Outcome {
    let nodes: Vec<NodeId> = net.mesh().iter_nodes().collect();
    let mut deliveries: Vec<Delivery> = Vec::new();
    let mut next_id = 1u64;
    for _ in 0..rounds {
        for &src in &nodes {
            loop {
                let dst = NodeId::new(width - 1 - src.x, height - 1 - src.y);
                let packet = Packet::request(next_id, src, dst, PAYLOAD_FLITS)
                    .expect("benchmark packet is valid");
                if net.inject(packet).is_err() {
                    break; // NI full: this node's backlog is loaded.
                }
                next_id += 1;
            }
        }
        net.run_until_idle_into(10_000_000, &mut deliveries);
    }
    Outcome {
        stats: net.stats(),
        now: net.now().raw(),
        deliveries,
    }
}

/// Times `work` `reps` times and returns (best seconds, last outcome).
fn time_runs<O>(reps: u32, mut work: impl FnMut() -> O) -> (f64, O) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let outcome = work();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(outcome);
    }
    (best, last.expect("at least one timed run"))
}

/// One engine-vs-reference comparison, with the equivalence gate applied.
struct Comparison {
    engine_secs: f64,
    reference_secs: f64,
    flit_hops: u64,
    simulated_cycles: u64,
    delivered: u64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.reference_secs / self.engine_secs
    }

    fn engine_flits_per_sec(&self) -> f64 {
        self.flit_hops as f64 / self.engine_secs
    }

    fn engine_cycles_per_sec(&self) -> f64 {
        self.simulated_cycles as f64 / self.engine_secs
    }

    fn reference_flits_per_sec(&self) -> f64 {
        self.flit_hops as f64 / self.reference_secs
    }

    fn reference_cycles_per_sec(&self) -> f64 {
        self.simulated_cycles as f64 / self.reference_secs
    }
}

fn compare(
    name: &str,
    config: &NetworkConfig,
    reps: u32,
    drive: impl Fn(&mut dyn NocFabric) -> Outcome,
) -> Comparison {
    let (engine_secs, engine) = time_runs(reps, || {
        let mut net = Network::new(config.clone()).expect("benchmark mesh is valid");
        drive(&mut net)
    });
    let (reference_secs, reference) = time_runs(reps, || {
        let mut net = ReferenceNetwork::new(config.clone()).expect("benchmark mesh is valid");
        drive(&mut net)
    });
    assert_eq!(
        engine, reference,
        "{name}: event-driven core and reference stepper must agree exactly"
    );
    Comparison {
        engine_secs,
        reference_secs,
        flit_hops: engine.stats.flit_hops,
        simulated_cycles: engine.now,
        delivered: engine.stats.delivered,
    }
}

/// What the reconfig drain-latency lane measured.
struct DrainLane {
    flips: u64,
    drain_budget: u64,
    p50: u64,
    p95: u64,
    max: u64,
    stage_verify_secs: f64,
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `flips` staged, verified, hyperperiod-aligned mode changes
/// between a two-VM and a three-VM population, committing at a different
/// slot offset each time so the measured drain latencies sweep the whole
/// hyperperiod. Returns the observed drain-latency percentiles (in slots)
/// against the admission-time budget, plus the total wall time spent in
/// offline stage+verify.
fn reconfig_drain_lane(flips: u64) -> DrainLane {
    let beat = |vm: usize, id: u64| PredefinedTask {
        task_id: id,
        vm,
        task: SporadicTask::implicit(8, 1).expect("static P-channel geometry"),
        response_bytes: 32,
        start_offset: 0,
    };
    let mk = |servers: &[(u64, u64)], tasks: &[(u64, u64, u64)]| {
        let servers = servers
            .iter()
            .map(|&(p, t)| PeriodicServer::new(p, t).expect("static server geometry"))
            .collect();
        let sets = tasks
            .iter()
            .map(|&(t, c, d)| {
                vec![SporadicTask::new(t, c, d).expect("static task geometry")].into()
            })
            .collect();
        StagedConfig::new(servers, sets)
    };
    let mut two_vm = mk(&[(5, 2), (10, 3)], &[(20, 2, 10), (40, 4, 30)]);
    two_vm.predefined = vec![beat(0, 900)];
    let mut three_vm = mk(
        &[(5, 1), (10, 2), (8, 2)],
        &[(20, 1, 10), (40, 2, 30), (32, 2, 16)],
    );
    three_vm.predefined = vec![beat(1, 901)];

    const DRAIN_BUDGET: u64 = 16;
    let mut rc = ReconfigController::new(two_vm.clone(), DRAIN_BUDGET, 1 << 14)
        .expect("benchmark config verifies");
    let mut stage_verify_secs = 0.0;
    for flip in 0..flips {
        // Vary the commit offset so latencies cover the whole hyperperiod.
        rc.run(1 + flip % 7);
        // Keep the R-channel pools non-empty so every drain carries work.
        let _ = rc.submit(0, flip + 1, 1, 12, true);
        let candidate = if flip % 2 == 0 { &three_vm } else { &two_vm };
        let start = Instant::now();
        rc.stage(candidate.clone())
            .expect("benchmark candidate verifies");
        rc.commit().expect("benchmark commit fits the budget");
        stage_verify_secs += start.elapsed().as_secs_f64();
        // Two hyperperiods always reach the boundary and finish the switch.
        rc.run(16);
    }
    let mut latencies = rc.drain_latencies().to_vec();
    latencies.sort_unstable();
    DrainLane {
        flips: latencies.len() as u64,
        drain_budget: DRAIN_BUDGET,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        max: latencies.last().copied().unwrap_or(0),
        stage_verify_secs,
    }
}

/// What the incremental-admission lane measured.
struct AdmissionLane {
    frame: u64,
    residents: u64,
    /// Best full Theorem 1 sweep over the resident set, seconds.
    full_sweep_secs: f64,
    /// Mean per-decision (admit or evict) cost on the ledger, seconds.
    per_decision_secs: f64,
    /// `full_sweep_secs / per_decision_secs` — the O(Δ) payoff.
    speedup: f64,
    /// Fleet decision-latency run: event count and outcome counters.
    fleet_events: u64,
    fleet_placed: u64,
    fleet_spilled: u64,
    fleet_dropped: u64,
    fleet_local_rejects: u64,
    fleet_departed: u64,
    fleet_residents_final: u64,
    /// Per-decision wall latency over the whole fleet run, nanoseconds.
    latency_p50_ns: u64,
    latency_p95_ns: u64,
    latency_max_ns: u64,
}

/// Times the incremental admission path (DESIGN.md §15) two ways.
///
/// **Speedup**: one [`DemandLedger`] at `frame = 2²⁰` is populated with
/// `residents` VMs (harmonic periods 2¹⁴..2¹⁷, Θ = 1 — the classic
/// many-small-reservations shape), then `pairs` admit/evict decisions are
/// timed against re-running the full Theorem 1 frame sweep from scratch.
/// The ledger's answer is verified against the sweep's before timing.
///
/// **Latency**: a 10⁵-event churn stream drives an 8-shard fleet; every
/// `Fleet::apply` is timed individually into a log-bucketed histogram,
/// giving per-decision p50/p95/max under realistic mixed traffic
/// (placements, rejections, spillover retries, departures).
fn admission_lane(mode: &Mode) -> AdmissionLane {
    const FRAME: u64 = 1 << 20;
    let sigma = TimeSlotTable::from_occupied(64, &[0]).expect("benchmark σ* is valid");
    let mut ledger = DemandLedger::new(sigma.clone(), FRAME).expect("harmonic benchmark frame");
    let menu = [1u64 << 14, 1 << 15, 1 << 16, 1 << 17];
    let mut servers = Vec::with_capacity(mode.admission_residents as usize);
    for id in 0..mode.admission_residents {
        let pi = menu[(id % menu.len() as u64) as usize];
        let server = PeriodicServer::new(pi, 1).expect("benchmark server is valid");
        let outcome = ledger.admit(id, server).expect("harmonic period");
        assert!(
            outcome.admitted(),
            "admission lane residents must all fit (vm {id})"
        );
        servers.push(server);
    }

    // Oracle first: the incremental verdict must match the full sweep
    // before either is worth timing.
    let oracle = theorem1_frame(&sigma, &servers, FRAME);
    assert_eq!(ledger.verdict(), oracle, "incremental verdict diverged");
    assert!(oracle.is_schedulable());
    let (full_sweep_secs, _) = time_runs(mode.reps, || theorem1_frame(&sigma, &servers, FRAME));

    // Timed admit/evict pairs at full population: the steady-state cost
    // of one fleet decision.
    let candidate = PeriodicServer::new(1 << 14, 1).expect("benchmark server is valid");
    let pairs = mode.admission_pairs.max(1);
    let start = Instant::now();
    for i in 0..pairs {
        let id = 1_000_000 + i;
        let outcome = ledger.admit(id, candidate).expect("harmonic period");
        assert!(outcome.admitted(), "timed candidate must fit");
        ledger.evict(id).expect("candidate is resident");
    }
    let per_decision_secs = start.elapsed().as_secs_f64() / (2 * pairs) as f64;
    let speedup = full_sweep_secs / per_decision_secs.max(f64::MIN_POSITIVE);

    // Fleet decision latency under churn.
    let seed = 0xF1EE7;
    let stream = FleetArrivals::generate(&FleetArrivalConfig::new(mode.fleet_events, 300, seed));
    let config = FleetConfig::new(8, PlacementPolicy::WorstFitBySlack, seed);
    let mut fleet = Fleet::new(config).expect("benchmark fleet config is valid");
    let mut latency = Histogram::new();
    for event in stream.events() {
        let begun = Instant::now();
        let _ = fleet.apply(event);
        latency.record(begun.elapsed().as_nanos() as u64);
    }
    let stats = fleet.stats();
    AdmissionLane {
        frame: FRAME,
        residents: mode.admission_residents,
        full_sweep_secs,
        per_decision_secs,
        speedup,
        fleet_events: stream.events().len() as u64,
        fleet_placed: stats.placed,
        fleet_spilled: stats.spilled,
        fleet_dropped: stats.dropped,
        fleet_local_rejects: stats.local_rejects,
        fleet_departed: stats.departed,
        fleet_residents_final: fleet.resident_count() as u64,
        latency_p50_ns: latency.percentile(0.50).unwrap_or(0),
        latency_p95_ns: latency.percentile(0.95).unwrap_or(0),
        latency_max_ns: latency.max().unwrap_or(0),
    }
}

/// What the serving replay lane measured.
struct ServingLane {
    /// Requests actually replayed (may be the reduced count).
    requests: u64,
    /// The mode's configured target before any host-based reduction.
    requested: u64,
    /// True when the full configured request count ran (multi-core
    /// host or quick mode); false when reduced for a small host.
    floor_enforced: bool,
    virtual_slots: u64,
    wall_secs: f64,
    /// Wall-clock ingest throughput: requests / wall seconds.
    ingest_rps: f64,
    digest: u64,
    completed: u64,
    missed: u64,
    critical_missed: u64,
    shed_best_effort: u64,
    obs_overflows: u64,
    /// (p50, p95, p99, max, deadline bound) per class, in virtual slots.
    critical: (u64, u64, u64, u64, u64),
    best_effort: (u64, u64, u64, u64, u64),
}

/// Drives the `ioguard-serve` deterministic replay (DESIGN.md §16): a
/// `FleetArrivals` client population streams wire-encoded requests
/// through connect/ingest/step on the virtual clock. Latency is in
/// virtual slots (deterministic, host-independent); the wall clock only
/// measures how fast the front-end chews through the stream. On hosts
/// below `serving_min_cores` the full-mode request count is reduced to
/// the quick count and `floor_enforced` records the reduction.
fn serving_lane(mode: &Mode, host_parallelism: usize) -> ServingLane {
    let requested = mode.serving_requests;
    let reduced_host = host_parallelism < mode.serving_min_cores;
    let requests = if reduced_host {
        requested.min(Mode::quick().serving_requests)
    } else {
        requested
    };
    let config = ReplayConfig::new(requests);
    let driver = ReplayDriver::new(config);
    let start = Instant::now();
    let report = driver.run().expect("serving replay config is valid");
    let wall_secs = start.elapsed().as_secs_f64();
    let totals = report.counter_totals;
    let summary = |h: &Histogram, bound: u64| {
        (
            h.percentile(0.50).unwrap_or(0),
            h.percentile(0.95).unwrap_or(0),
            h.percentile(0.99).unwrap_or(0),
            h.max().unwrap_or(0),
            bound,
        )
    };
    ServingLane {
        requests: report.requests_sent,
        requested,
        floor_enforced: requests == requested,
        virtual_slots: report.slots,
        wall_secs,
        ingest_rps: report.requests_sent as f64 / wall_secs.max(f64::MIN_POSITIVE),
        digest: report.fold.digest(),
        completed: totals.completed,
        missed: totals.missed,
        critical_missed: totals.critical_missed,
        shed_best_effort: totals.dropped_best_effort,
        obs_overflows: report.obs_overflows,
        critical: summary(&report.e2e_critical, report.deadline_bound_critical),
        best_effort: summary(&report.e2e_best_effort, report.deadline_bound_best_effort),
    }
}

/// slots/s of `run_trial` for one Fig. 7 system.
fn slot_rate(system: SystemUnderTest, workload: &TrialWorkload, horizon: u64, reps: u32) -> f64 {
    let (secs, _) = time_runs(reps, || run_trial(system, workload, 7, horizon));
    horizon as f64 / secs
}

/// Formats a rate with no fractional digits — rates in the millions don't
/// need them, and integers keep the JSON diff-friendly.
fn rate(value: f64) -> String {
    format!("{value:.0}")
}

fn json_noc_case(name: &str, cmp: &Comparison) -> String {
    format!(
        concat!(
            "    \"{name}\": {{\n",
            "      \"simulated_cycles\": {cycles},\n",
            "      \"flit_hops\": {hops},\n",
            "      \"delivered_packets\": {delivered},\n",
            "      \"engine\": {{ \"flits_per_sec\": {ef}, \"cycles_per_sec\": {ec} }},\n",
            "      \"reference\": {{ \"flits_per_sec\": {rf}, \"cycles_per_sec\": {rc} }},\n",
            "      \"speedup\": {speedup:.2}\n",
            "    }}"
        ),
        name = name,
        cycles = cmp.simulated_cycles,
        hops = cmp.flit_hops,
        delivered = cmp.delivered,
        ef = rate(cmp.engine_flits_per_sec()),
        ec = rate(cmp.engine_cycles_per_sec()),
        rf = rate(cmp.reference_flits_per_sec()),
        rc = rate(cmp.reference_cycles_per_sec()),
        speedup = cmp.speedup(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { Mode::quick() } else { Mode::full() };

    eprintln!("bench-summary: mode={}", mode.label);

    // Saturated 8×8 uniform-random load: the dense-state case.
    let saturated_config = NetworkConfig::mesh(8, 8);
    let cycles = mode.saturated_cycles;
    let saturated = compare("saturated_8x8", &saturated_config, mode.reps, |net| {
        drive_saturated(net, 8, 8, cycles)
    });
    eprintln!(
        "bench-summary: saturated_8x8 engine {} flits/s, reference {} flits/s ({:.2}x)",
        rate(saturated.engine_flits_per_sec()),
        rate(saturated.reference_flits_per_sec()),
        saturated.speedup(),
    );

    // Observability overhead: the same saturated stimulus through an
    // ObservedFabric (trace sink + latency histogram on every delivery).
    // The acceptance bar is <5% throughput regression over the plain core.
    let (observed_secs, observed_outcome) = time_runs(mode.reps, || {
        let inner = Network::new(saturated_config.clone()).expect("benchmark mesh is valid");
        let mut net = ObservedFabric::new(inner, 1 << 16);
        drive_saturated(&mut net, 8, 8, cycles)
    });
    let (_, plain_outcome) = time_runs(1, || {
        let mut net = Network::new(saturated_config.clone()).expect("benchmark mesh is valid");
        drive_saturated(&mut net, 8, 8, cycles)
    });
    assert_eq!(
        observed_outcome, plain_outcome,
        "observation must not perturb the NoC"
    );
    let obs_overhead_pct = (observed_secs / saturated.engine_secs - 1.0) * 100.0;
    let observed_flits_per_sec = observed_outcome.stats.flit_hops as f64 / observed_secs;
    eprintln!(
        "bench-summary: obs_overhead saturated_8x8 plain {} flits/s, observed {} flits/s ({:+.1}%)",
        rate(saturated.engine_flits_per_sec()),
        rate(observed_flits_per_sec),
        obs_overhead_pct,
    );

    // Sparse 4×4 trickle: the quiescence-skipping case.
    let sparse_config = NetworkConfig::mesh(4, 4);
    let (packets, gap) = (mode.sparse_packets, mode.sparse_gap);
    let sparse = compare("sparse_4x4", &sparse_config, mode.reps, |net| {
        drive_sparse(net, packets, gap)
    });
    eprintln!(
        "bench-summary: sparse_4x4 engine {} cycles/s, reference {} cycles/s ({:.2}x)",
        rate(sparse.engine_cycles_per_sec()),
        rate(sparse.reference_cycles_per_sec()),
        sparse.speedup(),
    );

    // PDES saturated scaling: serial engine vs the domain-decomposed
    // parallel engine at 1/2/4/8 column regions on a pre-loaded 8×8
    // backlog (deep NI queues so each release is one long batch).
    let mut scaling_config = NetworkConfig::mesh(8, 8);
    scaling_config.injection_depth = 256;
    let rounds = mode.scaling_rounds;
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (serial_secs, serial_outcome) = time_runs(mode.reps, || {
        let mut net = Network::new(scaling_config.clone()).expect("benchmark mesh is valid");
        drive_preloaded(&mut net, 8, 8, rounds)
    });
    eprintln!(
        "bench-summary: scaling_8x8 serial {} cycles/s ({} host cores)",
        rate(serial_outcome.now as f64 / serial_secs),
        host_parallelism,
    );
    // (regions, cycles/s, speedup vs serial)
    let mut scaling_rows: Vec<(usize, f64, f64)> = Vec::new();
    for regions in [1usize, 2, 4, 8] {
        let (secs, outcome) = time_runs(mode.reps, || {
            let mut net = ParallelNetwork::new(scaling_config.clone(), regions)
                .expect("benchmark mesh is valid");
            drive_preloaded(&mut net, 8, 8, rounds)
        });
        assert_eq!(
            outcome, serial_outcome,
            "scaling_8x8: PDES at {regions} regions must equal the serial engine exactly"
        );
        let speedup = serial_secs / secs;
        eprintln!(
            "bench-summary: scaling_8x8 {regions} regions {} cycles/s ({:.2}x vs serial)",
            rate(outcome.now as f64 / secs),
            speedup,
        );
        scaling_rows.push((regions, outcome.now as f64 / secs, speedup));
    }

    // Reconfig drain lane: staged, verified mode changes committed at
    // sweeping slot offsets; the observed drain latencies must sit under
    // the admission-time budget, with percentiles recorded for the trend.
    let drain = reconfig_drain_lane(mode.reconfig_flips);
    eprintln!(
        "bench-summary: reconfig {} flips, drain p50 {} p95 {} max {} (budget {}), \
         stage+verify {:.1} ms total",
        drain.flips,
        drain.p50,
        drain.p95,
        drain.max,
        drain.drain_budget,
        drain.stage_verify_secs * 1e3,
    );

    // Incremental admission lane: per-decision O(Δ) ledger cost vs the
    // full Theorem 1 sweep at 10⁴ residents, plus per-decision latency
    // percentiles over a 10⁵-event fleet churn run (DESIGN.md §15).
    let admission = admission_lane(&mode);
    eprintln!(
        "bench-summary: admission {} residents, full sweep {:.2} ms, per decision {:.2} µs \
         ({:.0}x), fleet {} events p50 {} ns p95 {} ns max {} ns",
        admission.residents,
        admission.full_sweep_secs * 1e3,
        admission.per_decision_secs * 1e6,
        admission.speedup,
        admission.fleet_events,
        admission.latency_p50_ns,
        admission.latency_p95_ns,
        admission.latency_max_ns,
    );

    // Serving replay lane: the ioguard-serve front-end chewing through a
    // deterministic FleetArrivals-driven request stream on the virtual
    // clock (DESIGN.md §16). Latencies are virtual slots; the wall clock
    // only rates ingest throughput.
    let serving = serving_lane(&mode, host_parallelism);
    eprintln!(
        "bench-summary: serving {} requests in {:.2}s ({} req/s wall), \
         critical p99 {} (bound {}), best-effort p99 {} (bound {}), digest {:#018x}",
        serving.requests,
        serving.wall_secs,
        rate(serving.ingest_rps),
        serving.critical.2,
        serving.critical.4,
        serving.best_effort.2,
        serving.best_effort.4,
        serving.digest,
    );

    // Engine slot rate: the Fig. 7 lineup from the experiment hot path.
    let workload = TrialWorkload::generate(&TrialConfig::new(4, 0.70, 7));
    let mut slot_rates: Vec<(String, f64)> = Vec::new();
    for system in SystemUnderTest::figure7_lineup() {
        let rate_value = slot_rate(system, &workload, mode.slot_horizon, mode.reps);
        eprintln!(
            "bench-summary: engine/slot_rate {} = {} slots/s",
            system.label(),
            rate(rate_value)
        );
        slot_rates.push((system.label(), rate_value));
    }

    // Hand-formatted JSON: the workspace has no JSON dependency, and the
    // schema is flat enough that string assembly stays readable.
    let slot_entries: Vec<String> = slot_rates
        .iter()
        .map(|(label, value)| format!("      \"{label}\": {}", rate(*value)))
        .collect();
    let scaling_entries: Vec<String> = scaling_rows
        .iter()
        .map(|(regions, cps, speedup)| {
            format!(
                "        \"{regions}\": {{ \"cycles_per_sec\": {}, \"speedup_vs_serial\": {speedup:.2} }}",
                rate(*cps),
            )
        })
        .collect();
    // Trajectory: keep the last runs' one-line summaries so regressions
    // in the admission/scaling lanes show up as a trend, not a point.
    let eight_region_speedup = scaling_rows
        .iter()
        .find(|(regions, _, _)| *regions == 8)
        .map_or(0.0, |(_, _, speedup)| *speedup);
    // Evaluate every acceptance gate BEFORE assembling the document: the
    // rolling history may only record fully-completed runs (an aborted
    // run still writes its JSON for inspection, but appends nothing).
    let mut failures: Vec<String> = Vec::new();

    // Acceptance floor: quiescence skipping must beat per-cycle stepping
    // by at least 3x on the sparse horizon.
    if sparse.speedup() < 3.0 {
        failures.push(format!(
            "sparse speedup {:.2}x is below the 3x floor",
            sparse.speedup()
        ));
    }

    // Bounded draining is a hard guarantee, not a trend: every completed
    // switch must have landed within the admission-time budget.
    if drain.max > drain.drain_budget {
        failures.push(format!(
            "max drain latency {} slots exceeds the {}-slot budget",
            drain.max, drain.drain_budget
        ));
    }

    // Observability must stay out of the NoC's way: <5% throughput cost
    // with the trace sink and latency histogram attached.
    if obs_overhead_pct >= 5.0 {
        failures.push(format!(
            "obs overhead {obs_overhead_pct:.1}% is above the 5% ceiling"
        ));
    }

    // Incremental-admission floor: at 10^4 residents one ledger decision
    // must beat the full sweep by >=10x. The measurement is wall-clock, so
    // like the scaling floor it is only a hard gate on hosts with enough
    // hardware threads to time reliably; the verdict-equality assertions
    // inside the lane hold everywhere regardless.
    if host_parallelism >= mode.admission_min_cores {
        if admission.speedup < mode.admission_floor {
            failures.push(format!(
                "admission speedup {:.1}x at {} residents is below the {:.1}x floor",
                admission.speedup, admission.residents, mode.admission_floor,
            ));
        }
    } else {
        eprintln!(
            "bench-summary: admission floor advisory — host has {host_parallelism} hardware \
             thread(s), {} required to enforce the {:.1}x gate (measured {:.1}x)",
            mode.admission_min_cores, mode.admission_floor, admission.speedup,
        );
    }

    // PDES scaling floor — but a measured multi-thread speedup needs
    // multiple hardware threads, so the floor is only a hard gate on hosts
    // that can physically deliver it. Elsewhere (e.g. a 1-core CI box) the
    // measured rows in the JSON are the record, and exact equivalence has
    // already been asserted above regardless.
    if host_parallelism >= mode.scaling_min_cores {
        if eight_region_speedup < mode.scaling_floor {
            failures.push(format!(
                "8-region speedup {eight_region_speedup:.2}x is below the {:.1}x floor \
                 on a {host_parallelism}-core host",
                mode.scaling_floor,
            ));
        }
    } else {
        eprintln!(
            "bench-summary: scaling floor advisory — host has {host_parallelism} hardware \
             thread(s), {} required to enforce the {:.1}x gate (measured {eight_region_speedup:.2}x)",
            mode.scaling_min_cores, mode.scaling_floor,
        );
    }

    // Serving gates. Structural invariants hold on any host: the replay
    // must deliver every request it set out to send, and the observer
    // ring must never overflow (an overflowing ring means the counters
    // and histograms cannot be trusted).
    if serving.requests < serving.requested && serving.floor_enforced {
        failures.push(format!(
            "serving lane sent {} of {} requests",
            serving.requests, serving.requested
        ));
    }
    if serving.obs_overflows > 0 {
        failures.push(format!(
            "serving observer ring overflowed {} times",
            serving.obs_overflows
        ));
    }
    // The per-class deadline gate: p99 end-to-end latency (virtual
    // slots) must sit under the largest relative deadline of the class.
    // Virtual-clock latency is host-independent, but the full-size run
    // only executes on multi-core hosts, so the gate rides the same
    // advisory rule as the other wall-clock floors.
    if host_parallelism >= mode.serving_min_cores {
        if serving.critical.2 > serving.critical.4 {
            failures.push(format!(
                "serving critical p99 {} slots exceeds the {}-slot deadline bound",
                serving.critical.2, serving.critical.4
            ));
        }
        if serving.best_effort.2 > serving.best_effort.4 {
            failures.push(format!(
                "serving best-effort p99 {} slots exceeds the {}-slot deadline bound",
                serving.best_effort.2, serving.best_effort.4
            ));
        }
    } else {
        eprintln!(
            "bench-summary: serving deadline gate advisory — host has {host_parallelism} \
             hardware thread(s), {} required (critical p99 {} vs bound {})",
            mode.serving_min_cores, serving.critical.2, serving.critical.4,
        );
    }

    let run_completed = failures.is_empty();
    let history = rolled_history(
        prior_history("BENCH_noc.json", 7),
        format!(
            "{{\"mode\": \"{}\", \"admission_speedup\": {:.1}, \"admission_p95_ns\": {}, \
             \"scaling_speedup_8regions\": {:.2}, \"serving_rps\": {:.0}}}",
            mode.label,
            admission.speedup,
            admission.latency_p95_ns,
            eight_region_speedup,
            serving.ingest_rps,
        ),
        run_completed,
        7,
    );
    let history_entries: Vec<String> = history.iter().map(|entry| format!("    {entry}")).collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"ioguard-bench-noc/v5\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"host_parallelism\": {host_par},\n",
            "  \"noc\": {{\n",
            "{saturated},\n",
            "{sparse}\n",
            "  }},\n",
            "  \"scaling\": {{\n",
            "    \"preloaded_8x8\": {{\n",
            "      \"simulated_cycles\": {scaling_cycles},\n",
            "      \"flit_hops\": {scaling_hops},\n",
            "      \"serial_cycles_per_sec\": {serial_cps},\n",
            "      \"regions\": {{\n",
            "{scaling_rows}\n",
            "      }},\n",
            "      \"floor_regions\": 8,\n",
            "      \"floor_speedup\": {floor:.1},\n",
            "      \"floor_enforced\": {enforced}\n",
            "    }}\n",
            "  }},\n",
            "  \"obs\": {{\n",
            "    \"saturated_8x8\": {{\n",
            "      \"plain_flits_per_sec\": {plain_fps},\n",
            "      \"observed_flits_per_sec\": {obs_fps},\n",
            "      \"overhead_pct\": {obs_pct:.1}\n",
            "    }}\n",
            "  }},\n",
            "  \"reconfig\": {{\n",
            "    \"flips\": {flips},\n",
            "    \"drain_budget_slots\": {drain_budget},\n",
            "    \"drain_latency_slots\": {{ \"p50\": {drain_p50}, \"p95\": {drain_p95}, \"max\": {drain_max} }},\n",
            "    \"stage_verify_ms_total\": {stage_verify_ms:.1},\n",
            "    \"within_budget\": {within_budget}\n",
            "  }},\n",
            "  \"admission\": {{\n",
            "    \"frame\": {adm_frame},\n",
            "    \"residents\": {adm_residents},\n",
            "    \"full_sweep_ms\": {adm_full_ms:.3},\n",
            "    \"per_decision_us\": {adm_decision_us:.3},\n",
            "    \"incremental_speedup\": {adm_speedup:.1},\n",
            "    \"floor_speedup\": {adm_floor:.1},\n",
            "    \"floor_enforced\": {adm_enforced},\n",
            "    \"fleet\": {{\n",
            "      \"events\": {adm_events},\n",
            "      \"shards\": 8,\n",
            "      \"placed\": {adm_placed},\n",
            "      \"spilled\": {adm_spilled},\n",
            "      \"dropped\": {adm_dropped},\n",
            "      \"local_rejects\": {adm_rejects},\n",
            "      \"departed\": {adm_departed},\n",
            "      \"residents_final\": {adm_final},\n",
            "      \"decision_latency_ns\": {{ \"p50\": {adm_p50}, \"p95\": {adm_p95}, \"max\": {adm_max} }}\n",
            "    }}\n",
            "  }},\n",
            "  \"serving\": {{\n",
            "    \"requests\": {srv_requests},\n",
            "    \"requested\": {srv_requested},\n",
            "    \"floor_enforced\": {srv_floor},\n",
            "    \"virtual_slots\": {srv_slots},\n",
            "    \"wall_secs\": {srv_wall:.3},\n",
            "    \"ingest_requests_per_sec\": {srv_rps},\n",
            "    \"digest\": \"{srv_digest:#018x}\",\n",
            "    \"completed\": {srv_completed},\n",
            "    \"missed\": {srv_missed},\n",
            "    \"critical_missed\": {srv_crit_missed},\n",
            "    \"shed_best_effort\": {srv_shed},\n",
            "    \"obs_overflows\": {srv_overflows},\n",
            "    \"e2e_critical_slots\": {{ \"p50\": {srv_c_p50}, \"p95\": {srv_c_p95}, \"p99\": {srv_c_p99}, \"max\": {srv_c_max}, \"deadline_bound\": {srv_c_bound} }},\n",
            "    \"e2e_best_effort_slots\": {{ \"p50\": {srv_b_p50}, \"p95\": {srv_b_p95}, \"p99\": {srv_b_p99}, \"max\": {srv_b_max}, \"deadline_bound\": {srv_b_bound} }},\n",
            "    \"deadline_gate_enforced\": {srv_gate}\n",
            "  }},\n",
            "  \"engine\": {{\n",
            "    \"slot_rate_slots_per_sec\": {{\n",
            "{slots}\n",
            "    }},\n",
            "    \"slot_horizon\": {horizon}\n",
            "  }},\n",
            "  \"history\": [\n",
            "{history}\n",
            "  ]\n",
            "}}\n"
        ),
        mode = mode.label,
        host_par = host_parallelism,
        saturated = json_noc_case("saturated_8x8", &saturated),
        sparse = json_noc_case("sparse_4x4", &sparse),
        scaling_cycles = serial_outcome.now,
        scaling_hops = serial_outcome.stats.flit_hops,
        serial_cps = rate(serial_outcome.now as f64 / serial_secs),
        scaling_rows = scaling_entries.join(",\n"),
        floor = mode.scaling_floor,
        enforced = host_parallelism >= mode.scaling_min_cores,
        plain_fps = rate(saturated.engine_flits_per_sec()),
        obs_fps = rate(observed_flits_per_sec),
        obs_pct = obs_overhead_pct,
        flips = drain.flips,
        drain_budget = drain.drain_budget,
        drain_p50 = drain.p50,
        drain_p95 = drain.p95,
        drain_max = drain.max,
        stage_verify_ms = drain.stage_verify_secs * 1e3,
        within_budget = drain.max <= drain.drain_budget,
        adm_frame = admission.frame,
        adm_residents = admission.residents,
        adm_full_ms = admission.full_sweep_secs * 1e3,
        adm_decision_us = admission.per_decision_secs * 1e6,
        adm_speedup = admission.speedup,
        adm_floor = mode.admission_floor,
        adm_enforced = host_parallelism >= mode.admission_min_cores,
        adm_events = admission.fleet_events,
        adm_placed = admission.fleet_placed,
        adm_spilled = admission.fleet_spilled,
        adm_dropped = admission.fleet_dropped,
        adm_rejects = admission.fleet_local_rejects,
        adm_departed = admission.fleet_departed,
        adm_final = admission.fleet_residents_final,
        adm_p50 = admission.latency_p50_ns,
        adm_p95 = admission.latency_p95_ns,
        adm_max = admission.latency_max_ns,
        srv_requests = serving.requests,
        srv_requested = serving.requested,
        srv_floor = serving.floor_enforced,
        srv_slots = serving.virtual_slots,
        srv_wall = serving.wall_secs,
        srv_rps = rate(serving.ingest_rps),
        srv_digest = serving.digest,
        srv_completed = serving.completed,
        srv_missed = serving.missed,
        srv_crit_missed = serving.critical_missed,
        srv_shed = serving.shed_best_effort,
        srv_overflows = serving.obs_overflows,
        srv_c_p50 = serving.critical.0,
        srv_c_p95 = serving.critical.1,
        srv_c_p99 = serving.critical.2,
        srv_c_max = serving.critical.3,
        srv_c_bound = serving.critical.4,
        srv_b_p50 = serving.best_effort.0,
        srv_b_p95 = serving.best_effort.1,
        srv_b_p99 = serving.best_effort.2,
        srv_b_max = serving.best_effort.3,
        srv_b_bound = serving.best_effort.4,
        srv_gate = host_parallelism >= mode.serving_min_cores,
        slots = slot_entries.join(",\n"),
        horizon = mode.slot_horizon,
        history = history_entries.join(",\n"),
    );
    std::fs::write("BENCH_noc.json", &json).expect("BENCH_noc.json is writable");
    println!("{json}");
    eprintln!("bench-summary: wrote BENCH_noc.json");

    if !run_completed {
        for failure in &failures {
            eprintln!("bench-summary: FAIL — {failure}");
        }
        eprintln!(
            "bench-summary: {} gate(s) failed; history entry NOT recorded",
            failures.len()
        );
        std::process::exit(1);
    }
}
